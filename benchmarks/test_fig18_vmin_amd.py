"""Figure 18: V_MIN and voltage noise on the AMD CPU.

Paper: the GA viruses (EM-driven and Kelvin-pad-driven) produce much
larger noise and higher V_MIN than desktop workloads, Prime95 and the
vendor stability test; the EM virus's V_MIN is 1.3625 V (37.5 mV below
the 1.4 V nominal); even a two-active-core EM virus beats four-core
Prime95.
"""

from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload
from repro.workloads.desktop import desktop_suite
from repro.workloads.stress import (
    amd_stability_test,
    idle_workload,
    prime95_like,
)

from benchmarks.conftest import print_header


def test_fig18_vmin_amd(
    benchmark, amd_desktop, amd_em_virus, amd_osc_virus
):
    cpu = amd_desktop.cpu
    cpu.reset()
    tester = VminTester(
        cpu,
        failure_model_for("amd-athlon-ii-x4-645"),
        step_v=0.0125,
        seed=18,
    )
    workloads = (
        [idle_workload()]
        + desktop_suite(cpu.spec.isa)
        + [
            prime95_like(cpu.spec.isa),
            amd_stability_test(cpu.spec.isa),
            ProgramWorkload(
                "amdOsc", amd_osc_virus.virus, jitter_seed=None
            ),
            ProgramWorkload(
                "amdEm", amd_em_virus.virus, jitter_seed=None
            ),
        ]
    )

    def regenerate():
        results = tester.compare(
            workloads,
            virus_repeats=30,
            benchmark_repeats=2,
            virus_names=("amdEm", "amdOsc"),
        )
        # the paper's extra data point: EM virus on only 2 active cores
        results["amdEm-2core"] = tester.run(
            ProgramWorkload(
                "amdEm-2core", amd_em_virus.virus, jitter_seed=None
            ),
            repeats=30,
            active_cores=2,
        )
        return results

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 18: V_MIN and noise on the Athlon II X4 645")
    print(f"{'workload':<16} {'Vmin':>9} {'margin':>9} {'noise p2p':>11}")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(
            f"{name:<16} {res.vmin:>7.4f} V "
            f"{(1.4 - res.vmin) * 1e3:>6.1f} mV "
            f"{res.peak_to_peak_at_nominal * 1e3:>8.1f} mV"
        )

    em = results["amdEm"]
    osc = results["amdOsc"]
    p95 = results["prime95"]
    vendor = results["amd-stability"]
    benches = {
        k: v
        for k, v in results.items()
        if k not in ("amdEm", "amdOsc", "amdEm-2core")
    }

    # GA viruses: much higher noise and V_MIN than everything else
    best_bench_noise = max(
        v.peak_to_peak_at_nominal for v in benches.values()
    )
    assert em.peak_to_peak_at_nominal > 1.5 * best_bench_noise
    best_bench_vmin = max(v.vmin for v in benches.values())
    assert em.vmin > best_bench_vmin
    assert osc.vmin > best_bench_vmin
    # EM virus margin on the paper's scale (37.5 mV below nominal)
    margin = 1.4 - em.vmin
    print(f"  amdEm margin: {margin * 1e3:.1f} mV (paper: 37.5 mV)")
    assert margin <= 0.08
    # stability tests pass comfortably below the viruses (paper: 24 h
    # at 1.287 / 1.28 V while the virus crashes at 1.3 V and above)
    assert p95.vmin < em.vmin - 0.05
    assert vendor.vmin < em.vmin - 0.05
    # two-active-core virus still beats four-core Prime95
    assert results["amdEm-2core"].vmin > p95.vmin
