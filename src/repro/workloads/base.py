"""Workload protocol: anything that can load a cluster's rail."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cpu.program import LoopProgram
from repro.pdn.steady_state import PeriodicResponse
from repro.platforms.base import Cluster, ClusterRun


@dataclass
class WorkloadRun:
    """Outcome of running a workload on a cluster."""

    workload_name: str
    response: PeriodicResponse
    cluster_run: Optional[ClusterRun] = None

    @property
    def max_droop(self) -> float:
        return self.response.max_droop

    @property
    def peak_to_peak(self) -> float:
        return self.response.peak_to_peak

    @property
    def min_voltage(self) -> float:
        return self.response.min_voltage


class Workload(abc.ABC):
    """A runnable workload identified by name."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def run(
        self, cluster: Cluster, active_cores: Optional[int] = None
    ) -> WorkloadRun:
        """Execute on ``cluster`` and return the steady rail response."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ProgramWorkload(Workload):
    """A workload backed by an instruction loop program.

    Benchmarks carry data-dependent timing variation (``jitter_seed``
    set): their loop iterations do not stay phase-coherent, so no
    resonant build-up occurs -- the property that separates them from
    deliberately deterministic dI/dt viruses.  Pass ``jitter_seed=None``
    for virus-style deterministic execution.
    """

    def __init__(
        self,
        name: str,
        program: LoopProgram,
        jitter_seed: Optional[int] = 77,
        jitter_tiles: int = 16,
        jitter_smooth_cycles: int = 12,
        activity_compression: float = 0.5,
    ):
        super().__init__(name)
        self.program = program
        self.jitter_seed = jitter_seed
        self.jitter_tiles = jitter_tiles
        self.jitter_smooth_cycles = jitter_smooth_cycles
        self.activity_compression = activity_compression

    def run(
        self, cluster: Cluster, active_cores: Optional[int] = None
    ) -> WorkloadRun:
        rng = (
            np.random.default_rng(self.jitter_seed)
            if self.jitter_seed is not None
            else None
        )
        run = cluster.run(
            self.program,
            active_cores=active_cores,
            timing_jitter_rng=rng,
            jitter_tiles=self.jitter_tiles,
            jitter_smooth_cycles=self.jitter_smooth_cycles,
            activity_compression=(
                self.activity_compression if rng is not None else 1.0
            ),
        )
        return WorkloadRun(
            workload_name=self.name, response=run.response, cluster_run=run
        )


class IdleWorkload(Workload):
    """CPU idle: quiescent current with small random wander.

    A flat trace has zero AC content; real idle shows millivolt-level
    activity from background OS noise, modeled as low-amplitude
    filtered noise on top of the per-core base current.
    """

    def __init__(
        self,
        name: str = "idle",
        wander_fraction: float = 0.02,
        samples: int = 4096,
        seed: int = 123,
    ):
        super().__init__(name)
        self.wander_fraction = wander_fraction
        self.samples = samples
        self.seed = seed

    def run(
        self, cluster: Cluster, active_cores: Optional[int] = None
    ) -> WorkloadRun:
        rng = np.random.default_rng(self.seed)
        base = (
            cluster.spec.current_model.base_current_a
            * cluster.powered_cores
            + cluster.spec.uncore_current_a
        )
        noise = rng.standard_normal(self.samples)
        # Smooth to kill content near the resonance band.
        kernel = np.ones(33) / 33.0
        noise = np.convolve(noise, kernel, mode="same")
        trace = base * (1.0 + self.wander_fraction * noise)
        response = cluster.run_trace(trace, cluster.clock_hz)
        return WorkloadRun(workload_name=self.name, response=response)
