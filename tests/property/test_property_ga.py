"""Property-based tests on the GA operators' structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.arm import ARM_ISA
from repro.cpu.program import LoopProgram, random_program
from repro.ga.operators import (
    mutate,
    one_point_crossover,
    tournament_selection,
)

seeds = st.integers(min_value=0, max_value=10_000)
lengths = st.integers(min_value=2, max_value=60)
rates = st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, length=lengths)
def test_crossover_preserves_length_and_validity(seed, length):
    rng = np.random.default_rng(seed)
    a = random_program(ARM_ISA, length, rng)
    b = random_program(ARM_ISA, length, rng)
    ca, cb = one_point_crossover(a, b, rng)
    assert len(ca) == len(cb) == length
    # reconstruction revalidates register and memory bounds
    LoopProgram(isa=ca.isa, body=ca.body)
    LoopProgram(isa=cb.isa, body=cb.body)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, length=lengths)
def test_crossover_children_complementary(seed, length):
    """At every gene position children carry the two parents' genes."""
    rng = np.random.default_rng(seed)
    a = random_program(ARM_ISA, length, rng)
    b = random_program(ARM_ISA, length, rng)
    ca, cb = one_point_crossover(a, b, rng)
    for i in range(length):
        assert {ca.body[i], cb.body[i]} == {a.body[i], b.body[i]}


@settings(max_examples=40, deadline=None)
@given(seed=seeds, length=lengths, rate=rates)
def test_mutation_preserves_length_and_validity(seed, length, rate):
    rng = np.random.default_rng(seed)
    p = random_program(ARM_ISA, length, rng)
    m = mutate(p, rng, rate=rate)
    assert len(m) == length
    LoopProgram(isa=m.isa, body=m.body)


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_mutation_rate_zero_is_identity(seed):
    rng = np.random.default_rng(seed)
    p = random_program(ARM_ISA, 30, rng)
    assert mutate(p, rng, rate=0.0) is p


@settings(max_examples=40, deadline=None)
@given(seed=seeds, k=st.integers(min_value=1, max_value=12))
def test_tournament_winner_is_member(seed, k):
    rng = np.random.default_rng(seed)
    pop = [random_program(ARM_ISA, 10, rng) for _ in range(8)]
    fits = list(rng.random(8))
    winner = tournament_selection(pop, fits, rng, tournament_size=k)
    assert winner in pop


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_tournament_full_size_returns_best(seed):
    rng = np.random.default_rng(seed)
    pop = [random_program(ARM_ISA, 10, rng) for _ in range(6)]
    fits = list(rng.random(6))
    winner = tournament_selection(pop, fits, rng, tournament_size=6)
    assert winner is pop[int(np.argmax(fits))]
