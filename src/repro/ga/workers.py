"""Persistent warm-cache worker runtime for parallel GA evaluation.

The original dispatch model paid per-shard costs that dwarfed the
fitness work itself: every generation re-entered a
``ProcessPoolExecutor`` whose workers idled between generations with
no guarantee of cache reuse, and every payload round-tripped whole
object graphs through pickle.  This module replaces it with a
*persistent worker pool*:

* Worker processes are spawned **once per campaign**.  Each receives
  the pickled fitness spec (fitness callable, fault injector, retry
  policy) a single time at start, runs the fitness's optional
  ``warm_up()`` hook -- which builds its
  :class:`~repro.chain.session.SimulationSession` and primes the
  cheap deterministic caches -- and then holds everything warm across
  generations: PDN transfer-function grids, clock-independent
  schedules, radiator tilts and analyzer line gains are computed once
  per worker instead of once per dispatch.
* Genome batches travel to workers and evaluation matrices travel back
  as compact ndarray payloads (:mod:`repro.ga.shm`), through shared
  memory when large and inline otherwise.
* Results are reassembled strictly by submission order (task keys map
  back to shard indices), so a pure fitness keeps the
  ``workers=N == workers=1`` bit-identity contract.
* A worker that dies (or exceeds the dispatch budget) is respawned
  with a full warm-up replay; its shard is reported as a *crash
  outcome* to the caller, which re-dispatches or degrades to serial
  exactly as before (see :class:`repro.ga.parallel.ParallelEvaluator`).

Observability: the pool emits one ``worker_warmup`` event per (re)spawn
-- worker id, pid, warm-up wall time, whether it replaced a crashed
worker, and the cache stats its warm-up primed -- and records each
worker's latest session cache counters (``worker_stats``) so the GA
engine can fold per-worker cache-hit rates into ``generation_end``.

The protocol is deliberately explicit (per-worker task queues, one
shared result queue) rather than executor-shaped: the parent always
knows which worker holds which shard, which is what makes crash
attribution, deterministic re-dispatch and deferred shared-memory
cleanup simple to reason about.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.errors import StageTimeout
from repro.faults.plan import FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.ga.shm import (
    DEFAULT_SHM_MIN_BYTES,
    ProgramDecoder,
    ProgramEncoder,
    decode_evaluations,
    encode_evaluations,
    pack_arrays,
    release_block,
    shm_enabled_by_env,
    unpack_arrays,
)
from repro.obs.events import NULL_LOG, EventLog

#: Receive-loop poll granularity; also bounds crash-detection latency.
_POLL_S = 0.05

#: Wall-clock budget for a worker to finish warm-up and report ready.
DEFAULT_START_TIMEOUT_S = 120.0


# ---------------------------------------------------------------------------
# helpers shared with the serial paths in repro.ga.parallel
# ---------------------------------------------------------------------------
def evaluate_with(
    fitness: Callable, programs: Sequence
) -> List:
    """Evaluate in order, batched when the fitness supports it."""
    batch = getattr(fitness, "evaluate_batch", None)
    if batch is not None:
        return list(batch(programs))
    return [fitness(p) for p in programs]


def state_hooks(
    fitness: Callable,
) -> Tuple[Optional[Callable], Optional[Callable]]:
    """(capture, restore) fitness-state hooks, if the fitness has them."""
    return (
        getattr(fitness, "fitness_state", None),
        getattr(fitness, "restore_fitness_state", None),
    )


def _dump_exception(exc: BaseException) -> bytes:
    """Best-effort pickle of an exception for queue transport."""
    try:
        return pickle.dumps(exc)
    except (pickle.PicklingError, TypeError, AttributeError):
        return pickle.dumps(
            RuntimeError(f"{type(exc).__name__}: {exc}")
        )


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------
def _run_shard(
    fitness: Callable,
    injector: FaultInjector,
    policy: Optional[RetryPolicy],
    programs: Sequence,
) -> List:
    """One shard, inside a worker: fault site + local transient retry.

    Transient chain faults are retried here with the worker-local
    fitness state rewound; anything that survives the worker's budget
    (including :class:`~repro.faults.WorkerCrash`) is transported to
    the parent, which re-dispatches or salvages the shard.
    Worker-side retries cannot reach the parent's event log, so they
    are silent; the parent-side serial path is the one the chaos suite
    asserts events from.
    """
    injector.visit("worker.shard")
    if policy is None:
        return evaluate_with(fitness, programs)
    capture, restore = state_hooks(fitness)
    return call_with_retry(
        lambda: evaluate_with(fitness, programs),
        policy,
        scope="worker-shard",
        capture_state=capture,
        restore_state=restore,
    )


def _worker_main(
    worker_id: int,
    task_q,
    result_q,
    payload: bytes,
    use_shm: bool,
    shm_min_bytes: int,
) -> None:
    """Long-lived worker loop: warm up once, then serve shards.

    A result's shared-memory block is released only when the *next*
    parent message arrives (the parent never sends one before it has
    copied the previous result out), so blocks are always unlinked by
    their creator and never before the consumer attached.
    """
    fitness, injector, policy = pickle.loads(payload)
    decoder = ProgramDecoder()
    pending_block = None
    try:
        t0 = time.perf_counter()
        warm = getattr(fitness, "warm_up", None)
        try:
            warm_stats = warm() if warm is not None else None
        # Warm-up failures (whatever they are) must surface in the
        # parent with their original type, not hang the pool start.
        except BaseException as exc:  # audit: ignore[R6]
            result_q.put(
                ("raised", worker_id, None, _dump_exception(exc))
            )
            return
        result_q.put(
            (
                "ready",
                worker_id,
                round(time.perf_counter() - t0, 6),
                warm_stats,
            )
        )
        while True:
            message = task_q.get()
            release_block(pending_block)
            pending_block = None
            if message[0] == "stop":
                return
            _, task_key, header, bundle = message
            try:
                programs = decoder.decode(header, unpack_arrays(bundle))
                evaluations = _run_shard(
                    fitness, injector, policy, programs
                )
            # Transport every failure (fault, crash, bug) to the
            # parent, which re-raises or handles it by type.
            except BaseException as exc:  # audit: ignore[R6]
                result_q.put(
                    ("raised", worker_id, task_key, _dump_exception(exc))
                )
                continue
            stats_hook = getattr(fitness, "session_stats", None)
            stats = stats_hook() if stats_hook is not None else None
            r_header, r_arrays = encode_evaluations(evaluations)
            r_bundle, pending_block = pack_arrays(
                r_arrays, use_shm, shm_min_bytes
            )
            result_q.put(
                ("ok", worker_id, task_key, r_header, r_bundle, stats)
            )
    finally:
        release_block(pending_block)


# ---------------------------------------------------------------------------
# the parent-side pool
# ---------------------------------------------------------------------------
@dataclass
class ShardOutcome:
    """What one dispatched shard came back as.

    ``kind`` is ``"ok"`` (``results`` holds the evaluations),
    ``"raised"`` (the worker transported ``error`` -- an injected
    fault, a :class:`WorkerCrash`, or a genuine bug) or ``"crash"``
    (the worker process died or timed out; ``error`` carries the
    :class:`BrokenProcessPool` / :class:`StageTimeout`).
    """

    kind: str
    results: Optional[List] = None
    stats: Optional[dict] = None
    error: Optional[BaseException] = None


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    task_q: object
    state: str = "spawning"  # spawning -> idle -> busy (-> dead)
    respawned: bool = False
    task_key: Optional[int] = None
    shard_index: Optional[int] = None
    deadline: Optional[float] = None
    timeout_s: Optional[float] = None
    task_block: Optional[object] = None

    @property
    def alive(self) -> bool:
        return self.state != "dead" and self.process.is_alive()


class PersistentWorkerPool:
    """A fixed set of long-lived, warm-cache evaluation workers.

    Parameters
    ----------
    payload:
        ``pickle.dumps((fitness, injector, retry_policy))`` -- shipped
        to each worker exactly once per (re)spawn.
    workers:
        Pool size (>= 1).
    event_log:
        Destination for ``worker_warmup`` events.
    use_shm:
        Force shared-memory payloads on/off; ``None`` follows the
        ``REPRO_GA_SHM`` environment variable (default on).
    shm_min_bytes:
        Payloads below this size always travel inline.
    start_timeout_s:
        Budget for each worker's warm-up before the pool start fails.
    """

    def __init__(
        self,
        payload: bytes,
        workers: int,
        event_log: EventLog = NULL_LOG,
        use_shm: Optional[bool] = None,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        start_timeout_s: float = DEFAULT_START_TIMEOUT_S,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._payload = payload
        self.workers = workers
        self._log = event_log
        self.use_shm = (
            shm_enabled_by_env() if use_shm is None else use_shm
        )
        self._shm_min_bytes = shm_min_bytes
        self._start_timeout_s = start_timeout_s
        self._ctx = (
            mp_context
            if mp_context is not None
            else multiprocessing.get_context()
        )
        self._result_q = None
        self._handles: List[_WorkerHandle] = []
        self._encoder = ProgramEncoder()
        self._task_seq = 0
        self._closed = False
        #: Workers respawned after a crash/timeout (warm-up replays).
        self.respawns = 0
        #: worker_id -> latest session cache-stats snapshot.
        self.worker_stats: Dict[int, dict] = {}

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._handles)

    def start(self) -> None:
        """Spawn all workers and block until each finished warm-up."""
        if self._closed:
            raise ValueError("pool is closed")
        if self.started:
            return
        self._result_q = self._ctx.Queue()
        self._handles = [
            self._spawn(i, respawned=False) for i in range(self.workers)
        ]
        deadline = time.monotonic() + self._start_timeout_s
        while any(h.state == "spawning" for h in self._handles):
            self._drain_one(timeout=_POLL_S, assigned={})
            for handle in self._handles:
                if handle.state == "spawning" and not handle.alive:
                    self._mark_dead(handle)
                    raise BrokenProcessPool(
                        f"worker {handle.worker_id} died during warm-up"
                    )
            if time.monotonic() > deadline:
                raise BrokenProcessPool(
                    f"worker warm-up exceeded {self._start_timeout_s}s"
                )

    def _spawn(self, worker_id: int, respawned: bool) -> _WorkerHandle:
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                task_q,
                self._result_q,
                self._payload,
                self.use_shm,
                self._shm_min_bytes,
            ),
            name=f"repro-ga-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        if respawned:
            self.respawns += 1
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            task_q=task_q,
            respawned=respawned,
        )

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        handle.state = "dead"
        release_block(handle.task_block)
        handle.task_block = None
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover
                handle.process.kill()
                handle.process.join(timeout=1.0)
        handle.task_q.close()
        handle.task_q.cancel_join_thread()

    def _respawn(self, handle: _WorkerHandle) -> _WorkerHandle:
        self._mark_dead(handle)
        replacement = self._spawn(handle.worker_id, respawned=True)
        index = self._handles.index(handle)
        self._handles[index] = replacement
        return replacement

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        self._closed = True
        for handle in self._handles:
            if handle.state in ("spawning", "idle", "busy"):
                if handle.alive:
                    try:
                        handle.task_q.put(("stop",))
                    except (OSError, ValueError):  # pragma: no cover
                        pass
        for handle in self._handles:
            if handle.state != "dead":
                handle.process.join(timeout=2.0)
                self._mark_dead(handle)
        self._handles = []
        if self._result_q is not None:
            self._result_q.close()
            self._result_q.cancel_join_thread()
            self._result_q = None

    # -- dispatch ------------------------------------------------------
    def dispatch(
        self,
        shards: Dict[int, Sequence],
        timeout_s: Optional[float] = None,
    ) -> Dict[int, ShardOutcome]:
        """Evaluate ``shards`` (index -> programs) across the pool.

        Returns one :class:`ShardOutcome` per input index.  Crashed or
        timed-out workers are respawned (with warm-up replay) before
        this call returns, but their shards are *not* silently
        retried -- the caller owns the re-dispatch/degrade policy.
        """
        if not self.started:
            self.start()
        todo = sorted(shards)
        outcomes: Dict[int, ShardOutcome] = {}
        assigned: Dict[int, _WorkerHandle] = {}  # task_key -> handle
        while len(outcomes) < len(shards):
            todo = self._assign(todo, shards, assigned, timeout_s)
            if todo and not assigned and not any(
                h.state in ("spawning", "idle") and h.alive
                for h in self._handles
            ):
                # Every worker is gone and nothing is in flight: fail
                # the rest as crashes so the caller can degrade.
                for index in todo:
                    outcomes[index] = ShardOutcome(
                        kind="crash",
                        error=BrokenProcessPool(
                            "no live workers left in the pool"
                        ),
                    )
                break
            self._drain_one(
                timeout=self._poll_timeout(assigned),
                assigned=assigned,
                outcomes=outcomes,
            )
            self._reap(assigned, outcomes)
        self._await_respawns()
        return outcomes

    def _await_respawns(self) -> None:
        """Block until in-flight respawn warm-ups finish (or die).

        The last shard can complete on a surviving worker while a
        replacement is still warming up; without this wait the
        replacement's ``worker_warmup`` event would race pool close
        and the next dispatch would start against a half-warm pool.
        A replacement that dies during warm-up is retired, not raised:
        the caller's degrade policy owns that decision.
        """
        deadline = time.monotonic() + self._start_timeout_s
        while any(
            h.state == "spawning" and h.alive for h in self._handles
        ):
            self._drain_one(timeout=_POLL_S, assigned={})
            for handle in self._handles:
                if handle.state == "spawning" and not handle.alive:
                    self._mark_dead(handle)
            if time.monotonic() > deadline:  # pragma: no cover
                break

    def _assign(
        self,
        todo: List[int],
        shards: Dict[int, Sequence],
        assigned: Dict[int, _WorkerHandle],
        timeout_s: Optional[float],
    ) -> List[int]:
        remaining = list(todo)
        for handle in self._handles:
            if not remaining:
                break
            if handle.state != "idle" or not handle.alive:
                continue
            index = remaining.pop(0)
            self._task_seq += 1
            task_key = self._task_seq
            header, arrays = self._encoder.encode(shards[index])
            bundle, block = pack_arrays(
                arrays, self.use_shm, self._shm_min_bytes
            )
            handle.state = "busy"
            handle.task_key = task_key
            handle.shard_index = index
            handle.task_block = block
            handle.deadline = (
                time.monotonic() + timeout_s
                if timeout_s is not None
                else None
            )
            handle.timeout_s = timeout_s
            handle.task_q.put(("shard", task_key, header, bundle))
            assigned[task_key] = handle
        return remaining

    def _poll_timeout(
        self, assigned: Dict[int, _WorkerHandle]
    ) -> float:
        timeout = _POLL_S
        now = time.monotonic()
        for handle in assigned.values():
            if handle.deadline is not None:
                timeout = min(timeout, handle.deadline - now)
        return max(timeout, 0.001)

    def _drain_one(
        self,
        timeout: float,
        assigned: Dict[int, _WorkerHandle],
        outcomes: Optional[Dict[int, ShardOutcome]] = None,
    ) -> None:
        """Receive and apply at most one worker message."""
        try:
            message = self._result_q.get(timeout=timeout)
        except queue_module.Empty:
            return
        kind = message[0]
        if kind == "ready":
            _, worker_id, warmup_s, warm_stats = message
            for handle in self._handles:
                if (
                    handle.worker_id == worker_id
                    and handle.state == "spawning"
                ):
                    handle.state = "idle"
                    if warm_stats is not None:
                        self.worker_stats[worker_id] = warm_stats
                    self._log.emit(
                        "worker_warmup",
                        worker=worker_id,
                        pid=handle.process.pid,
                        warmup_s=warmup_s,
                        respawned=handle.respawned,
                        cache_stats=warm_stats,
                    )
                    break
            return
        if kind == "raised" and message[2] is None:
            # A worker failed inside warm-up: surface the original
            # exception to whoever is waiting on the pool.
            raise pickle.loads(message[3])
        _, worker_id, task_key = message[:3]
        handle = assigned.get(task_key) if outcomes is not None else None
        if handle is None:
            return  # stale message from a worker we already recycled
        del assigned[task_key]
        release_block(handle.task_block)
        handle.task_block = None
        index = handle.shard_index
        handle.state = "idle"
        handle.task_key = None
        handle.shard_index = None
        handle.deadline = None
        if kind == "ok":
            _, _, _, r_header, r_bundle, stats = message
            results = decode_evaluations(
                r_header, unpack_arrays(r_bundle)
            )
            if stats is not None:
                self.worker_stats[worker_id] = stats
            outcomes[index] = ShardOutcome(
                kind="ok", results=results, stats=stats
            )
        else:  # "raised"
            outcomes[index] = ShardOutcome(
                kind="raised", error=pickle.loads(message[3])
            )

    def _reap(
        self,
        assigned: Dict[int, _WorkerHandle],
        outcomes: Dict[int, ShardOutcome],
    ) -> None:
        """Convert dead / overdue workers into crash outcomes."""
        now = time.monotonic()
        for handle in self._handles:
            # A worker that died during a warm-up replay never gets an
            # assignment; retire its handle so liveness checks see it.
            if handle.state == "spawning" and not handle.process.is_alive():
                self._mark_dead(handle)
        for task_key, handle in list(assigned.items()):
            error: Optional[BaseException] = None
            if not handle.process.is_alive():
                error = BrokenProcessPool(
                    f"worker {handle.worker_id} died mid-shard "
                    f"(exitcode {handle.process.exitcode})"
                )
            elif (
                handle.deadline is not None and now > handle.deadline
            ):
                error = StageTimeout(
                    f"shard {handle.shard_index} exceeded "
                    f"{handle.timeout_s}s dispatch budget",
                    site="worker.shard",
                )
            if error is None:
                continue
            del assigned[task_key]
            outcomes[handle.shard_index] = ShardOutcome(
                kind="crash", error=error
            )
            if not self._closed:
                self._respawn(handle)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
