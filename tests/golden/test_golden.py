"""Golden-file regression suite: pinned end-to-end numbers.

Each test drives a fully seeded scenario through the real measurement
chain and compares against a committed JSON data file to 1e-12 relative
tolerance (strict enough to catch any modeling change, loose enough to
survive FMA-contraction differences across platforms).

To refresh after an *intentional* physics/model change::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

then review the diff of ``tests/golden/*.json`` like any other code
change -- an unexplained delta is a regression, not noise.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import ResonanceSweep
from repro.cpu.program import random_program
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import ClusterFitness, EMAmplitudeFitness
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.context import RunContext

GOLDEN_DIR = Path(__file__).parent

REL_TOL = 1e-12


def _characterizer():
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(1234)),
        samples=5,
    )


def check_golden(name, produced, update):
    """Compare ``produced`` (a jsonable dict) against the golden file,
    or rewrite the file under ``--update-golden``."""
    path = GOLDEN_DIR / f"{name}.json"
    # Round-trip through JSON so both sides have identical types.
    produced = json.loads(json.dumps(produced))
    if update:
        path.write_text(
            json.dumps(produced, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"golden file {path.name} regenerated")
    if not path.exists():
        raise AssertionError(
            f"missing golden file {path.name}; generate it with "
            "--update-golden"
        )
    expected = json.loads(path.read_text(encoding="utf-8"))
    _assert_close(expected, produced, where=name)


def _assert_close(expected, produced, where):
    assert type(expected) is type(produced), (
        f"{where}: type changed {type(expected).__name__} -> "
        f"{type(produced).__name__}"
    )
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(produced), (
            f"{where}: keys changed"
        )
        for key in expected:
            _assert_close(
                expected[key], produced[key], f"{where}.{key}"
            )
    elif isinstance(expected, list):
        assert len(expected) == len(produced), (
            f"{where}: length {len(expected)} -> {len(produced)}"
        )
        for i, (e, p) in enumerate(zip(expected, produced)):
            _assert_close(e, p, f"{where}[{i}]")
    elif isinstance(expected, float):
        assert produced == pytest.approx(expected, rel=REL_TOL), (
            f"{where}: {expected!r} -> {produced!r}"
        )
    else:
        assert expected == produced, (
            f"{where}: {expected!r} -> {produced!r}"
        )


class TestSweepGolden:
    def test_a53_sweep_curve(self, a53, update_golden):
        clocks = list(a53.spec.allowed_clocks_hz())[:6]
        sweep = ResonanceSweep(_characterizer(), samples_per_point=5)
        result = sweep.run(RunContext(cluster=a53), clocks_hz=clocks)
        check_golden(
            "a53_sweep_curve", result.to_dict(), update_golden
        )


class TestCharacterizerGolden:
    def test_a72_amplitudes(self, a72, update_golden):
        rng = np.random.default_rng(77)
        programs = [
            random_program(a72.spec.isa, 12, rng, name=f"g{i}")
            for i in range(3)
        ]
        measurements = _characterizer().measure_batch(a72, programs)
        produced = {
            "cluster": a72.name,
            "programs": [p.name for p in programs],
            "amplitudes_w": [m.amplitude_w for m in measurements],
            "peak_frequencies_hz": [
                m.peak_frequency_hz for m in measurements
            ],
            "loop_frequencies_hz": [
                m.loop_frequency_hz for m in measurements
            ],
        }
        check_golden("a72_amplitudes", produced, update_golden)


class TestGAGolden:
    def test_a53_three_generation_history(self, a53, update_golden):
        characterizer = _characterizer()
        fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=characterizer.analyzer,
                radiator=characterizer.radiator,
                samples=3,
                session=characterizer.session,
            ),
            a53,
        )
        config = GAConfig(
            population_size=6, generations=3, loop_length=5, seed=7
        )
        result = GAEngine(fitness, config).run(a53.spec.isa)
        produced = {
            "evaluations": result.evaluations,
            "history": [
                {
                    "generation": r.generation,
                    "best_score": r.best.score,
                    "mean_score": r.mean_score,
                    "dominant_frequency_hz": (
                        r.best.dominant_frequency_hz
                    ),
                    "best_genome_len": len(r.best_program.genome()),
                }
                for r in result.history
            ],
            "best_generation": result.best.generation,
        }
        check_golden("a53_ga_history", produced, update_golden)


class TestIslandGolden:
    def test_a53_two_island_ring_history(self, a53, update_golden):
        """2-island ring campaign over the real EM chain: per-island
        and merged histories are pinned, so any change to migration
        order, seed derivation or the exchange itself shows up as a
        numeric diff."""
        from repro.ga.islands import IslandConfig, IslandGAEngine

        characterizer = _characterizer()
        fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=characterizer.analyzer,
                radiator=characterizer.radiator,
                samples=3,
                session=characterizer.session,
            ),
            a53,
        )
        config = GAConfig(
            population_size=8, generations=3, loop_length=5, seed=7
        )
        result = IslandGAEngine(
            fitness,
            config,
            IslandConfig(
                islands=2, topology="ring", migration_interval=1
            ),
        ).run(a53.spec.isa)
        merged = result.merged()
        produced = {
            "evaluations": result.evaluations,
            "best_island": result.best_island,
            "islands": [
                {
                    "seed": island.config.seed,
                    "population_size": island.config.population_size,
                    "history": [
                        {
                            "generation": r.generation,
                            "best_score": r.best.score,
                            "mean_score": r.mean_score,
                            "dominant_frequency_hz": (
                                r.best.dominant_frequency_hz
                            ),
                        }
                        for r in island.history
                    ],
                }
                for island in result.results
            ],
            "merged_best_generation": merged.best.generation,
            "merged_scores": [
                r.best.score for r in merged.history
            ],
        }
        check_golden("a53_island_ga_history", produced, update_golden)
