"""Property-based tests on the PDN solvers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.pdn.models import PDNModel, CORTEX_A72_PDN

SOLVER = PDNModel(CORTEX_A72_PDN).solver(2)

loads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=8, max_value=200),
    elements=st.floats(min_value=0.0, max_value=10.0),
)


@settings(max_examples=40, deadline=None)
@given(wave=loads)
def test_droop_never_negative_for_nonnegative_load(wave):
    """A load that only draws current can only pull the rail down."""
    resp = SOLVER.solve(wave, 1.2e9)
    assert resp.max_droop >= -1e-9


@settings(max_examples=40, deadline=None)
@given(wave=loads)
def test_peak_to_peak_bounds_droop_variation(wave):
    """max droop <= IR(DC) + p2p: the dip can't exceed mean drop plus swing."""
    resp = SOLVER.solve(wave, 1.2e9)
    mean_drop = resp.nominal_voltage - float(np.mean(resp.die_voltage))
    assert resp.max_droop <= mean_drop + resp.peak_to_peak + 1e-12


@settings(max_examples=40, deadline=None)
@given(wave=loads, scale=st.floats(min_value=0.1, max_value=5.0))
def test_linearity_under_scaling(wave, scale):
    """Scaling the load scales the deviation exactly (linear network)."""
    base = SOLVER.solve(wave, 1.2e9)
    scaled = SOLVER.solve(wave * scale, 1.2e9)
    dev_base = base.die_voltage - base.nominal_voltage
    dev_scaled = scaled.die_voltage - scaled.nominal_voltage
    assert np.allclose(dev_scaled, scale * dev_base, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(wave=loads, shift=st.integers(min_value=0, max_value=100))
def test_time_shift_invariance(wave, shift):
    """Rolling a periodic load rolls the response, preserving metrics."""
    a = SOLVER.solve(wave, 1.2e9)
    b = SOLVER.solve(np.roll(wave, shift), 1.2e9)
    assert a.max_droop == pytest.approx(b.max_droop, abs=1e-9)
    assert a.peak_to_peak == pytest.approx(b.peak_to_peak, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(wave=loads, offset=st.floats(min_value=0.0, max_value=5.0))
def test_dc_offset_adds_pure_ir_drop(wave, offset):
    """Adding DC to the load deepens the droop by exactly IR."""
    a = SOLVER.solve(wave, 1.2e9)
    b = SOLVER.solve(wave + offset, 1.2e9)
    z_dc = a.max_droop - (
        a.nominal_voltage - float(np.mean(a.die_voltage))
    )
    ir_delta = b.max_droop - a.max_droop
    assert b.peak_to_peak == pytest.approx(a.peak_to_peak, abs=1e-9)
    assert ir_delta >= -1e-9


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=2),
)
def test_mean_die_current_conservation(n):
    """DC current is conserved through the network for any gating state."""
    solver = PDNModel(CORTEX_A72_PDN).solver(n)
    rng = np.random.default_rng(n)
    wave = rng.random(64) * 3.0
    resp = solver.solve(wave, 1.2e9)
    assert float(np.mean(resp.die_current)) == pytest.approx(
        float(np.mean(wave)), rel=1e-6
    )
