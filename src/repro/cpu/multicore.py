"""Cluster-level execution: per-core traces summed onto one rail.

The paper's viruses run one loop instance per active core.  The cores
are not phase-locked in hardware, but the worst case -- and the state a
resonating cluster settles into -- is alignment of the high-current
phases, so aligned execution is the default; explicit per-core phase
offsets are supported for studying misalignment.

Power-gated cores contribute nothing here; their electrical effect
(removing die capacitance) lives in :mod:`repro.pdn.models`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cpu.current import CurrentModel
from repro.cpu.pipeline import Pipeline, Schedule
from repro.cpu.program import LoopProgram


@dataclass
class CoreModel:
    """One CPU core: a pipeline model plus its electrical constants."""

    pipeline: Pipeline
    current_model: CurrentModel
    clock_hz: float

    def schedule(self, program: LoopProgram, iterations: int = 16) -> Schedule:
        return self.pipeline.steady_schedule(program, iterations)

    def current_trace(self, schedule: Schedule) -> np.ndarray:
        return self.current_model.trace(schedule)


@dataclass
class ClusterExecution:
    """Steady-state execution of one program across the active cores.

    Attributes
    ----------
    schedule:
        Per-core steady schedule (identical across cores: same binary).
    load_current:
        Combined per-cycle cluster current over one loop period.
    clock_hz:
        Core clock; one sample of ``load_current`` spans one cycle.
    active_cores:
        Number of cores executing the program.
    """

    schedule: Schedule
    load_current: np.ndarray
    clock_hz: float
    active_cores: int
    uncore_current_a: float

    @property
    def ipc(self) -> float:
        return self.schedule.ipc

    @property
    def loop_cycles(self) -> int:
        return self.schedule.cycles

    @property
    def loop_period_s(self) -> float:
        return self.schedule.cycles / self.clock_hz

    @property
    def loop_frequency_hz(self) -> float:
        return self.clock_hz / self.schedule.cycles

    @property
    def sample_rate_hz(self) -> float:
        return self.clock_hz


@dataclass
class MixedClusterExecution:
    """Steady-state execution of *different* programs per core.

    The combined period is the least common multiple of the per-core
    loop periods (capped -- see :func:`execute_mixed_on_cluster`), so
    each core's trace tiles exactly and the composite stays periodic.
    """

    schedules: list
    load_current: np.ndarray
    clock_hz: float
    uncore_current_a: float

    @property
    def active_cores(self) -> int:
        return len(self.schedules)

    @property
    def period_cycles(self) -> int:
        return int(self.load_current.size)

    @property
    def sample_rate_hz(self) -> float:
        return self.clock_hz

    def per_core_loop_frequencies_hz(self) -> list:
        return [self.clock_hz / s.cycles for s in self.schedules]


def _lcm_capped(values: Sequence[int], cap: int) -> int:
    lcm = 1
    for v in values:
        lcm = lcm * v // np.gcd(lcm, v)
        if lcm >= cap:
            return cap
    return lcm


def execute_mixed_on_cluster(
    core: CoreModel,
    programs: Sequence[LoopProgram],
    uncore_current_a: float = 0.1,
    iterations: int = 16,
    period_cap_cycles: int = 4096,
) -> MixedClusterExecution:
    """Run a different program on each active core (heterogeneous mix).

    Real systems co-schedule unrelated workloads; a dI/dt virus rarely
    owns every core.  Per-core traces are tiled to the least common
    multiple of their periods so the composite is exactly periodic.
    Pathological period combinations are capped at
    ``period_cap_cycles`` (the tail cores then wrap mid-iteration --
    a bounded approximation that only matters for metrology-grade
    phase studies).
    """
    if not programs:
        raise ValueError("need at least one program")
    schedules = [
        core.schedule(p, iterations=iterations) for p in programs
    ]
    traces = [core.current_trace(s) for s in schedules]
    period = _lcm_capped([t.size for t in traces], period_cap_cycles)
    combined = np.full(period, uncore_current_a, dtype=float)
    for trace in traces:
        reps = int(np.ceil(period / trace.size))
        combined += np.tile(trace, reps)[:period]
    return MixedClusterExecution(
        schedules=schedules,
        load_current=combined,
        clock_hz=core.clock_hz,
        uncore_current_a=uncore_current_a,
    )


def execute_on_cluster(
    core: CoreModel,
    program: LoopProgram,
    active_cores: int,
    phase_offsets: Optional[Sequence[int]] = None,
    uncore_current_a: float = 0.1,
    iterations: int = 16,
) -> ClusterExecution:
    """Run ``program`` on ``active_cores`` identical cores.

    ``phase_offsets`` gives each core's start offset in cycles (default:
    all aligned).  The combined trace is the sum of circularly-shifted
    per-core traces plus a constant uncore draw.
    """
    if active_cores < 1:
        raise ValueError("active_cores must be >= 1")
    offsets = list(phase_offsets) if phase_offsets is not None else [0] * (
        active_cores
    )
    if len(offsets) != active_cores:
        raise ValueError("need one phase offset per active core")

    schedule = core.schedule(program, iterations=iterations)
    trace = core.current_trace(schedule)
    combined = np.zeros_like(trace)
    for off in offsets:
        combined += np.roll(trace, off % len(trace))
    combined += uncore_current_a
    return ClusterExecution(
        schedule=schedule,
        load_current=combined,
        clock_hz=core.clock_hz,
        active_cores=active_cores,
        uncore_current_a=uncore_current_a,
    )
