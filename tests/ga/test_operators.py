"""Unit tests for GA operators."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.program import LoopProgram, random_program
from repro.ga.operators import (
    mutate,
    one_point_crossover,
    tournament_selection,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def population(rng):
    return [random_program(ARM_ISA, 20, rng) for _ in range(10)]


class TestTournamentSelection:
    def test_selects_fittest_of_contestants(self, population, rng):
        fitnesses = list(range(10))
        # with tournament size = population size, always picks the best
        winner = tournament_selection(
            population, fitnesses, rng, tournament_size=10
        )
        assert winner is population[9]

    def test_mismatched_lengths_rejected(self, population, rng):
        with pytest.raises(ValueError):
            tournament_selection(population, [1.0], rng)

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_selection([], [], rng)

    def test_selection_pressure(self, population, rng):
        """Higher-fitness individuals win more often."""
        fitnesses = list(range(10))
        wins = [0] * 10
        for _ in range(500):
            winner = tournament_selection(
                population, fitnesses, rng, tournament_size=3
            )
            wins[population.index(winner)] += 1
        assert wins[9] > wins[0]
        assert sum(wins[5:]) > sum(wins[:5])


class TestCrossover:
    def test_children_combine_parents(self, rng):
        a = random_program(ARM_ISA, 20, rng, name="a")
        b = random_program(ARM_ISA, 20, rng, name="b")
        child_a, child_b = one_point_crossover(a, b, rng)
        assert len(child_a) == len(child_b) == 20
        # every child gene comes from one of the parents at its position
        for i in range(20):
            assert child_a.body[i] in (a.body[i], b.body[i])
            assert child_b.body[i] in (a.body[i], b.body[i])

    def test_children_are_complementary(self, rng):
        a = random_program(ARM_ISA, 20, rng)
        b = random_program(ARM_ISA, 20, rng)
        child_a, child_b = one_point_crossover(a, b, rng)
        for i in range(20):
            pair = {child_a.body[i], child_b.body[i]}
            assert pair == {a.body[i], b.body[i]}

    def test_length_mismatch_rejected(self, rng):
        a = random_program(ARM_ISA, 10, rng)
        b = random_program(ARM_ISA, 20, rng)
        with pytest.raises(ValueError):
            one_point_crossover(a, b, rng)


class TestMutation:
    def test_zero_rate_is_identity(self, rng):
        p = random_program(ARM_ISA, 30, rng)
        assert mutate(p, rng, rate=0.0) is p

    def test_full_rate_changes_most_genes(self, rng):
        p = random_program(ARM_ISA, 50, rng)
        mutated = mutate(p, rng, rate=1.0)
        differing = sum(
            1 for a, b in zip(p.body, mutated.body) if a != b
        )
        assert differing > 25

    def test_typical_rate_changes_few_genes(self, rng):
        p = random_program(ARM_ISA, 50, rng)
        total_diff = 0
        for seed in range(30):
            m = mutate(p, np.random.default_rng(seed), rate=0.03)
            total_diff += sum(
                1 for a, b in zip(p.body, m.body) if a != b
            )
        # expectation: 50 * 0.03 = 1.5 per mutation pass
        assert 0.3 < total_diff / 30 < 4.0

    def test_invalid_rate_rejected(self, rng):
        p = random_program(ARM_ISA, 10, rng)
        with pytest.raises(ValueError):
            mutate(p, rng, rate=1.5)

    def test_mutation_respects_pool(self, rng):
        pool = (ARM_ISA.spec("add"), ARM_ISA.spec("mul"))
        p = random_program(ARM_ISA, 40, rng, pool=pool)
        m = mutate(p, rng, rate=1.0, pool=pool)
        assert {i.mnemonic for i in m.body} <= {"add", "mul"}

    def test_mutated_program_is_valid(self, rng):
        p = random_program(ARM_ISA, 40, rng)
        m = mutate(p, rng, rate=0.5)
        # reconstruction validates register/memory bounds
        LoopProgram(isa=m.isa, body=m.body)
