"""Unit tests for loop-template source rendering."""

import numpy as np

from repro.cpu.arm import ARM_ISA
from repro.cpu.program import program_from_mnemonics, random_program
from repro.ga.templates import render_individual_source, used_registers


class TestUsedRegisters:
    def test_collects_dest_and_sources(self):
        p = program_from_mnemonics(ARM_ISA, ["add"])
        regs = used_registers(p)
        from repro.cpu.isa import RegisterFile

        instr = p.body[0]
        expected = sorted({instr.dest, *instr.sources})
        assert regs[RegisterFile.INT] == expected

    def test_separate_register_files(self):
        p = program_from_mnemonics(ARM_ISA, ["add", "fadd", "vmul"])
        regs = used_registers(p)
        from repro.cpu.isa import RegisterFile

        assert regs[RegisterFile.INT]
        assert regs[RegisterFile.FP]
        assert regs[RegisterFile.VEC]


class TestRenderSource:
    def test_source_structure(self):
        p = program_from_mnemonics(
            ARM_ISA, ["add", "ldr", "fsqrt"], name="ind7"
        )
        src = render_individual_source(p)
        assert "ind7" in src
        assert ".data" in src and ".text" in src
        assert "virus_loop:" in src
        assert src.rstrip().endswith("b virus_loop")

    def test_all_used_registers_initialized(self):
        p = random_program(ARM_ISA, 30, np.random.default_rng(1))
        src = render_individual_source(p)
        for instr in p.body:
            for reg in instr.sources:
                prefix = {"int": "r", "fp": "f", "vec": "v"}[
                    instr.spec.regfile.value
                ]
                assert f"init {prefix}{reg}," in src

    def test_memory_buffer_sized_to_slots(self):
        p = program_from_mnemonics(ARM_ISA, ["ldr"])
        src = render_individual_source(p)
        assert f".skip {ARM_ISA.memory_slots * 8}" in src

    def test_custom_label(self):
        p = program_from_mnemonics(ARM_ISA, ["add"])
        src = render_individual_source(p, label="lp")
        assert "lp:" in src and "b lp" in src
