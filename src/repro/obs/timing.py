"""Per-kernel wall-time accumulation for the evaluation hot path.

The three compute kernels behind every fitness evaluation -- the issue
scheduler (:meth:`repro.cpu.pipeline.Pipeline.execute`), the current
model (:meth:`repro.cpu.current.CurrentModel.trace`) and the transient
PDN solver (:meth:`repro.pdn.transient.TransientSolver.run`) -- wrap
their bodies in :func:`kernel_section`.  When no collector is active
(the default) the wrapper is a single module-global check; inside
:func:`collect_kernel_timings` each section accumulates call counts and
total seconds, which the GA engine folds into its per-generation
``kernel_timings`` events.

Collection is process-local *and thread-local*: with
``GAConfig.workers > 1`` the kernels run in worker processes and the
parent's collector only sees the re-measurement of champions, while
the island engine (:mod:`repro.ga.islands`) runs one ``GAEngine`` per
thread, each with its own active collector -- a module global would
cross-attribute their timings.  Timings are observability, not a
determinism input -- they never feed back into the computation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class KernelTimings:
    """Accumulated wall time per named kernel section."""

    def __init__(self) -> None:
        self.total_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        self.total_s[name] = self.total_s.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{kernel: {"calls": n, "total_s": seconds}}`` for events."""
        return {
            name: {
                "calls": self.calls[name],
                "total_s": round(self.total_s[name], 6),
            }
            for name in sorted(self.total_s)
        }

    def clear(self) -> None:
        self.total_s.clear()
        self.calls.clear()

    def __bool__(self) -> bool:
        return bool(self.total_s)


# The active collector, one slot per thread; kernels check this one
# thread-local per call, so the disabled path costs a lookup and a
# comparison, and concurrent island threads never share a collector.
_STATE = threading.local()


def _active() -> Optional[KernelTimings]:
    return getattr(_STATE, "active", None)


@contextmanager
def collect_kernel_timings(
    collector: Optional[KernelTimings] = None,
) -> Iterator[KernelTimings]:
    """Activate (or reuse) a collector for the duration of the block."""
    previous = _active()
    _STATE.active = collector if collector is not None else KernelTimings()
    try:
        yield _STATE.active
    finally:
        _STATE.active = previous


@contextmanager
def kernel_section(name: str) -> Iterator[None]:
    """Time one kernel invocation into the active collector, if any."""
    collector = _active()
    if collector is None:
        yield
        return
    start = time.monotonic()
    try:
        yield
    finally:
        collector.add(name, time.monotonic() - start)


def timed_kernel(name: str):
    """Decorator form of :func:`kernel_section` for whole kernels.

    With no active collector the overhead is one global load per call,
    so it is safe on production hot paths.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            collector = _active()
            if collector is None:
                return fn(*args, **kwargs)
            start = time.monotonic()
            try:
                return fn(*args, **kwargs)
            finally:
                collector.add(name, time.monotonic() - start)

        return wrapper

    return decorate
