"""Radiated-emission model: die current harmonics -> EM field spectrum.

For an electrically small radiator the radiation resistance grows as
``f^2``, so the radiated *power* at harmonic ``f`` with oscillatory
current amplitude ``I(f)`` is

    P_rad(f) = k * (f / f_ref)^2 * I(f)^2

(the quadratic current dependence of Section 2.2).  The field amplitude
is the square root of that.  The gentle ``f`` tilt across 50-200 MHz is
small against the resonance peak of ``I(f)``, so the spectrum's maximum
still lands on the PDN resonance -- which the validation tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.pdn.steady_state import PeriodicResponse


@dataclass
class EmissionSpectrum:
    """Discrete emission lines: frequencies and field amplitudes.

    ``amplitudes`` are in volt-equivalent field units at a reference
    distance; the propagation model scales them to the antenna.
    """

    frequencies_hz: np.ndarray
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        self.frequencies_hz = np.asarray(self.frequencies_hz, dtype=float)
        self.amplitudes = np.asarray(self.amplitudes, dtype=float)
        if self.frequencies_hz.shape != self.amplitudes.shape:
            raise ValueError("frequency and amplitude arrays must align")

    def band(self, low_hz: float, high_hz: float) -> "EmissionSpectrum":
        mask = (self.frequencies_hz >= low_hz) & (
            self.frequencies_hz <= high_hz
        )
        return EmissionSpectrum(
            self.frequencies_hz[mask], self.amplitudes[mask]
        )

    def peak(self) -> Tuple[float, float]:
        """(frequency_hz, amplitude) of the strongest line."""
        if self.frequencies_hz.size == 0:
            return (0.0, 0.0)
        idx = int(np.argmax(self.amplitudes))
        return float(self.frequencies_hz[idx]), float(self.amplitudes[idx])


@dataclass(frozen=True)
class DieRadiator:
    """Distributed on-die antenna with a quadratic current-power law.

    ``field_per_amp`` sets the field amplitude produced by 1 A of
    oscillation at ``f_ref_hz``.  ``tilt_exponent`` blends the far-field
    radiation-resistance growth against the near-field magnetic
    coupling roll-off of a receive loop parked centimeters from the
    die; the mild net tilt keeps the spectrum's maximum pinned to the
    PDN resonance, as the paper's measurements show.
    """

    field_per_amp: float = 1.0e-3
    f_ref_hz: float = 100.0e6
    tilt_exponent: float = 0.4

    def tilt(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Frequency tilt of the radiator over a harmonic grid.

        Exposed separately so a :class:`repro.chain.SimulationSession`
        can cache it per grid -- it depends only on the frequencies,
        not on the current amplitudes.
        """
        return np.power(
            np.maximum(frequencies_hz, 1.0) / self.f_ref_hz,
            self.tilt_exponent,
        )

    def emission(
        self,
        response: PeriodicResponse,
        tilt: np.ndarray = None,
    ) -> EmissionSpectrum:
        """Emission lines from a steady-state PDN response.

        ``tilt`` optionally supplies a precomputed :meth:`tilt` array for
        the response's non-DC harmonic grid.
        """
        freqs, i_amps = response.current_spectrum()
        # Drop the DC component: a constant current does not radiate.
        freqs = freqs[1:]
        i_amps = i_amps[1:]
        if tilt is None:
            tilt = self.tilt(freqs)
        return EmissionSpectrum(freqs, self.field_per_amp * tilt * i_amps)


def combine_emissions(
    spectra: Iterable[EmissionSpectrum],
) -> EmissionSpectrum:
    """Superpose emission spectra from multiple voltage domains.

    Lines at identical frequencies add in power (incoherent sources:
    separate clusters run unsynchronized clocks), which is what lets a
    single antenna monitor several domains at once (Fig. 15).
    """
    freq_power: dict = {}
    for spectrum in spectra:
        for f, a in zip(spectrum.frequencies_hz, spectrum.amplitudes):
            freq_power[f] = freq_power.get(f, 0.0) + a * a
    if not freq_power:
        return EmissionSpectrum(np.empty(0), np.empty(0))
    freqs = np.array(sorted(freq_power))
    amps = np.sqrt(np.array([freq_power[f] for f in freqs]))
    return EmissionSpectrum(freqs, amps)
