"""Unit tests for the fast resonance sweep (Section 5.3)."""

import numpy as np
import pytest

from repro.core.resonance import ResonanceSweep
from repro.obs.context import RunContext


@pytest.fixture
def sweep(characterizer):
    return ResonanceSweep(characterizer, samples_per_point=3)


def a72_clocks():
    return [1.2e9 - k * 40e6 for k in range(26)]


class TestSweep:
    def test_finds_a72_resonance(self, a72, sweep):
        result = sweep.run(RunContext(cluster=a72), clocks_hz=a72_clocks())
        assert result.resonance_hz() == pytest.approx(67e6, abs=5e6)
        assert result.cluster_name == "cortex-a72"
        assert result.powered_cores == 2

    def test_clock_restored_after_sweep(self, a72, sweep):
        sweep.run(RunContext(cluster=a72), clocks_hz=a72_clocks())
        assert a72.clock_hz == 1.2e9

    def test_series_sorted_by_frequency(self, a72, sweep):
        result = sweep.run(RunContext(cluster=a72), clocks_hz=a72_clocks())
        freqs, amps = result.series()
        assert (np.diff(freqs) > 0).all()
        assert freqs.size == amps.size == len(result.points)

    def test_amplitude_peaks_inside_sweep(self, a72, sweep):
        """The amplitude maximum is interior, not a band edge."""
        result = sweep.run(RunContext(cluster=a72), clocks_hz=a72_clocks())
        freqs, amps = result.series()
        peak_idx = int(np.argmax(amps))
        assert 0 < peak_idx < freqs.size - 1


class TestPowerGatingStudy:
    def test_resonance_rises_as_cores_gate_off(self, a53, characterizer):
        sweep = ResonanceSweep(characterizer, samples_per_point=3)
        clocks = [950e6 - k * 25e6 for k in range(34)]
        results = sweep.power_gating_study(
            a53, core_counts=(4, 1), clocks_hz=clocks
        )
        four, one = results
        assert four.powered_cores == 4
        assert one.powered_cores == 1
        assert one.resonance_hz() > four.resonance_hz()

    def test_gating_state_restored(self, a53, characterizer):
        sweep = ResonanceSweep(characterizer, samples_per_point=2)
        clocks = [950e6 - k * 50e6 for k in range(8)]
        sweep.power_gating_study(a53, core_counts=(2,), clocks_hz=clocks)
        assert a53.powered_cores == 4

    def test_single_active_core_isolates_capacitance(
        self, a53, characterizer
    ):
        """Section 6: with one active core in all states, amplitude is
        highest when the least capacitance is present (fewest powered)."""
        sweep = ResonanceSweep(characterizer, samples_per_point=3)
        clocks = [950e6 - k * 25e6 for k in range(34)]
        results = sweep.power_gating_study(
            a53, core_counts=(4, 1), clocks_hz=clocks
        )
        four, one = results
        assert max(p.amplitude_w for p in one.points) > max(
            p.amplitude_w for p in four.points
        )
