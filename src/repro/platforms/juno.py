"""ARM Juno R2 development platform model.

Hosts the big.LITTLE pair of clusters from Table 1:

- Cortex-A72: dual-core, out-of-order, 1.2 GHz / 1.0 V nominal, with
  the OC-DSO power-supply monitor and the SCL square-wave injector on
  its rail.
- Cortex-A53: quad-core, in-order, 950 MHz / 1.0 V nominal, in a
  separate voltage domain with *no* voltage-noise visibility -- the
  cluster that motivates the EM methodology.

The :class:`SystemControlProcessor` mirrors the DS-5/SCP control path
the paper uses to sweep frequency, change voltage and power-gate cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel
from repro.cpu.isa import ExecutionUnit
from repro.cpu.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.scl import SyntheticCurrentLoad
from repro.pdn.models import CORTEX_A53_PDN, CORTEX_A72_PDN
from repro.platforms.base import Cluster, ClusterSpec, NoiseVisibility

A72_UNITS: Dict[ExecutionUnit, int] = {
    ExecutionUnit.ALU: 2,
    ExecutionUnit.MUL: 1,
    ExecutionUnit.DIV: 1,
    ExecutionUnit.FPU: 2,
    ExecutionUnit.FDIV: 1,
    ExecutionUnit.SIMD: 2,
    ExecutionUnit.LSU: 2,
    ExecutionUnit.BRANCH: 1,
}

A53_UNITS: Dict[ExecutionUnit, int] = {
    ExecutionUnit.ALU: 2,
    ExecutionUnit.MUL: 1,
    ExecutionUnit.DIV: 1,
    ExecutionUnit.FPU: 1,
    ExecutionUnit.FDIV: 1,
    ExecutionUnit.SIMD: 1,
    ExecutionUnit.LSU: 1,
    ExecutionUnit.BRANCH: 1,
}

A72_SPEC = ClusterSpec(
    name="cortex-a72",
    isa=ARM_ISA,
    num_cores=2,
    microarchitecture="out-of-order",
    nominal_voltage=1.0,
    nominal_clock_hz=1.2e9,
    clock_step_hz=20.0e6,
    min_clock_hz=120.0e6,
    technology_nm=16,
    visibility=NoiseVisibility.OC_DSO,
    has_scl=True,
    pdn_params=CORTEX_A72_PDN,
    current_model=CurrentModel(
        base_current_a=0.30, amps_per_energy=0.55, frontend_energy=0.25
    ),
    uncore_current_a=0.15,
)

A53_SPEC = ClusterSpec(
    name="cortex-a53",
    isa=ARM_ISA,
    num_cores=4,
    microarchitecture="in-order",
    nominal_voltage=1.0,
    nominal_clock_hz=950.0e6,
    clock_step_hz=25.0e6,
    min_clock_hz=100.0e6,
    technology_nm=16,
    visibility=NoiseVisibility.NONE,
    has_scl=False,
    pdn_params=CORTEX_A53_PDN,
    current_model=CurrentModel(
        base_current_a=0.12, amps_per_energy=0.30, frontend_energy=0.15
    ),
    uncore_current_a=0.08,
)


class SystemControlProcessor:
    """SCP facade: named control operations over the board's clusters."""

    def __init__(self, clusters: Dict[str, Cluster]):
        self._clusters = clusters

    def set_frequency(self, cluster: str, clock_hz: float) -> None:
        self._clusters[cluster].set_clock(clock_hz)

    def set_voltage(self, cluster: str, volts: float) -> None:
        self._clusters[cluster].set_voltage(volts)

    def power_gate(self, cluster: str, powered_cores: int) -> None:
        self._clusters[cluster].power_gate(powered_cores)

    def reset(self) -> None:
        for cluster in self._clusters.values():
            cluster.reset()


@dataclass
class JunoBoard:
    """The Juno R2 board: two clusters, SCP, OC-DSO and SCL on the A72."""

    a72: Cluster
    a53: Cluster
    oc_dso: Oscilloscope
    scl: SyntheticCurrentLoad
    scp: SystemControlProcessor = field(init=False)

    def __post_init__(self) -> None:
        self.scp = SystemControlProcessor(
            {"cortex-a72": self.a72, "cortex-a53": self.a53}
        )

    @property
    def clusters(self) -> Dict[str, Cluster]:
        return {"cortex-a72": self.a72, "cortex-a53": self.a53}


def make_juno_board(dso_seed: int = 11) -> JunoBoard:
    """Fresh Juno board model at nominal operating points."""
    import numpy as np

    a72 = Cluster(
        A72_SPEC,
        OutOfOrderPipeline(
            width=3, window=48, rob_size=128, unit_counts=A72_UNITS, name="a72"
        ),
    )
    a53 = Cluster(
        A53_SPEC,
        InOrderPipeline(width=2, unit_counts=A53_UNITS, name="a53"),
    )
    dso = Oscilloscope(
        sample_rate_hz=1.6e9,
        resolution_bits=9,
        noise_rms_v=0.5e-3,
        rng=np.random.default_rng(dso_seed),
    )
    return JunoBoard(a72=a72, a53=a53, oc_dso=dso, scl=SyntheticCurrentLoad())
