"""Ablation: why the GA template avoids cache misses (Section 3.3).

Paper: *"events such as cache misses ... result in significant jitter
to the GA algorithm, which in turn impedes its convergence."*

Two GA runs with identical budgets on the Cortex-A72:

- **deterministic** -- the paper's configuration: all memory accesses
  hit the L1-resident buffer; fitness is repeatable and memoizable.
- **missy** -- addresses span 4x the L1 window through a cache model
  with randomized miss penalties; fitness is noisy, memoization is
  disabled (re-measuring a clone legitimately differs).

The deterministic run must reach a substantially higher true score.
"""

import numpy as np

from repro.cpu.arm import ARM_ISA
from repro.cpu.cache import CacheModel
from repro.cpu.isa import InstructionSet
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import EMAmplitudeFitness
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

from benchmarks.conftest import print_header

CONFIG = GAConfig(
    population_size=24, generations=20, loop_length=50, seed=12
)

WIDE_MEM_ISA = InstructionSet(
    name="armv8-wide-mem",
    specs=ARM_ISA.specs,
    registers=dict(ARM_ISA.registers),
    memory_slots=256,
)


def _true_score(cluster, program, band=(50e6, 200e6)):
    """Noise-free figure of merit: the banded EM line amplitude of the
    deterministic (hit-only, addresses folded into L1) execution."""
    folded = []
    from repro.cpu.isa import Instruction

    for instr in program.body:
        if instr.spec.touches_memory and instr.address >= 64:
            instr = Instruction(
                spec=instr.spec,
                dest=instr.dest,
                sources=instr.sources,
                address=instr.address % 64,
            )
        folded.append(instr)
    from repro.cpu.program import LoopProgram

    clean = LoopProgram(isa=ARM_ISA, body=tuple(folded), name="folded")
    run = cluster.run(clean)
    freqs, amps = run.response.current_spectrum()
    mask = (freqs >= band[0]) & (freqs <= band[1])
    return float(amps[mask].max()) if mask.any() else 0.0


def test_ablation_cache_miss_jitter(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()

    def run_both():
        analyzer = SpectrumAnalyzer(rng=np.random.default_rng(101))
        det_fitness = EMAmplitudeFitness(analyzer=analyzer, samples=8)
        det = GAEngine(
            lambda p: det_fitness(a72, p), CONFIG
        ).run(ARM_ISA)

        noisy_fitness = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(102)),
            samples=8,
            cache_model=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(103),
        )
        missy = GAEngine(
            lambda p: noisy_fitness(a72, p), CONFIG, memoize=False
        ).run(WIDE_MEM_ISA)
        return det, missy

    det, missy = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_header(
        "Ablation: GA convergence with vs without cache misses (A72)"
    )
    print(f"{'gen':>4} {'deterministic':>16} {'with misses':>14}")
    for d, m in list(zip(det.history, missy.history))[::4]:
        print(
            f"{d.generation:>4} {d.best.score:>13.3e} W "
            f"{m.best.score:>11.3e} W"
        )

    det_true = _true_score(a72, det.best_program)
    missy_true = _true_score(a72, missy.best_program)
    print(
        f"  true (noise-free) resonant current of final virus: "
        f"deterministic {det_true:.3f} A vs missy {missy_true:.3f} A"
    )
    # The deterministic configuration converges to a substantially
    # stronger virus.  (Measured droop is not a fair comparison: the
    # missy run's droop includes the random miss-stall dips themselves,
    # which is exactly the jitter that misleads the GA.)
    assert det_true > 1.2 * missy_true
