"""Integration tests asserting the paper's headline claims end-to-end.

Each test exercises the full stack (pipeline -> current -> PDN ->
radiation -> antenna -> spectrum analyzer -> GA / V_MIN harness) and
checks the qualitative result the corresponding paper section reports.
GA configurations are scaled down for test runtime; the benchmarks
directory runs the paper-scale versions.
"""

import numpy as np
import pytest

from repro import EMCharacterizer, ResonanceSweep, VirusGenerator
from repro.core.characterizer import FIRST_ORDER_BAND
from repro.ga.engine import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.context import RunContext
from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload
from repro.workloads.loops import high_low_program
from repro.workloads.spec import spec_workload
from repro.workloads.stress import idle_workload

GA_SMALL = GAConfig(
    population_size=20, generations=18, loop_length=50, seed=4
)
# The A53/AMD searches need a few more generations to lock the dominant
# frequency onto the resonance at test scale (benchmarks run paper scale).
GA_MEDIUM = GAConfig(
    population_size=24, generations=25, loop_length=50, seed=4
)


def fresh_characterizer(seed=5):
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=6,
    )


class TestSection5Validation:
    """EM emanations correlate with on-chip voltage noise (A72)."""

    @pytest.fixture(scope="class")
    def ga_summary(self, juno_board):
        juno_board.a72.reset()
        gen = VirusGenerator(
            juno_board.a72, fresh_characterizer(), config=GA_SMALL
        )
        return gen.generate_em_virus(samples=6)

    def test_em_score_and_droop_rise_together(self, ga_summary):
        """Fig. 7: as EM amplitude grows across generations, so does
        the OC-DSO droop of the best individual."""
        scores = ga_summary.ga_result.score_series()
        droops = ga_summary.ga_result.droop_series()
        assert scores[-1] > 1.5 * scores[0]
        # droop correlates: final droop beats the generation-0 droop
        assert droops[-1] > droops[0]
        corr = np.corrcoef(scores, droops)[0, 1]
        assert corr > 0.5

    def test_ga_locks_dominant_frequency_to_resonance(self, ga_summary):
        """Fig. 7: the GA prefers individuals dominant at ~67 MHz."""
        assert ga_summary.dominant_frequency_hz == pytest.approx(
            67e6, abs=6e6
        )

    def test_em_virus_beats_spec_on_vmin(self, juno_board, ga_summary):
        """Fig. 10: virus V_MIN above lbm's, which is above idle's."""
        a72 = juno_board.a72
        a72.reset()
        tester = VminTester(
            a72, failure_model_for("cortex-a72"), seed=3
        )
        virus = ProgramWorkload(
            "em-virus", ga_summary.virus, jitter_seed=None
        )
        results = tester.compare(
            [idle_workload(), spec_workload(a72.spec.isa, "lbm"), virus],
            virus_repeats=8,
            benchmark_repeats=2,
            virus_names=("em-virus",),
        )
        assert results["em-virus"].vmin > results["lbm"].vmin
        assert results["lbm"].vmin > results["idle"].vmin

    def test_spectrum_analyzer_agrees_with_ocdso_fft(
        self, juno_board, ga_summary
    ):
        """Fig. 9: both instruments see the same dominant spike."""
        from repro.analysis.spectra import spikes_agree

        a72 = juno_board.a72
        a72.reset()
        run = a72.run(ga_summary.virus)
        capture = juno_board.oc_dso.capture(run.response, 4e-6)
        char = fresh_characterizer()
        spikes = char.spectrum_vs_scope_fft(run, capture)
        assert spikes_agree(
            spikes["spectrum_analyzer"][:2],
            spikes["oc_dso_fft"],
            tolerance_hz=3e6,
            require=1,
        )

    def test_scl_sweep_matches_em_sweep(self, juno_board):
        """Figs. 8 + 11: SCL (electrical) and EM (loop sweep) agree."""
        a72 = juno_board.a72
        a72.reset()
        freqs = np.arange(50e6, 110e6, 2e6)
        scl_res = juno_board.scl.sweep(
            a72.pdn.solver(2), freqs
        ).resonance_hz()
        sweep = ResonanceSweep(fresh_characterizer(), samples_per_point=3)
        clocks = [1.2e9 - k * 20e6 for k in range(54)]
        em_res = sweep.run(
            RunContext(cluster=a72), clocks_hz=clocks
        ).resonance_hz()
        assert em_res == pytest.approx(scl_res, abs=6e6)


class TestSection6A53:
    """EM methodology works without any voltage visibility."""

    @pytest.mark.slow
    def test_a53_virus_generation_without_visibility(self, juno_board):
        a53 = juno_board.a53
        a53.reset()
        assert a53.spec.visibility.value == "none"
        gen = VirusGenerator(
            a53, fresh_characterizer(7), config=GA_MEDIUM
        )
        summary = gen.generate_em_virus(samples=5)
        # Fig. 12: converges toward the A53's 76.5 MHz resonance
        assert summary.dominant_frequency_hz == pytest.approx(
            76.5e6, abs=8e6
        )

    def test_power_gating_shifts_resonance_up(self, juno_board):
        """Fig. 13: 4 powered cores ~76.5 MHz -> 1 powered ~97 MHz."""
        a53 = juno_board.a53
        a53.reset()
        sweep = ResonanceSweep(fresh_characterizer(9), samples_per_point=3)
        clocks = [950e6 - k * 25e6 for k in range(34)]
        results = sweep.power_gating_study(
            a53, core_counts=(4, 1), clocks_hz=clocks
        )
        four, one = results
        assert four.resonance_hz() == pytest.approx(76.5e6, abs=8e6)
        assert one.resonance_hz() == pytest.approx(97e6, abs=8e6)

    def test_multi_domain_monitoring(self, juno_board):
        """Fig. 15: both clusters' signatures in one sweep."""
        juno_board.a72.reset()
        juno_board.a53.reset()
        char = fresh_characterizer(11)
        run72 = juno_board.a72.run(
            high_low_program(juno_board.a72.spec.isa)
        )
        run53 = juno_board.a53.run(
            high_low_program(juno_board.a53.spec.isa)
        )
        md = char.monitor_domains(
            {"cortex-a72": run72, "cortex-a53": run53}
        )
        assert set(md.visible_domains()) == {"cortex-a72", "cortex-a53"}


class TestSection7AMD:
    """Cross-ISA generality: x86-64 desktop CPU."""

    def test_amd_fast_sweep_finds_78mhz(self, amd_desktop):
        """Fig. 16."""
        cpu = amd_desktop.cpu
        cpu.reset()
        sweep = ResonanceSweep(fresh_characterizer(13), samples_per_point=3)
        clocks = [3.1e9 - k * 100e6 for k in range(24)]
        result = sweep.run(RunContext(cluster=cpu), clocks_hz=clocks)
        assert result.resonance_hz() == pytest.approx(78e6, abs=6e6)

    @pytest.mark.slow
    def test_amd_em_ga_converges_near_resonance(self, amd_desktop):
        """Fig. 17."""
        cpu = amd_desktop.cpu
        cpu.reset()
        gen = VirusGenerator(
            cpu, fresh_characterizer(15), config=GA_MEDIUM
        )
        summary = gen.generate_em_virus(samples=5)
        assert summary.dominant_frequency_hz == pytest.approx(
            78e6, abs=9e6
        )

    @pytest.mark.slow
    def test_em_virus_beats_prime95_stability(self, amd_desktop):
        """Fig. 18: the EM virus crashes at voltages where Prime95-style
        power viruses run forever."""
        from repro.workloads.stress import prime95_like

        cpu = amd_desktop.cpu
        cpu.reset()
        gen = VirusGenerator(
            cpu, fresh_characterizer(17), config=GA_SMALL
        )
        summary = gen.generate_em_virus(samples=5)
        tester = VminTester(
            cpu,
            failure_model_for("amd-athlon-ii-x4-645"),
            step_v=0.0125,
            seed=7,
        )
        virus = ProgramWorkload(
            "em-virus", summary.virus, jitter_seed=None
        )
        results = tester.compare(
            [prime95_like(cpu.spec.isa), virus],
            virus_repeats=8,
            benchmark_repeats=2,
            virus_names=("em-virus",),
        )
        assert results["em-virus"].vmin > results["prime95"].vmin


class TestSection8CrossPlatform:
    """Table 2 structure: loop vs dominant frequency (Section 8.2)."""

    def test_arm_virus_loop_frequency_below_dominant(self, juno_board):
        """On the slow ARM clocks the GA builds sub-loop periodicity:
        loop frequency < dominant frequency."""
        a72 = juno_board.a72
        a72.reset()
        gen = VirusGenerator(
            a72,
            fresh_characterizer(19),
            config=GAConfig(
                population_size=16, generations=12, loop_length=50, seed=6
            ),
        )
        summary = gen.generate_em_virus(samples=5)
        min_ipc_needed = (
            summary.dominant_frequency_hz * 50 / a72.clock_hz
        )
        assert min_ipc_needed > 2.0  # the Section 8.2 argument
        assert summary.loop_frequency_hz < summary.dominant_frequency_hz
