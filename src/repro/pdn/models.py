"""Calibrated per-platform PDN models.

Each platform in the paper (Table 1) gets a :class:`PDNParameters`
preset whose first-order LC tank (die capacitance against package
inductance) is calibrated to the resonance frequencies the paper
measured:

- Cortex-A72 cluster: 67 MHz with both cores powered, ~83 MHz with one
  (Figs. 7, 8, 11).
- Cortex-A53 cluster: 76.5 MHz with four cores powered, rising to
  ~97 MHz with one (Fig. 13).
- AMD Athlon II X4 645: 78 MHz (Figs. 16, 17).

Die capacitance follows ``C(n) = c_die_base + n * c_die_per_core``: a
power-gated core removes its local decoupling capacitance from the rail
(Section 6 of the paper), shifting the resonance up.  The second- and
third-order tanks (package/PCB decap networks) use representative
values placing them at a few MHz and a few tens of kHz (Fig. 1b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Sequence

import numpy as np

from repro.pdn.elements import VoltageSource
from repro.pdn.impedance import ACAnalysis, analyze_ac
from repro.pdn.netlist import Circuit
from repro.pdn.steady_state import SteadyStateSolver

DIE_NODE = "die"
PKG_NODE = "pkg"
PCB_NODE = "pcb"
VRM_NODE = "vrm"
SENSE_BRANCH = "pkg_trace.l"


@dataclass(frozen=True)
class PDNParameters:
    """Electrical parameters of a die/package/PCB power-delivery network."""

    name: str
    nominal_voltage: float
    num_cores: int
    # First-order tank (die cap vs package inductance).
    c_die_base: float
    c_die_per_core: float
    r_die: float
    l_pkg: float
    r_pkg: float
    # Second-order tank (package/PCB decap vs board trace inductance).
    c_pkg: float
    esr_pkg: float
    esl_pkg: float
    l_pcb: float
    r_pcb: float
    # Third-order tank (bulk capacitance vs VRM inductance).
    c_pcb: float
    esr_pcb: float
    esl_pcb: float
    l_vrm: float
    r_vrm: float

    def die_capacitance(self, powered_cores: int) -> float:
        """Total on-die capacitance with ``powered_cores`` cores powered."""
        if not 1 <= powered_cores <= self.num_cores:
            raise ValueError(
                f"{self.name}: powered_cores must be in 1..{self.num_cores}"
            )
        return self.c_die_base + powered_cores * self.c_die_per_core


def first_order_resonance_hz(
    params: PDNParameters, powered_cores: int
) -> float:
    """Analytic estimate of the first-order resonance frequency.

    ``f = 1 / (2 pi sqrt(L_pkg * C_die))`` -- the tank formed by the die
    capacitance and the package inductance.  The full AC analysis
    shifts this slightly (damping, downstream network); use
    :meth:`PDNModel.measured_resonance_hz` for the exact network value.
    """
    c = params.die_capacitance(powered_cores)
    return 1.0 / (2.0 * math.pi * math.sqrt(params.l_pkg * c))


class PDNModel:
    """A platform PDN: builds circuits and solvers per power-gating state."""

    def __init__(self, params: PDNParameters):
        self.params = params
        self._solvers: Dict[int, SteadyStateSolver] = {}

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def nominal_voltage(self) -> float:
        return self.params.nominal_voltage

    def build_circuit(self, powered_cores: int) -> Circuit:
        """Assemble the Fig. 1(a) netlist for a power-gating state."""
        p = self.params
        c = Circuit(f"{p.name}-pdn-{powered_cores}c")
        c.add(VoltageSource("vdd", VRM_NODE, "0", voltage=p.nominal_voltage))
        c.add_series_rlc(
            "vrm_out", VRM_NODE, PCB_NODE, resistance=p.r_vrm, inductance=p.l_vrm
        )
        c.add_series_rlc(
            "bulk_cap",
            PCB_NODE,
            "0",
            resistance=p.esr_pcb,
            inductance=p.esl_pcb,
            capacitance=p.c_pcb,
        )
        c.add_series_rlc(
            "pcb_trace", PCB_NODE, PKG_NODE, resistance=p.r_pcb, inductance=p.l_pcb
        )
        c.add_series_rlc(
            "pkg_cap",
            PKG_NODE,
            "0",
            resistance=p.esr_pkg,
            inductance=p.esl_pkg,
            capacitance=p.c_pkg,
        )
        c.add_series_rlc(
            "pkg_trace", PKG_NODE, DIE_NODE, resistance=p.r_pkg, inductance=p.l_pkg
        )
        c.add_series_rlc(
            "die_cap",
            DIE_NODE,
            "0",
            resistance=p.r_die,
            capacitance=p.die_capacitance(powered_cores),
        )
        return c

    def solver(self, powered_cores: int) -> SteadyStateSolver:
        """Cached periodic steady-state solver for a power-gating state."""
        solver = self._solvers.get(powered_cores)
        if solver is None:
            solver = SteadyStateSolver(
                self.build_circuit(powered_cores),
                die_node=DIE_NODE,
                sense_branch=SENSE_BRANCH,
                nominal_voltage=self.params.nominal_voltage,
            )
            self._solvers[powered_cores] = solver
        return solver

    def impedance_analysis(
        self, frequencies_hz: Sequence[float], powered_cores: int
    ) -> ACAnalysis:
        """AC analysis (impedance seen by the die) for Fig. 1(b) style plots."""
        return analyze_ac(
            self.build_circuit(powered_cores), DIE_NODE, frequencies_hz
        )

    def analytic_resonance_hz(self, powered_cores: int) -> float:
        return first_order_resonance_hz(self.params, powered_cores)

    def measured_resonance_hz(
        self,
        powered_cores: int,
        band: Sequence[float] = (50e6, 200e6),
        points: int = 601,
    ) -> float:
        """First-order resonance located on the full network's Z(f) peak."""
        freqs = np.linspace(band[0], band[1], points)
        analysis = self.impedance_analysis(freqs, powered_cores)
        return analysis.peak_frequency_hz(DIE_NODE)


# ---------------------------------------------------------------------------
# Calibrated presets (see module docstring for the target frequencies)
# ---------------------------------------------------------------------------

_DOWNSTREAM = dict(
    c_pkg=10.0e-6,
    esr_pkg=2.0e-3,
    esl_pkg=10.0e-12,
    l_pcb=0.5e-9,
    r_pcb=1.0e-3,
    c_pcb=1.0e-3,
    esr_pcb=15.0e-3,
    esl_pcb=2.0e-9,
    l_vrm=120.0e-9,
    r_vrm=1.0e-3,
)

CORTEX_A72_PDN = PDNParameters(
    name="cortex-a72",
    nominal_voltage=1.0,
    num_cores=2,
    c_die_base=68.04e-9,
    c_die_per_core=81.52e-9,
    r_die=2.0e-3,
    l_pkg=15.0e-12,
    r_pkg=1.0e-3,
    **_DOWNSTREAM,
)

CORTEX_A53_PDN = PDNParameters(
    name="cortex-a53",
    nominal_voltage=1.0,
    num_cores=4,
    c_die_base=86.51e-9,
    c_die_per_core=22.51e-9,
    r_die=2.5e-3,
    l_pkg=15.0e-12,
    r_pkg=1.2e-3,
    **_DOWNSTREAM,
)

AMD_ATHLON_PDN = PDNParameters(
    name="amd-athlon-ii-x4-645",
    nominal_voltage=1.4,
    num_cores=4,
    c_die_base=105.37e-9,
    c_die_per_core=40.49e-9,
    r_die=1.2e-3,
    l_pkg=6.0e-12,
    r_pkg=0.4e-3,
    **_DOWNSTREAM,
)

PRESETS: Dict[str, PDNParameters] = {
    p.name: p for p in (CORTEX_A72_PDN, CORTEX_A53_PDN, AMD_ATHLON_PDN)
}


def preset(name: str) -> PDNParameters:
    """Look up a calibrated PDN preset by platform name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown PDN preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


def scaled(params: PDNParameters, **overrides: float) -> PDNParameters:
    """Return a copy of ``params`` with fields replaced (for ablations)."""
    return replace(params, **overrides)
