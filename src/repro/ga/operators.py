"""Evolutionary operators: tournament selection, crossover, mutation.

The paper's empirically chosen operators (Section 3.1c): tournament
parent selection, one-point crossover exchanging instructions between
two parents, and a 2-4 % mutation rate where a mutation converts an
instruction into another or rewrites one of its operands.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.isa import Instruction, InstructionSpec
from repro.cpu.program import LoopProgram, random_instruction


def tournament_selection(
    population: Sequence[LoopProgram],
    fitnesses: Sequence[float],
    rng: np.random.Generator,
    tournament_size: int = 3,
) -> LoopProgram:
    """Pick the fittest of ``tournament_size`` random contestants."""
    if len(population) != len(fitnesses):
        raise ValueError("population and fitnesses must align")
    if not population:
        raise ValueError("population is empty")
    k = min(tournament_size, len(population))
    contestants = rng.choice(len(population), size=k, replace=False)
    winner = max(contestants, key=lambda i: fitnesses[i])
    return population[int(winner)]


def one_point_crossover(
    parent_a: LoopProgram,
    parent_b: LoopProgram,
    rng: np.random.Generator,
) -> Tuple[LoopProgram, LoopProgram]:
    """Swap instruction tails at a random cut point."""
    if len(parent_a) != len(parent_b):
        raise ValueError("parents must have equal loop length")
    if parent_a.isa is not parent_b.isa and (
        parent_a.isa.name != parent_b.isa.name
    ):
        raise ValueError("parents must share an instruction set")
    n = len(parent_a)
    cut = int(rng.integers(1, n)) if n > 1 else 0
    child_a = parent_a.body[:cut] + parent_b.body[cut:]
    child_b = parent_b.body[:cut] + parent_a.body[cut:]
    return (
        LoopProgram(isa=parent_a.isa, body=child_a, name="child"),
        LoopProgram(isa=parent_a.isa, body=child_b, name="child"),
    )


def _mutate_operand(
    instr: Instruction,
    program: LoopProgram,
    rng: np.random.Generator,
) -> Instruction:
    """Rewrite one randomly chosen operand of ``instr``."""
    spec = instr.spec
    isa = program.isa
    choices: List[str] = []
    if spec.has_dest:
        choices.append("dest")
    choices.extend(f"src{i}" for i in range(spec.num_sources))
    if spec.touches_memory:
        choices.append("mem")
    if not choices:
        return random_instruction(spec, isa, rng)
    pick = choices[int(rng.integers(len(choices)))]
    n_regs = isa.registers[spec.regfile]
    if pick == "dest":
        return Instruction(
            spec=spec,
            dest=int(rng.integers(n_regs)),
            sources=instr.sources,
            address=instr.address,
        )
    if pick == "mem":
        return Instruction(
            spec=spec,
            dest=instr.dest,
            sources=instr.sources,
            address=int(rng.integers(isa.memory_slots)),
        )
    idx = int(pick[3:])
    sources = list(instr.sources)
    sources[idx] = int(rng.integers(n_regs))
    return Instruction(
        spec=spec,
        dest=instr.dest,
        sources=tuple(sources),
        address=instr.address,
    )


def mutate(
    program: LoopProgram,
    rng: np.random.Generator,
    rate: float = 0.03,
    pool: Optional[Sequence[InstructionSpec]] = None,
) -> LoopProgram:
    """Per-gene mutation: convert the instruction or one of its operands.

    Each body position mutates independently with probability ``rate``;
    half the mutations replace the instruction with a fresh random one
    from ``pool`` (default: the full ISA), half rewrite an operand.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("mutation rate must be within [0, 1]")
    specs = tuple(pool) if pool is not None else program.isa.specs
    body = list(program.body)
    changed = False
    for i, instr in enumerate(body):
        if rng.random() >= rate:
            continue
        changed = True
        if rng.random() < 0.5:
            new_spec = specs[int(rng.integers(len(specs)))]
            body[i] = random_instruction(new_spec, program.isa, rng)
        else:
            body[i] = _mutate_operand(instr, program, rng)
    if not changed:
        return program
    return LoopProgram(isa=program.isa, body=tuple(body), name=program.name)
