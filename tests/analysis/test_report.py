"""Unit tests for the characterization report."""

import numpy as np
import pytest

from repro.analysis.report import CharacterizationReport, characterize
from repro.core.characterizer import EMCharacterizer
from repro.ga.engine import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

SMALL_GA = GAConfig(
    population_size=10, generations=5, loop_length=20, seed=3
)


def quick_characterizer(seed=6):
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=3,
    )


class TestCharacterize:
    @pytest.fixture(scope="class")
    def report(self, juno_board):
        juno_board.a72.reset()
        return characterize(
            juno_board.a72,
            quick_characterizer(),
            ga_config=SMALL_GA,
            vmin_workload_names=("idle", "gcc"),
            seed=3,
        )

    def test_resonances_per_gating_state(self, report):
        assert set(report.resonances_hz) == {1, 2}
        assert report.resonances_hz[1] > report.resonances_hz[2]

    def test_virus_section_populated(self, report):
        assert report.virus is not None
        assert report.virus.max_droop_v > 0.0

    def test_vmin_includes_virus(self, report):
        assert "em-virus" in report.vmin_results
        assert "idle" in report.vmin_results
        assert report.vmin_results["em-virus"].vmin >= (
            report.vmin_results["idle"].vmin
        )

    def test_markdown_rendering(self, report):
        text = report.to_markdown()
        assert "# PDN characterization: cortex-a72" in text
        assert "| powered cores | resonance |" in text
        assert "EM-driven dI/dt virus" in text
        assert "V_MIN ladder" in text
        assert "em-virus" in text

    def test_vmin_skipped_for_unknown_cluster(self):
        """Clusters without a failure preset skip the ladder cleanly."""
        from repro.platforms.gpu import make_gpu_card

        gpu = make_gpu_card().gpu
        report = characterize(
            gpu,
            quick_characterizer(8),
            ga_config=SMALL_GA,
            seed=4,
        )
        assert report.vmin_results == {}
        text = report.to_markdown()
        assert "V_MIN ladder" not in text
        assert "gpu-8cu" in text
