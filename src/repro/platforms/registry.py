"""The Table 1 platform matrix as queryable data.

Besides the paper's rows, this module is the single source of truth
for *runnable* platforms: every CLI platform key maps to a
:class:`PlatformEntry` carrying its Table 1 row (when the paper has
one) and a factory building the cluster at its nominal state.  The CLI
(``resolve_cluster``, ``--platform`` choices and the ``platforms``
subcommand) dispatches through this registry instead of hand-rolled
string comparisons, so adding a platform is one entry here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.platforms.base import Cluster, NoiseVisibility


@dataclass(frozen=True)
class PlatformInfo:
    """One row of Table 1."""

    motherboard: str
    cpu: str
    num_cores: int
    isa: str
    microarchitecture: str
    nominal_clock_hz: float
    nominal_voltage: float
    technology_nm: int
    operating_system: str
    visibility: NoiseVisibility


PLATFORM_TABLE: Tuple[PlatformInfo, ...] = (
    PlatformInfo(
        motherboard="Juno Board R2",
        cpu="Cortex-A72",
        num_cores=2,
        isa="ARM",
        microarchitecture="Out of Order",
        nominal_clock_hz=1.2e9,
        nominal_voltage=1.0,
        technology_nm=16,
        operating_system="Debian",
        visibility=NoiseVisibility.OC_DSO,
    ),
    PlatformInfo(
        motherboard="Juno Board R2",
        cpu="Cortex-A53",
        num_cores=4,
        isa="ARM",
        microarchitecture="In-Order",
        nominal_clock_hz=0.95e9,
        nominal_voltage=1.0,
        technology_nm=16,
        operating_system="Debian",
        visibility=NoiseVisibility.NONE,
    ),
    PlatformInfo(
        motherboard="Asus M5A78L LE",
        cpu="Athlon II X4 645",
        num_cores=4,
        isa="x86-64",
        microarchitecture="Out of Order",
        nominal_clock_hz=3.1e9,
        nominal_voltage=1.4,
        technology_nm=45,
        operating_system="Windows 8.1",
        visibility=NoiseVisibility.KELVIN_PADS,
    ),
)


def by_cpu(cpu: str) -> PlatformInfo:
    for row in PLATFORM_TABLE:
        if row.cpu.lower() == cpu.lower():
            return row
    raise KeyError(f"no platform row for CPU {cpu!r}")


# ---------------------------------------------------------------------------
# Runnable platform registry (CLI keys -> cluster factories).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlatformEntry:
    """One runnable platform: CLI key, Table 1 row, cluster factory.

    ``info`` is ``None`` for extensions beyond the paper's matrix (the
    GPU card of Section 10's future work).  Factories are lazy so
    importing the registry never builds PDN models.
    """

    key: str
    description: str
    make_cluster: Callable[[], Cluster]
    info: Optional[PlatformInfo] = None

    @property
    def in_table1(self) -> bool:
        return self.info is not None


def _make_a72() -> Cluster:
    from repro.platforms.juno import make_juno_board

    return make_juno_board().a72


def _make_a53() -> Cluster:
    from repro.platforms.juno import make_juno_board

    return make_juno_board().a53


def _make_amd() -> Cluster:
    from repro.platforms.amd import make_amd_desktop

    return make_amd_desktop().cpu


def _make_gpu() -> Cluster:
    from repro.platforms.gpu import make_gpu_card

    return make_gpu_card().gpu


PLATFORM_REGISTRY: Dict[str, PlatformEntry] = {
    "a72": PlatformEntry(
        key="a72",
        description="ARM Juno R2 Cortex-A72 cluster (OC-DSO visibility)",
        make_cluster=_make_a72,
        info=by_cpu("Cortex-A72"),
    ),
    "a53": PlatformEntry(
        key="a53",
        description="ARM Juno R2 Cortex-A53 cluster (no visibility)",
        make_cluster=_make_a53,
        info=by_cpu("Cortex-A53"),
    ),
    "amd": PlatformEntry(
        key="amd",
        description="AMD Athlon II X4 645 desktop (Kelvin pads)",
        make_cluster=_make_amd,
        info=by_cpu("Athlon II X4 645"),
    ),
    "gpu": PlatformEntry(
        key="gpu",
        description="8-CU GPU card (Section 10 future-work extension)",
        make_cluster=_make_gpu,
        info=None,
    ),
}


def platform_keys() -> Tuple[str, ...]:
    """Every runnable platform key, in registry order."""
    return tuple(PLATFORM_REGISTRY)


def resolve(key: str) -> PlatformEntry:
    """Look a platform up by CLI key."""
    try:
        return PLATFORM_REGISTRY[key]
    except KeyError:
        known = ", ".join(PLATFORM_REGISTRY)
        raise KeyError(
            f"unknown platform {key!r} (known: {known})"
        ) from None


def make_cluster(key: str) -> Cluster:
    """Build the named platform's cluster at its nominal state."""
    return resolve(key).make_cluster()


def render_registry() -> str:
    """Format the runnable-platform registry for the CLI."""
    headers = ["key", "cluster", "cores", "visibility", "description"]
    rows: List[List[str]] = [headers]
    for entry in PLATFORM_REGISTRY.values():
        if entry.info is not None:
            cluster_name = entry.info.cpu
            cores = str(entry.info.num_cores)
            visibility = entry.info.visibility.value
        else:
            cluster_name = "(extension)"
            cores = "-"
            visibility = NoiseVisibility.NONE.value
        rows.append(
            [entry.key, cluster_name, cores, visibility, entry.description]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def render_table() -> str:
    """Format the platform matrix like the paper's Table 1."""
    headers = [
        "MB",
        "CPU",
        "Cores",
        "ISA",
        "uArch",
        "Freq,Vol",
        "Tech(nm)",
        "OS",
        "Noise visibility",
    ]
    rows: List[List[str]] = [headers]
    for p in PLATFORM_TABLE:
        rows.append(
            [
                p.motherboard,
                p.cpu,
                str(p.num_cores),
                p.isa,
                p.microarchitecture,
                f"{p.nominal_clock_hz / 1e9:.2f}GHz,{p.nominal_voltage:g}V",
                str(p.technology_nm),
                p.operating_system,
                p.visibility.value,
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)
