#!/usr/bin/env python3
"""Beyond stress testing: PDN fingerprinting applications (Section 10).

The paper's conclusion sketches uses of on-the-fly PDN characterization
beyond margin determination.  This example demonstrates two of them on
the simulated Cortex-A72:

1. **Tamper detection** — enroll a golden unit's resonance fingerprint,
   then screen units: a board with a hardware implant (extra rail
   capacitance) or a power-path interposer (extra inductance) drifts
   the fingerprint and is flagged, all from antenna readings.
2. **Margin prediction** — calibrate V_MIN against passive EM readings
   on a handful of workloads, then predict the margin a new workload
   needs *without undervolting the system*.

Run:  python examples/pdn_fingerprinting.py
"""

import dataclasses

import numpy as np

from repro import EMCharacterizer, ResonanceSweep
from repro.core.margin import EMMarginPredictor, MarginCalibrationPoint
from repro.core.tamper import TamperDetector
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.pdn.models import scaled
from repro.platforms import make_juno_board
from repro.platforms.base import Cluster
from repro.platforms.juno import A72_SPEC, A72_UNITS
from repro.stability import VminTester, failure_model_for
from repro.workloads import idle_workload, spec_suite

CLOCKS = [1.2e9 - k * 20e6 for k in range(0, 54)]


def build_unit(pdn_params=None) -> Cluster:
    spec = A72_SPEC
    if pdn_params is not None:
        spec = dataclasses.replace(spec, pdn_params=pdn_params)
    return Cluster(
        spec,
        OutOfOrderPipeline(
            width=3, window=48, rob_size=128, unit_counts=A72_UNITS
        ),
    )


def tamper_demo(characterizer: EMCharacterizer) -> None:
    print("== Tamper detection by resonance fingerprint ==")
    detector = TamperDetector(
        ResonanceSweep(characterizer, samples_per_point=5),
        tolerance=0.06,
    )
    golden = detector.enroll(build_unit(), clocks_hz=CLOCKS)
    print(
        "  golden fingerprint: "
        + ", ".join(
            f"{n}-core {f / 1e6:.1f} MHz"
            for n, f in sorted(golden.resonances_hz.items())
        )
    )
    units = {
        "pristine unit": build_unit(),
        "unit with implant (+40% rail C)": build_unit(
            scaled(
                A72_SPEC.pdn_params,
                c_die_base=A72_SPEC.pdn_params.c_die_base * 1.4,
                c_die_per_core=A72_SPEC.pdn_params.c_die_per_core * 1.4,
            )
        ),
        "unit with interposer (2x L_pkg)": build_unit(
            scaled(A72_SPEC.pdn_params, l_pkg=A72_SPEC.pdn_params.l_pkg * 2)
        ),
    }
    for name, unit in units.items():
        verdict = detector.check(unit, golden, clocks_hz=CLOCKS)
        flag = "TAMPERED" if verdict.tampered else "clean"
        print(
            f"  {name:<34} drift "
            f"{verdict.worst_drift_fraction * 100:5.1f}%  -> {flag}"
        )


def margin_demo(characterizer: EMCharacterizer) -> None:
    print("\n== V_MIN prediction from passive EM readings ==")
    juno = make_juno_board()
    a72 = juno.a72
    predictor = EMMarginPredictor(characterizer)
    tester = VminTester(a72, failure_model_for("cortex-a72"), seed=31)

    calibration = [idle_workload()] + spec_suite(
        a72.spec.isa, ["gcc", "namd", "lbm", "hmmer"]
    )
    print("  calibrating on:", ", ".join(w.name for w in calibration))
    points = []
    for wl in calibration:
        amp = predictor.measure_amplitude(a72, wl)
        vmin = tester.run(wl, repeats=2).vmin
        points.append(MarginCalibrationPoint(wl.name, amp, vmin))
    predictor.fit(points)
    print(
        f"  fit residual: "
        f"{predictor.calibration_residual_v() * 1e3:.1f} mV"
    )

    for name in ("mcf", "povray", "sphinx3"):
        wl = spec_suite(a72.spec.isa, [name])[0]
        prediction = predictor.predict_workload(a72, wl)
        actual = tester.run(wl, repeats=2).vmin
        print(
            f"  {name:10s} predicted Vmin {prediction.predicted_vmin:.3f} V"
            f" (measured {actual:.3f} V, "
            f"error {abs(prediction.predicted_vmin - actual) * 1e3:.1f} mV)"
        )
    print(
        "  -> margins estimated for new workloads with zero undervolting"
        " experiments."
    )


def main() -> None:
    characterizer = EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(13)),
        samples=8,
    )
    tamper_demo(characterizer)
    margin_demo(characterizer)


if __name__ == "__main__":
    main()
