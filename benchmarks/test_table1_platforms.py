"""Table 1: experimental platform details.

Checks that the modeled platforms match the paper's matrix and prints
it in the paper's layout.
"""

import pytest

from repro.platforms.base import NoiseVisibility
from repro.platforms.registry import PLATFORM_TABLE, by_cpu, render_table

from benchmarks.conftest import print_header


def test_table1_platform_matrix(benchmark, juno_board, amd_desktop):
    table = benchmark.pedantic(render_table, rounds=1, iterations=1)
    print_header("Table 1: experimental platform details")
    print(table)

    # registry matches the paper
    assert len(PLATFORM_TABLE) == 3
    a72 = by_cpu("Cortex-A72")
    a53 = by_cpu("Cortex-A53")
    amd = by_cpu("Athlon II X4 645")
    assert (a72.num_cores, a53.num_cores, amd.num_cores) == (2, 4, 4)
    assert a72.visibility is NoiseVisibility.OC_DSO
    assert a53.visibility is NoiseVisibility.NONE
    assert amd.visibility is NoiseVisibility.KELVIN_PADS

    # and the live platform models agree with the registry rows
    assert juno_board.a72.spec.nominal_clock_hz == a72.nominal_clock_hz
    assert juno_board.a72.spec.num_cores == a72.num_cores
    assert juno_board.a53.spec.nominal_clock_hz == pytest.approx(
        a53.nominal_clock_hz
    )
    assert amd_desktop.cpu.spec.nominal_voltage == amd.nominal_voltage
    assert amd_desktop.cpu.spec.technology_nm == amd.technology_nm
