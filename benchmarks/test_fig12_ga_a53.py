"""Figure 12: EM-amplitude-driven GA on the Cortex-A53.

Paper: the GA maximizes EM amplitude on a cluster that has NO voltage
visibility at all, converging to a 75 MHz dominant frequency (the
cluster's 76.5 MHz resonance).
"""

import numpy as np

from repro.instruments.spectrum_analyzer import watts_to_dbm
from repro.platforms.base import NoiseVisibility

from benchmarks.conftest import print_header


def test_fig12_ga_on_blind_cluster(benchmark, juno_board, a53_em_virus):
    assert juno_board.a53.spec.visibility is NoiseVisibility.NONE
    summary = benchmark.pedantic(
        lambda: a53_em_virus, rounds=1, iterations=1
    )
    print_header(
        "Fig. 12: EM-driven GA on Cortex-A53 (no voltage visibility)"
    )
    print(f"{'gen':>4} {'EM amplitude':>14} {'dominant':>12}")
    history = summary.ga_result.history
    for rec in history[:: max(1, len(history) // 10)]:
        dbm = float(watts_to_dbm(np.array(rec.best.score)))
        print(
            f"{rec.generation:>4} {dbm:>10.1f} dBm "
            f"{rec.best.dominant_frequency_hz / 1e6:>9.1f} MHz"
        )
    scores = summary.ga_result.score_series()
    print(
        f"  final dominant: {summary.dominant_frequency_hz / 1e6:.1f} MHz "
        f"(paper: 75 MHz; sweep: 76.5 MHz)"
    )
    assert scores[-1] > 2.0 * scores[0]
    assert abs(summary.dominant_frequency_hz - 76.5e6) < 9e6
