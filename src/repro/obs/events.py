"""Structured event telemetry for long-running experiments.

An :class:`EventLog` turns the run harness's milestones (generation
boundaries, sweep points, checkpoints, kernel timings) into
timestamped, schema-versioned records and fans them out to pluggable
sinks.  The JSONL file sink is the archival format -- one JSON object
per line, written next to the run's artifacts so any figure can be
regenerated from the log alone; the in-memory sink backs tests and the
stderr sink gives interactive runs a live ticker.

Every record carries::

    {"v": 1, "seq": <monotonic int>, "t": <seconds since log start>,
     "wall": <unix timestamp>, "event": "<name>", ...payload}

Payload values are sanitized to plain JSON types (numpy scalars and
arrays included), so emitters can pass measurement results directly.

The fault/resilience layer (:mod:`repro.faults`) adds its own event
vocabulary on top of the harness milestones: ``fault_injected`` (a
:class:`~repro.faults.FaultError` surfaced at a site),
``retry_attempt`` (a retryable fault is about to be retried),
``worker_crash`` (a pool worker died and its shard was re-dispatched),
``degraded_to_serial`` (the parallel evaluator gave up on its pool),
``genome_quarantined`` (an individual kept failing and was pinned to
the penalty fitness) and ``checkpoint_recovered`` (a corrupt
checkpoint was skipped in favor of an older rotation).  See
``docs/testing.md`` for the full recovery-path map.

The persistent GA worker pool (:mod:`repro.ga.workers`) emits one
``worker_warmup`` event per worker (re)spawn -- worker id, pid,
warm-up wall time, whether it replaced a crashed worker
(``respawned``), and the session cache stats its warm-up primed --
and the GA engine folds each worker's latest cache counters into
``generation_end`` as ``worker_cache_stats`` (worker id keyed), so
per-worker cache-hit rates are readable straight off the run log.

The island-model GA (:mod:`repro.ga.islands`) adds the distributed
vocabulary: ``island_run_start``/``island_run_end`` bracket the whole
campaign (island count, topology, migration interval),
``ga_segment_start``/``ga_segment_end`` bracket each island's
generation segment between migration boundaries,
``migration_start``/``migration_end`` bracket a champion exchange
(epoch boundary generation plus the resolved ``(src, dst)`` link
list), and ``island_recovered`` marks an island that died mid-segment
and was rebuilt from its newest surviving checkpoint.  Every record an
island emits carries an ``island`` index field, so one interleaved log
remains attributable; the log itself is emit-locked because island
segments run on concurrent threads.

The determinism audit (:mod:`repro.audit`) contributes two more:
``audit_violation`` (a runtime invariant broke -- payload carries the
violation ``kind``, ``site`` and message; the matching typed
:class:`~repro.audit.AuditViolation` is raised at the same moment) and
``audit_summary`` (end-of-run counters: shadow checks per cache,
ledger stages verified, replays, violations).

The measurement service (:mod:`repro.service`) speaks the job
vocabulary: ``service_start``/``service_stop`` bracket the process
(configuration, then final counters), ``service_listening`` reports
the bound HTTP endpoint, ``job_submitted`` (job id, kind, tenant,
queue depth) admits a job, ``job_rejected`` records load shedding
(``reason`` is ``rate_limited`` or ``queue_full``), ``job_batched``
marks a batch dispatch (batch id, member job ids, whether requests
were actually coalesced) and ``job_done`` closes a job with its
terminal status.  While a batch executes, every chain/GA event it
produces is stamped with the ``batch`` id and the ``jobs`` list, so a
shared-session run log still attributes each record to the client
requests that caused it.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Union

EVENT_SCHEMA_VERSION = 1


def jsonable(value: Any) -> Any:
    """Best-effort conversion of ``value`` to plain JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # numpy scalars expose .item(); arrays expose .tolist().
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 1) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return str(value)


class MemorySink:
    """Keeps every record in a list -- the test sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Recorded events, optionally filtered by event name."""
        if name is None:
            return list(self.records)
        return [r for r in self.records if r["event"] == name]


class JsonlFileSink:
    """Appends one compact JSON object per line to ``path``.

    Records are flushed per emit: an interrupted campaign (the whole
    point of checkpoint/resume) must leave a readable log up to the
    kill point.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open(
            "a", encoding="utf-8"
        )

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class StderrSink:
    """Human-oriented live ticker (still one JSON object per line)."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream

    def emit(self, record: Dict[str, Any]) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(json.dumps(record, separators=(",", ":")), file=stream)

    def close(self) -> None:
        pass


class EventLog:
    """Fans structured events out to zero or more sinks.

    A log with no sinks is disabled and near-free to call, so library
    code can emit unconditionally; :data:`NULL_LOG` is the shared
    disabled instance used as a default.
    """

    def __init__(self, sinks: Iterable = ()):
        self._sinks = list(sinks)
        self._seq = 0
        self._t0 = time.monotonic()
        # Island segments emit from concurrent threads; the lock keeps
        # sequence numbers unique and sink writes whole-record atomic.
        self._lock = threading.Lock()

    @classmethod
    def to_file(cls, path: Union[str, Path]) -> "EventLog":
        """An event log writing JSONL to ``path``."""
        return cls([JsonlFileSink(path)])

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def emit(self, event: str, **payload: Any) -> None:
        """Emit one event; payload values may be numpy types."""
        if not self._sinks:
            return
        clean = {key: jsonable(value) for key, value in payload.items()}
        with self._lock:
            record: Dict[str, Any] = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "t": round(time.monotonic() - self._t0, 6),
                "wall": time.time(),
                "event": event,
            }
            record.update(clean)
            self._seq += 1
            for sink in self._sinks:
                sink.emit(record)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled log: the default for every ``event_log`` parameter.
NULL_LOG = EventLog(())


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every event record from a JSONL file."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
