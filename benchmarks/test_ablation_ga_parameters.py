"""Ablation: the GA recipe's empirically-determined hyperparameters.

Paper (Section 3.1c): *"We empirically determined that the following
... work well: a) 2-4 % mutation rate, b) one-point crossover, and
c) tournament selection."*  This ablation reruns the A72 search across
mutation rates and with selection disabled, confirming the recipe:

- the paper's 2-4 % band outperforms both no mutation (premature
  convergence) and heavy mutation (random walk), and
- tournament selection beats random parent selection.
"""

import numpy as np

from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import EMAmplitudeFitness
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

from benchmarks.conftest import print_header

BAND = (50e6, 200e6)


def _true_score(cluster, program):
    """Noise-free resonant-current figure of merit."""
    run = cluster.run(program)
    freqs, amps = run.response.current_spectrum()
    mask = (freqs >= BAND[0]) & (freqs <= BAND[1])
    return float(amps[mask].max()) if mask.any() else 0.0


def _run(cluster, rate, seed, generations=18, tournament=3):
    fitness = EMAmplitudeFitness(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=6,
    )
    config = GAConfig(
        population_size=24,
        generations=generations,
        loop_length=50,
        mutation_rate=rate,
        tournament_size=tournament,
        seed=seed,
    )
    result = GAEngine(lambda p: fitness(cluster, p), config).run(
        cluster.spec.isa
    )
    return _true_score(cluster, result.best_program)


def test_ablation_mutation_rate(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()
    rates = (0.0, 0.03, 0.30)

    def run_all():
        scores = {}
        for rate in rates:
            runs = [_run(a72, rate, seed) for seed in (5, 6, 7)]
            scores[rate] = float(np.mean(runs))
        return scores

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("Ablation: GA mutation rate (A72, mean of 3 seeds)")
    for rate, score in scores.items():
        print(
            f"  mutation {rate * 100:5.1f}%  resonant current "
            f"{score:.3f} A"
        )
    # the paper's 2-4 % band wins against both extremes
    assert scores[0.03] > scores[0.0]
    assert scores[0.03] > scores[0.30]


def test_ablation_selection_pressure(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()

    def run_both():
        tournament = float(
            np.mean([_run(a72, 0.03, s, tournament=3) for s in (8, 9)])
        )
        random_sel = float(
            np.mean([_run(a72, 0.03, s, tournament=1) for s in (8, 9)])
        )
        return tournament, random_sel

    tournament, random_sel = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print_header("Ablation: tournament vs random parent selection (A72)")
    print(f"  tournament (k=3): resonant current {tournament:.3f} A")
    print(f"  random (k=1):     resonant current {random_sel:.3f} A")
    assert tournament > random_sel
