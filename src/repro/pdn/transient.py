"""Time-domain transient simulation via trapezoidal companion models.

This is the classical SPICE approach: at a fixed step ``h`` every
capacitor becomes a conductance ``2C/h`` plus a history current source
and every inductor branch gains an equivalent resistance ``2L/h`` plus a
history voltage.  Because the PDN is linear and the step is fixed, the
system matrix is constant and is LU-factorized once; each step is a
single back-substitution, so long waveforms (Figs. 1c and 2) integrate
quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.pdn.elements import Capacitor, CurrentSource, Inductor, VoltageSource
from repro.pdn.impedance import dc_operating_point
from repro.pdn.netlist import Circuit, MNALayout


@dataclass
class TransientResult:
    """Sampled waveforms produced by :class:`TransientSolver`.

    ``node_voltages[name][k]`` is the voltage of node ``name`` at
    ``times[k]``; ``branch_currents`` covers inductors and voltage
    sources (positive current flows from ``node_a`` to ``node_b``).
    """

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def current(self, branch: str) -> np.ndarray:
        return self.branch_currents[branch]

    def min_voltage(self, node: str) -> float:
        return float(np.min(self.node_voltages[node]))

    def max_voltage(self, node: str) -> float:
        return float(np.max(self.node_voltages[node]))

    def peak_to_peak(self, node: str) -> float:
        v = self.node_voltages[node]
        return float(np.max(v) - np.min(v))


class TransientSolver:
    """Fixed-step trapezoidal integrator for a linear circuit.

    Parameters
    ----------
    circuit:
        The netlist to integrate.  Time-varying behaviour comes from
        :class:`~repro.pdn.elements.CurrentSource` elements whose
        ``current`` is a callable of time.
    dt:
        Integration step in seconds.  It must resolve the fastest
        resonance of interest; 1/20 of the first-order resonance period
        (~0.7 ns for an 80 MHz resonance) is a sound default.
    """

    def __init__(self, circuit: Circuit, dt: float):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self._circuit = circuit
        self._dt = dt
        self._layout: MNALayout = circuit.layout()
        self._matrix_lu = None
        self._build_matrix()

    @property
    def dt(self) -> float:
        return self._dt

    def _build_matrix(self) -> None:
        layout = self._layout
        h = self._dt
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        # Capacitor companion: conductance 2C/h.
        for e in self._circuit.elements:
            if isinstance(e, Capacitor):
                g = 2.0 * e.capacitance / h
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    a[ia, ia] += g
                if ib >= 0:
                    a[ib, ib] += g
                if ia >= 0 and ib >= 0:
                    a[ia, ib] -= g
                    a[ib, ia] -= g
            elif isinstance(e, Inductor):
                # Branch equation becomes  v_ab - (2L/h) i = v_hist.
                k = layout.branch(e.name)
                a[k, k] -= 2.0 * e.inductance / h
                # ac_matrix at omega=0 left the L term absent (it stamps
                # -j*omega*L = 0); the -2L/h replaces it.
        self._matrix = a
        self._matrix_lu = lu_factor(a)

    def run(
        self,
        duration: float,
        initial: Optional[Dict[str, float]] = None,
        record_every: int = 1,
    ) -> TransientResult:
        """Integrate for ``duration`` seconds.

        ``initial`` optionally overrides the starting node voltages;
        by default the DC operating point (with each current source at
        its value at ``t = 0``) is used so a constant-load start sits at
        quiescence and only *changes* in load excite the network.
        ``record_every`` decimates the stored waveform.
        """
        layout = self._layout
        h = self._dt
        steps = int(round(duration / h))
        if steps <= 0:
            raise ValueError("duration shorter than one step")

        caps = [e for e in self._circuit.elements if isinstance(e, Capacitor)]
        inds = [e for e in self._circuit.elements if isinstance(e, Inductor)]
        vsrcs = [
            e for e in self._circuit.elements if isinstance(e, VoltageSource)
        ]
        isrcs = list(self._circuit.current_sources())

        # --- initial state -------------------------------------------------
        op = dc_operating_point(self._circuit)
        if initial:
            op.update(initial)

        def node_v(state: np.ndarray, name: str) -> float:
            idx = layout.node(name)
            return 0.0 if idx < 0 else float(state[idx])

        x = np.zeros(layout.size)
        for name, idx in layout.node_index.items():
            x[idx] = op.get(name, 0.0)
        # Initial inductor currents from the DC solve: re-run the DC MNA
        # to recover branch currents consistent with the node voltages.
        x_dc = self._dc_state()
        for e in inds + vsrcs:
            x[layout.branch(e.name)] = x_dc[layout.branch(e.name)]

        cap_i = {e.name: 0.0 for e in caps}  # capacitor currents (a->b)

        n_rec = steps // record_every + 1
        times = np.empty(n_rec)
        traj = np.empty((n_rec, layout.size))
        times[0] = 0.0
        traj[0] = x
        rec = 1

        g_cap = {e.name: 2.0 * e.capacitance / h for e in caps}
        r_ind = {e.name: 2.0 * e.inductance / h for e in inds}

        t = 0.0
        for step in range(1, steps + 1):
            t_next = step * h
            b = np.zeros(layout.size)
            # Current sources (load convention: from node_a to node_b).
            for s in isrcs:
                i_now = s.value_at(t_next)
                ia, ib = layout.node(s.node_a), layout.node(s.node_b)
                if ia >= 0:
                    b[ia] -= i_now
                if ib >= 0:
                    b[ib] += i_now
            # Capacitor history: I_hist = g*v_n + i_n injected a->b.
            for e in caps:
                i_hist = g_cap[e.name] * (
                    node_v(x, e.node_a) - node_v(x, e.node_b)
                ) + cap_i[e.name]
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    b[ia] += i_hist
                if ib >= 0:
                    b[ib] -= i_hist
            # Inductor history: v_ab(n+1) - R i(n+1) = -R i(n) - v_ab(n).
            for e in inds:
                k = layout.branch(e.name)
                v_ab = node_v(x, e.node_a) - node_v(x, e.node_b)
                b[k] = -r_ind[e.name] * x[k] - v_ab
            for e in vsrcs:
                b[layout.branch(e.name)] = e.voltage

            x_next = lu_solve(self._matrix_lu, b)

            # Update capacitor currents for the next history term.
            for e in caps:
                v_new = node_v(x_next, e.node_a) - node_v(x_next, e.node_b)
                v_old = node_v(x, e.node_a) - node_v(x, e.node_b)
                i_hist = g_cap[e.name] * v_old + cap_i[e.name]
                cap_i[e.name] = g_cap[e.name] * v_new - i_hist

            x = x_next
            t = t_next
            if step % record_every == 0:
                times[rec] = t
                traj[rec] = x
                rec += 1

        times = times[:rec]
        traj = traj[:rec]
        node_voltages = {
            name: traj[:, idx] for name, idx in layout.node_index.items()
        }
        branch_currents = {
            name: traj[:, layout.num_nodes + idx]
            for name, idx in layout.branch_index.items()
        }
        return TransientResult(
            times=times,
            node_voltages=node_voltages,
            branch_currents=branch_currents,
        )

    def stepper(self, load_node: str = "die") -> "TransientStepper":
        """A closed-loop stepper drawing load current at ``load_node``.

        Unlike :meth:`run`, the caller supplies the load current one
        step at a time -- the hook needed to put a feedback controller
        (e.g. adaptive clocking) in the loop with the network.
        """
        return TransientStepper(self, load_node)

    def _dc_state(self) -> np.ndarray:
        """Full DC MNA solution (node voltages and branch currents)."""
        layout = self._layout
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        a += np.diag(
            np.concatenate(
                [
                    np.full(layout.num_nodes, 1e-12),
                    np.zeros(layout.num_branches),
                ]
            )
        )
        injections: Dict[str, float] = {}
        for s in self._circuit.current_sources():
            i0 = s.value_at(0.0)
            injections[s.node_a] = injections.get(s.node_a, 0.0) - i0
            injections[s.node_b] = injections.get(s.node_b, 0.0) + i0
        b = np.zeros(layout.size)
        for node, val in injections.items():
            idx = layout.node(node)
            if idx >= 0:
                b[idx] += val
        for e in self._circuit.elements:
            if isinstance(e, VoltageSource):
                b[layout.branch(e.name)] = e.voltage
        return np.linalg.solve(a, b)


class TransientStepper:
    """Step-at-a-time trapezoidal integration with an external load.

    Wraps a :class:`TransientSolver`'s factorized system but takes the
    die load current per step from the caller instead of from a source
    element -- current sources in the circuit still apply on top.  The
    initial state is the DC operating point with the first load value.
    """

    def __init__(self, solver: TransientSolver, load_node: str):
        self._solver = solver
        self._circuit = solver._circuit
        self._layout = solver._layout
        self._load_node = load_node
        if load_node != "0" and load_node not in (
            self._layout.node_index
        ):
            raise KeyError(f"unknown load node {load_node!r}")
        self._caps = [
            e for e in self._circuit.elements if isinstance(e, Capacitor)
        ]
        self._inds = [
            e for e in self._circuit.elements if isinstance(e, Inductor)
        ]
        self._vsrcs = [
            e
            for e in self._circuit.elements
            if isinstance(e, VoltageSource)
        ]
        self._isrcs = list(self._circuit.current_sources())
        h = solver.dt
        self._g_cap = {e.name: 2.0 * e.capacitance / h for e in self._caps}
        self._r_ind = {e.name: 2.0 * e.inductance / h for e in self._inds}
        self._state: Optional[np.ndarray] = None
        self._cap_i: Dict[str, float] = {}
        self._t = 0.0

    @property
    def time_s(self) -> float:
        return self._t

    def reset(self, initial_load_a: float = 0.0) -> None:
        """Initialize at the DC operating point with the given load."""
        layout = self._layout
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        a += np.diag(
            np.concatenate(
                [
                    np.full(layout.num_nodes, 1e-12),
                    np.zeros(layout.num_branches),
                ]
            )
        )
        b = np.zeros(layout.size)
        idx = layout.node(self._load_node)
        if idx >= 0:
            b[idx] -= initial_load_a
        for s in self._isrcs:
            i0 = s.value_at(0.0)
            ia, ib = layout.node(s.node_a), layout.node(s.node_b)
            if ia >= 0:
                b[ia] -= i0
            if ib >= 0:
                b[ib] += i0
        for e in self._vsrcs:
            b[layout.branch(e.name)] = e.voltage
        self._state = np.linalg.solve(a, b)
        self._cap_i = {e.name: 0.0 for e in self._caps}
        self._t = 0.0

    def _node_v(self, state: np.ndarray, name: str) -> float:
        idx = self._layout.node(name)
        return 0.0 if idx < 0 else float(state[idx])

    def step(self, load_a: float) -> float:
        """Advance one step with ``load_a`` amperes drawn at the load
        node; returns the new load-node voltage."""
        if self._state is None:
            self.reset(load_a)
        layout = self._layout
        x = self._state
        t_next = self._t + self._solver.dt
        b = np.zeros(layout.size)
        idx = layout.node(self._load_node)
        if idx >= 0:
            b[idx] -= load_a
        for s in self._isrcs:
            i_now = s.value_at(t_next)
            ia, ib = layout.node(s.node_a), layout.node(s.node_b)
            if ia >= 0:
                b[ia] -= i_now
            if ib >= 0:
                b[ib] += i_now
        for e in self._caps:
            i_hist = self._g_cap[e.name] * (
                self._node_v(x, e.node_a) - self._node_v(x, e.node_b)
            ) + self._cap_i[e.name]
            ia, ib = layout.node(e.node_a), layout.node(e.node_b)
            if ia >= 0:
                b[ia] += i_hist
            if ib >= 0:
                b[ib] -= i_hist
        for e in self._inds:
            k = layout.branch(e.name)
            v_ab = self._node_v(x, e.node_a) - self._node_v(x, e.node_b)
            b[k] = -self._r_ind[e.name] * x[k] - v_ab
        for e in self._vsrcs:
            b[layout.branch(e.name)] = e.voltage

        x_next = lu_solve(self._solver._matrix_lu, b)
        for e in self._caps:
            v_new = self._node_v(x_next, e.node_a) - self._node_v(
                x_next, e.node_b
            )
            v_old = self._node_v(x, e.node_a) - self._node_v(x, e.node_b)
            i_hist = self._g_cap[e.name] * v_old + self._cap_i[e.name]
            self._cap_i[e.name] = self._g_cap[e.name] * v_new - i_hist
        self._state = x_next
        self._t = t_next
        return self._node_v(x_next, self._load_node)

    def voltage(self, node: str) -> float:
        if self._state is None:
            raise RuntimeError("stepper not initialized; call reset()")
        return self._node_v(self._state, node)
