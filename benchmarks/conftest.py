"""Shared fixtures for the figure/table regeneration benchmarks.

GA virus generation is expensive and several figures consume the same
virus, so the five Table 2 viruses (a72em, a72OC-DSO, a53em, amdEm,
amdOsc) are session-scoped fixtures, run at the paper's scale:
population 50, 60 generations.

Every benchmark prints the series/rows of its paper figure so the run
log doubles as the reproduction record.
"""

import numpy as np
import pytest

from repro import EMCharacterizer, VirusGenerator
from repro import make_amd_desktop, make_juno_board
from repro.ga import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

GA_SCALE = GAConfig(
    population_size=50, generations=60, loop_length=50, seed=1
)


def paper_characterizer(seed: int) -> EMCharacterizer:
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=10,
    )


@pytest.fixture(scope="session")
def juno_board():
    return make_juno_board()


@pytest.fixture(scope="session")
def amd_desktop():
    return make_amd_desktop()


@pytest.fixture(scope="session")
def a72_em_virus(juno_board):
    """The a72em virus of Table 2 / Figs. 7, 9, 10."""
    juno_board.a72.reset()
    gen = VirusGenerator(
        juno_board.a72, paper_characterizer(42), config=GA_SCALE
    )
    return gen.generate_em_virus()


@pytest.fixture(scope="session")
def a72_dso_virus(juno_board):
    """The a72OC-DSO voltage-feedback virus of Table 2 / Fig. 10."""
    juno_board.a72.reset()
    gen = VirusGenerator(juno_board.a72, config=GA_SCALE)
    return gen.generate_droop_virus(juno_board.oc_dso)


@pytest.fixture(scope="session")
def a53_em_virus(juno_board):
    """The a53em virus of Table 2 / Figs. 12, 14, 15."""
    juno_board.a53.reset()
    gen = VirusGenerator(
        juno_board.a53, paper_characterizer(7), config=GA_SCALE
    )
    return gen.generate_em_virus()


@pytest.fixture(scope="session")
def amd_em_virus(amd_desktop):
    """The amdEm virus of Table 2 / Figs. 17, 18."""
    amd_desktop.cpu.reset()
    gen = VirusGenerator(
        amd_desktop.cpu, paper_characterizer(17), config=GA_SCALE
    )
    return gen.generate_em_virus()


@pytest.fixture(scope="session")
def amd_osc_virus(amd_desktop):
    """The amdOsc Kelvin-pad-feedback virus of Table 2 / Fig. 18."""
    amd_desktop.cpu.reset()
    gen = VirusGenerator(amd_desktop.cpu, config=GA_SCALE)
    return gen.generate_oscilloscope_virus(amd_desktop.probe)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
