"""Batch types for the measurement chain.

A :class:`ChainRequest` describes N measurement items -- each a program
(or program mix) at a cluster operating point -- and what outputs the
caller wants.  A :class:`ChainResult` carries the per-item artifacts of
every stage that ran: execution, rail response, emission spectrum,
received signal power, amplitude metric, displayed trace.

Operating points are resolved against the live cluster state when the
request enters the :class:`repro.chain.SignalPath`; the chain itself
never mutates the cluster, so a batched sweep leaves the platform
exactly as it found it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.program import LoopProgram
    from repro.pdn.steady_state import PeriodicResponse
    from repro.em.radiation import EmissionSpectrum
    from repro.instruments.spectrum_analyzer import SpectrumTrace
    from repro.platforms.base import Cluster, ClusterRun, NondeterministicRun


@dataclass(frozen=True)
class OperatingPoint:
    """Per-item overrides of the cluster operating state.

    ``None`` fields fall back to the cluster's live state at request
    time, so a plain measurement needs no explicit point and a
    resonance sweep only overrides ``clock_hz``.
    """

    clock_hz: Optional[float] = None
    voltage: Optional[float] = None
    powered_cores: Optional[int] = None


@dataclass
class ChainItem:
    """One measurement: a program (or mix) at one operating point.

    Exactly one of ``program`` / ``programs`` must be set.  Supplying
    ``cache_model`` (with ``memory_rng``) selects the
    cache-nondeterministic execution mode of
    ``Cluster.run_nondeterministic``; ``programs`` selects the
    heterogeneous-mix mode of ``Cluster.run_mixed``.
    """

    program: Optional["LoopProgram"] = None
    programs: Optional[Sequence["LoopProgram"]] = None
    operating_point: OperatingPoint = field(default_factory=OperatingPoint)
    active_cores: Optional[int] = None
    iterations: int = 16
    phase_offsets: Optional[Sequence[int]] = None
    cache_model: object = None
    memory_rng: Optional[np.random.Generator] = None

    @property
    def mode(self) -> str:
        if self.programs is not None:
            return "mixed"
        if self.cache_model is not None:
            return "nondeterministic"
        return "single"

    def validate(self) -> None:
        if (self.program is None) == (self.programs is None):
            raise ValueError(
                "ChainItem needs exactly one of program / programs"
            )
        if self.cache_model is not None:
            if self.programs is not None:
                raise ValueError(
                    "cache nondeterminism applies to single-program items"
                )
            if self.memory_rng is None:
                raise ValueError("cache_model requires memory_rng")


@dataclass
class ChainRequest:
    """N chain items against one cluster, plus readout settings.

    ``want_amplitude`` / ``want_trace`` gate the analyzer readout: the
    GA fitness wants the amplitude metric only, ``measure()`` wants
    both, a champion re-measurement wants neither (response only).
    Stages downstream of what is wanted are skipped entirely, which
    also keeps the analyzer RNG streams identical to the legacy
    per-call helpers they replace.
    """

    cluster: "Cluster"
    items: Sequence[ChainItem]
    band: Tuple[float, float] = (50.0e6, 200.0e6)
    samples: int = 30
    want_amplitude: bool = True
    want_trace: bool = True

    @property
    def want_emission(self) -> bool:
        return self.want_amplitude or self.want_trace


@dataclass
class ChainItemResult:
    """Everything one item produced on its way through the chain."""

    item: ChainItem
    clock_hz: float
    voltage: float
    powered_cores: int
    active_cores: int
    execution: object = None  # ClusterExecution | MixedClusterExecution
    windows: Optional[list] = None  # nondeterministic mode only
    response: Optional["PeriodicResponse"] = None
    emission: Optional["EmissionSpectrum"] = None
    signal_w: Optional[np.ndarray] = None
    amplitude_w: Optional[float] = None
    trace: Optional["SpectrumTrace"] = None
    peak_frequency_hz: Optional[float] = None

    @property
    def program(self) -> Optional["LoopProgram"]:
        return self.item.program

    @property
    def ipc(self) -> float:
        if self.windows is not None:
            return self.windows[0].ipc
        return self.execution.ipc

    @property
    def loop_frequency_hz(self) -> float:
        if self.windows is not None:
            mean_cycles = self.windows[0].mean_iteration_cycles()
            return self.clock_hz / mean_cycles
        return self.execution.loop_frequency_hz

    @property
    def max_droop(self) -> float:
        return self.response.max_droop

    @property
    def peak_to_peak(self) -> float:
        return self.response.peak_to_peak

    def to_cluster_run(self, cluster: "Cluster") -> "ClusterRun":
        """Repackage a single-mode result as a legacy ``ClusterRun``."""
        from repro.platforms.base import ClusterRun

        if self.item.mode != "single":
            raise ValueError(
                f"cannot build a ClusterRun from a {self.item.mode} item"
            )
        return ClusterRun(
            cluster=cluster,
            program=self.item.program,
            execution=self.execution,
            response=self.response,
            clock_hz=self.clock_hz,
            voltage=self.voltage,
            powered_cores=self.powered_cores,
            active_cores=self.active_cores,
        )

    def to_nondeterministic_run(
        self, cluster: "Cluster"
    ) -> "NondeterministicRun":
        """Repackage a nondeterministic-mode result as the legacy type."""
        from repro.platforms.base import NondeterministicRun

        if self.item.mode != "nondeterministic":
            raise ValueError(
                f"cannot build a NondeterministicRun from a "
                f"{self.item.mode} item"
            )
        return NondeterministicRun(
            cluster=cluster,
            program=self.item.program,
            windows=self.windows,
            response=self.response,
            clock_hz=self.clock_hz,
            voltage=self.voltage,
            active_cores=self.active_cores,
        )


@dataclass
class ChainResult:
    """Outputs of one batched chain run."""

    items: List[ChainItemResult]
    stage_times_s: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> ChainItemResult:
        return self.items[index]

    def __iter__(self):
        return iter(self.items)
