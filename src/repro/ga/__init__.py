"""Genetic-algorithm stress-test generation framework (Section 3).

The GA evolves fixed-length instruction loops (50 instructions in the
paper) toward a fitness signal: the EM amplitude received by the
antenna (the paper's contribution) or direct voltage feedback (the
validation baseline).  Configuration follows the paper's empirically
determined recipe: population 50, >= 60 generations, tournament
selection, one-point crossover, 2-4 % mutation rate.

- :mod:`repro.ga.operators` -- selection, crossover, mutation.
- :mod:`repro.ga.engine` -- the generational loop with memoized fitness.
- :mod:`repro.ga.islands` -- island-model sharding with deterministic
  champion migration (:mod:`repro.ga.topology` defines the exchange).
- :mod:`repro.ga.fitness` -- EM-amplitude and voltage-feedback fitness.
- :mod:`repro.ga.instruction_spec` -- the XML instruction-pool input.
- :mod:`repro.ga.templates` -- loop template rendering (register
  pre-initialization plus the evolved body).
"""

from repro.ga.engine import GAConfig, GAEngine, GAResult, GenerationRecord
from repro.ga.islands import (
    IslandCheckpoint,
    IslandConfig,
    IslandGAEngine,
    IslandGAResult,
    island_population_sizes,
    island_seed,
    load_island_checkpoint,
    save_island_checkpoint,
)
from repro.ga.topology import TOPOLOGIES, migrate, migration_links
from repro.ga.operators import (
    mutate,
    one_point_crossover,
    tournament_selection,
)
from repro.ga.fitness import (
    EMAmplitudeFitness,
    FitnessEvaluation,
    MaxDroopFitness,
    PeakToPeakFitness,
)
from repro.ga.instruction_spec import (
    load_instruction_pool,
    parse_instruction_pool,
    render_instruction_pool,
)
from repro.ga.templates import render_individual_source

__all__ = [
    "GAConfig",
    "GAEngine",
    "GAResult",
    "GenerationRecord",
    "IslandCheckpoint",
    "IslandConfig",
    "IslandGAEngine",
    "IslandGAResult",
    "TOPOLOGIES",
    "island_population_sizes",
    "island_seed",
    "load_island_checkpoint",
    "migrate",
    "migration_links",
    "save_island_checkpoint",
    "mutate",
    "one_point_crossover",
    "tournament_selection",
    "EMAmplitudeFitness",
    "MaxDroopFitness",
    "PeakToPeakFitness",
    "FitnessEvaluation",
    "load_instruction_pool",
    "parse_instruction_pool",
    "render_instruction_pool",
    "render_individual_source",
]
