"""Synthetic current load (SCL) block.

The Juno OC-DSO integrates a synthetic current load that draws a
square-wave current from the Cortex-A72 rail at a programmable
frequency; sweeping that frequency and recording the peak-to-peak rail
oscillation reveals the PDN resonance (Fig. 8, following [16]).  The
model injects the same square wave into the simulated PDN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.pdn.steady_state import PeriodicResponse, SteadyStateSolver


def square_wave_current(
    amplitude_a: float,
    samples_per_period: int = 128,
    duty: float = 0.5,
    baseline_a: float = 0.0,
) -> np.ndarray:
    """One period of a square-wave load: high for ``duty`` of the period."""
    if not 0.0 < duty < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    if samples_per_period < 8:
        raise ValueError("need at least 8 samples per period")
    high = int(round(samples_per_period * duty))
    wave = np.full(samples_per_period, baseline_a)
    wave[:high] += amplitude_a
    return wave


@dataclass
class SCLSweepResult:
    """Outcome of a frequency sweep of the synthetic current load."""

    frequencies_hz: np.ndarray
    peak_to_peak_v: np.ndarray

    def resonance_hz(self) -> float:
        """Frequency with the highest rail oscillation."""
        return float(
            self.frequencies_hz[int(np.argmax(self.peak_to_peak_v))]
        )

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.frequencies_hz, self.peak_to_peak_v))


@dataclass
class SyntheticCurrentLoad:
    """Square-wave current injector attached to a PDN rail."""

    amplitude_a: float = 1.0
    samples_per_period: int = 128
    duty: float = 0.5

    def response_at(
        self, solver: SteadyStateSolver, frequency_hz: float
    ) -> PeriodicResponse:
        """Steady-state rail response to the square wave at one frequency."""
        if frequency_hz <= 0.0:
            raise ValueError("SCL frequency must be positive")
        wave = square_wave_current(
            self.amplitude_a, self.samples_per_period, self.duty
        )
        sample_rate = frequency_hz * self.samples_per_period
        return solver.solve(wave, sample_rate)

    def sweep(
        self,
        solver: SteadyStateSolver,
        frequencies_hz: Sequence[float],
    ) -> SCLSweepResult:
        """Peak-to-peak rail oscillation at each stimulus frequency."""
        freqs = np.asarray(frequencies_hz, dtype=float)
        p2p = np.empty_like(freqs)
        for i, f in enumerate(freqs):
            p2p[i] = self.response_at(solver, f).peak_to_peak
        return SCLSweepResult(frequencies_hz=freqs, peak_to_peak_v=p2p)
