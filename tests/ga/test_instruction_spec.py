"""Unit tests for the XML instruction-pool parser."""

import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import RegisterFile
from repro.ga.instruction_spec import (
    InstructionSpecError,
    load_instruction_pool,
    parse_instruction_pool,
    render_instruction_pool,
)

VALID = """
<instruction-pool isa="armv8">
  <registers int="12" fp="8" vec="8"/>
  <memory slots="32"/>
  <instruction mnemonic="add"/>
  <instruction mnemonic="mul"/>
  <instruction mnemonic="fsqrt"/>
</instruction-pool>
"""


class TestParsing:
    def test_valid_pool(self):
        isa = parse_instruction_pool(VALID)
        assert [s.mnemonic for s in isa.specs] == ["add", "mul", "fsqrt"]
        assert isa.registers[RegisterFile.INT] == 12
        assert isa.registers[RegisterFile.FP] == 8
        assert isa.memory_slots == 32

    def test_defaults_from_base(self):
        xml = (
            '<instruction-pool isa="armv8">'
            '<instruction mnemonic="add"/></instruction-pool>'
        )
        isa = parse_instruction_pool(xml)
        assert isa.registers == ARM_ISA.registers
        assert isa.memory_slots == ARM_ISA.memory_slots

    def test_x86_base(self):
        xml = (
            '<instruction-pool isa="x86-64">'
            '<instruction mnemonic="add_rm"/></instruction-pool>'
        )
        isa = parse_instruction_pool(xml)
        assert isa.specs[0].touches_memory

    def test_explicit_base_overrides_attribute(self):
        xml = (
            '<instruction-pool>'
            '<instruction mnemonic="add"/></instruction-pool>'
        )
        isa = parse_instruction_pool(xml, base=ARM_ISA)
        assert isa.specs[0].mnemonic == "add"


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(InstructionSpecError, match="invalid XML"):
            parse_instruction_pool("<oops")

    def test_wrong_root(self):
        with pytest.raises(InstructionSpecError, match="root"):
            parse_instruction_pool("<foo/>")

    def test_missing_isa(self):
        with pytest.raises(InstructionSpecError, match="isa"):
            parse_instruction_pool(
                '<instruction-pool><instruction mnemonic="add"/>'
                "</instruction-pool>"
            )

    def test_unknown_isa(self):
        with pytest.raises(InstructionSpecError, match="unknown base ISA"):
            parse_instruction_pool(
                '<instruction-pool isa="mips">'
                '<instruction mnemonic="add"/></instruction-pool>'
            )

    def test_empty_pool(self):
        with pytest.raises(InstructionSpecError, match="empty"):
            parse_instruction_pool('<instruction-pool isa="armv8"/>')

    def test_unknown_mnemonic(self):
        with pytest.raises(InstructionSpecError, match="unknown mnemonic"):
            parse_instruction_pool(
                '<instruction-pool isa="armv8">'
                '<instruction mnemonic="frobnicate"/></instruction-pool>'
            )

    def test_missing_mnemonic_attribute(self):
        with pytest.raises(InstructionSpecError, match="mnemonic"):
            parse_instruction_pool(
                '<instruction-pool isa="armv8"><instruction/>'
                "</instruction-pool>"
            )

    def test_bad_register_count(self):
        with pytest.raises(InstructionSpecError, match="integer"):
            parse_instruction_pool(
                '<instruction-pool isa="armv8">'
                '<registers int="many"/>'
                '<instruction mnemonic="add"/></instruction-pool>'
            )

    def test_nonpositive_register_count(self):
        with pytest.raises(InstructionSpecError, match=">= 1"):
            parse_instruction_pool(
                '<instruction-pool isa="armv8">'
                '<registers int="0"/>'
                '<instruction mnemonic="add"/></instruction-pool>'
            )


class TestRoundTrip:
    def test_render_and_reparse(self):
        isa = parse_instruction_pool(VALID)
        xml = render_instruction_pool(isa, "armv8")
        isa2 = parse_instruction_pool(xml)
        assert [s.mnemonic for s in isa2.specs] == [
            s.mnemonic for s in isa.specs
        ]
        assert isa2.registers == isa.registers
        assert isa2.memory_slots == isa.memory_slots

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "pool.xml"
        path.write_text(VALID)
        isa = load_instruction_pool(path)
        assert len(isa.specs) == 3
