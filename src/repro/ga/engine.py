"""The generational GA loop (Fig. 3's flow).

Seed a random population, measure every individual, select parents by
tournament, cross over, mutate, repeat.  Fitness evaluations are
memoized on the individual's genome because converged populations
contain many clones -- the same economy a real setup gets by caching
measurement results per binary.

Long campaigns are observable and resumable: ``GAEngine.run`` emits
structured events (generation boundaries, scores, cache statistics,
per-kernel timings) to an :class:`repro.obs.events.EventLog`, and can
periodically serialize its complete state -- population, GA RNG state,
measurement-chain RNG state, memo cache and history -- as a
:class:`GACheckpoint`.  Resuming from a checkpoint continues the
campaign bit-identically to an uninterrupted run (pinned by
``tests/ga/test_checkpoint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cpu.isa import InstructionSpec
from repro.cpu.program import LoopProgram, random_program
from repro.ga.fitness import FitnessEvaluation
from repro.ga.operators import (
    mutate,
    one_point_crossover,
    tournament_selection,
)
from repro.ga.parallel import ParallelEvaluator
from repro.faults.plan import FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs.events import NULL_LOG, EventLog
from repro.obs.timing import collect_kernel_timings


@dataclass(frozen=True)
class GAConfig:
    """GA hyperparameters; defaults follow the paper's recipe.

    ``workers`` fans the fitness evaluations of each generation out
    across processes (see :mod:`repro.ga.parallel`); the default of 1
    keeps the serial path and its seed-for-seed behavior.
    """

    population_size: int = 50
    generations: int = 60
    loop_length: int = 50
    mutation_rate: float = 0.03
    tournament_size: int = 3
    elitism: int = 1
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.loop_length < 1:
            raise ValueError("loop_length must be >= 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be < population_size")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass
class GenerationRecord:
    """Best-individual summary of one generation (the Fig. 7 series)."""

    generation: int
    best_program: LoopProgram
    best: FitnessEvaluation
    mean_score: float


@dataclass
class GACheckpoint:
    """Complete mid-campaign GA state.

    ``generation`` is the index of the next generation to evaluate;
    ``population`` is that generation's individuals; ``rng_state`` is
    the GA generator's bit-generator state *after* producing them, and
    ``fitness_state`` captures the measurement chain's RNG (see
    ``fitness_state()`` on the fitness callables) so fresh evaluations
    after a resume draw the same noise an uninterrupted run would.
    """

    config: GAConfig
    generation: int
    population: List[LoopProgram]
    rng_state: dict
    cache: Dict[Tuple, FitnessEvaluation]
    history: List[GenerationRecord]
    evaluations: int
    fitness_state: Optional[dict] = None


@dataclass
class GAResult:
    """Outcome of a GA run."""

    config: GAConfig
    history: List[GenerationRecord]
    evaluations: int

    @property
    def best(self) -> GenerationRecord:
        # Score ties break toward the earliest generation, so resumed
        # and multi-worker runs report the same champion regardless of
        # how the history was assembled.
        return max(
            self.history, key=lambda r: (r.best.score, -r.generation)
        )

    @property
    def best_program(self) -> LoopProgram:
        return self.best.best_program

    def score_series(self) -> np.ndarray:
        return np.array([r.best.score for r in self.history])

    def droop_series(self) -> np.ndarray:
        return np.array([r.best.max_droop_v for r in self.history])

    def dominant_frequency_series(self) -> np.ndarray:
        return np.array(
            [r.best.dominant_frequency_hz for r in self.history]
        )

    def to_json(self) -> str:
        from repro.io.serialization import ga_result_to_dict

        import json

        return json.dumps(ga_result_to_dict(self))

    @classmethod
    def from_json(cls, text: str) -> "GAResult":
        from repro.io.serialization import ga_result_from_dict

        import json

        return ga_result_from_dict(json.loads(text))


class GAEngine:
    """Drives the optimization against a fitness callable.

    ``fitness`` maps a :class:`LoopProgram` to a
    :class:`FitnessEvaluation`; it encapsulates the whole measurement
    chain (target execution plus instrument).
    """

    def __init__(
        self,
        fitness: Callable[[LoopProgram], FitnessEvaluation],
        config: GAConfig = GAConfig(),
        pool: Optional[Sequence[InstructionSpec]] = None,
        memoize: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        """``memoize=False`` disables the per-genome fitness cache --
        required when the fitness signal is nondeterministic (e.g. the
        cache-miss ablation), where re-measuring a clone legitimately
        yields a different score.

        ``retry_policy`` / ``fault_injector`` are resilience knobs (see
        :mod:`repro.faults`): the policy retries transient measurement
        faults and checkpoint writes with bit-identical state rewind,
        the injector schedules deterministic faults for chaos testing.
        They are deliberately *not* part of :class:`GAConfig`, so
        checkpoints taken under chaos resume cleanly without them.
        """
        self._fitness = fitness
        self.config = config
        self._pool = tuple(pool) if pool is not None else None
        self._memoize = memoize
        self._retry_policy = retry_policy
        self._fault_injector = fault_injector
        self._cache: Dict[Tuple, FitnessEvaluation] = {}

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def _evaluate(self, program: LoopProgram) -> FitnessEvaluation:
        if not self._memoize:
            return self._fitness(program)
        key = program.genome()
        hit = self._cache.get(key)
        if hit is None:
            hit = self._fitness(program)
            self._cache[key] = hit
        return hit

    def _evaluate_generation(
        self,
        population: Sequence[LoopProgram],
        evaluator: ParallelEvaluator,
    ) -> Tuple[List[FitnessEvaluation], int]:
        """Evaluate a whole generation as one batch.

        With memoization on, the generation is deduped by genome
        against the memo cache, only unseen genomes are dispatched to
        ``evaluator`` (first occurrence wins), and the results are
        merged back so clones read from the cache.  Returns the
        per-individual evaluations (population order) and the number of
        fresh fitness measurements.
        """
        if not self._memoize:
            evals = evaluator.evaluate(population)
            return evals, len(evals)
        genomes = [p.genome() for p in population]
        pending: Dict[Tuple, LoopProgram] = {}
        for program, genome in zip(population, genomes):
            if genome not in self._cache and genome not in pending:
                pending[genome] = program
        if pending:
            fresh = evaluator.evaluate(list(pending.values()))
            for genome, evaluation in zip(pending, fresh):
                self._cache[genome] = evaluation
        return [self._cache[g] for g in genomes], len(pending)

    def _initial_population(
        self, isa, rng: np.random.Generator
    ) -> List[LoopProgram]:
        return [
            random_program(
                isa,
                self.config.loop_length,
                rng,
                name=f"ind{i}",
                pool=self._pool,
            )
            for i in range(self.config.population_size)
        ]

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def _capture_fitness_state(self) -> Optional[dict]:
        capture = getattr(self._fitness, "fitness_state", None)
        return capture() if capture is not None else None

    def _restore_fitness_state(self, state: Optional[dict]) -> None:
        if state is None:
            return
        restore = getattr(self._fitness, "restore_fitness_state", None)
        if restore is not None:
            restore(state)

    def _check_resume_config(self, resumed: GAConfig) -> None:
        """Search hyperparameters must match; ``generations`` may be
        extended and ``workers`` re-chosen on resume."""
        ours = replace(self.config, generations=1, workers=1)
        theirs = replace(resumed, generations=1, workers=1)
        if ours != theirs:
            raise ValueError(
                "checkpoint config does not match engine config: "
                f"{resumed} vs {self.config}"
            )

    def _make_checkpoint(
        self,
        generation: int,
        population: Sequence[LoopProgram],
        rng: np.random.Generator,
        history: Sequence[GenerationRecord],
        evaluations: int,
    ) -> GACheckpoint:
        return GACheckpoint(
            config=self.config,
            generation=generation,
            population=list(population),
            rng_state=rng.bit_generator.state,
            cache=dict(self._cache),
            history=list(history),
            evaluations=evaluations,
            fitness_state=self._capture_fitness_state(),
        )

    def _save_checkpoint_resilient(
        self,
        checkpoint: GACheckpoint,
        checkpoint_path: Union[str, Path],
        log: EventLog,
    ) -> Path:
        """Write a checkpoint, retrying transient IO faults if a
        :class:`RetryPolicy` is attached (writes are atomic, so a
        failed attempt leaves the previous checkpoint intact)."""
        from repro.io.serialization import save_checkpoint

        def write() -> Path:
            return save_checkpoint(
                checkpoint,
                checkpoint_path,
                injector=self._fault_injector,
            )

        if self._retry_policy is None:
            return write()
        return call_with_retry(
            write,
            self._retry_policy,
            event_log=log,
            scope="checkpoint-save",
        )

    def _prepare_population(
        self,
        isa,
        rng: np.random.Generator,
        initial_population: Optional[Sequence[LoopProgram]],
        resume: Optional[GACheckpoint],
    ) -> Tuple[List[LoopProgram], List[GenerationRecord], int, int]:
        """(population, history, evaluations, start_gen) honoring
        ``resume`` / ``initial_population`` exactly as :meth:`run`
        always has; ``rng`` is mutated to the resumed state."""
        if resume is not None:
            if initial_population is not None:
                raise ValueError(
                    "pass either resume or initial_population, not both"
                )
            self._check_resume_config(resume.config)
            rng.bit_generator.state = resume.rng_state
            if self._memoize:
                self._cache.update(resume.cache)
            self._restore_fitness_state(resume.fitness_state)
            return (
                list(resume.population),
                list(resume.history),
                resume.evaluations,
                resume.generation,
            )
        if initial_population is not None:
            population = list(initial_population)
            if len(population) != self.config.population_size:
                raise ValueError(
                    "initial population size does not match config"
                )
            return population, [], 0, 0
        return self._initial_population(isa, rng), [], 0, 0

    def _run_generations(
        self,
        population: List[LoopProgram],
        rng: np.random.Generator,
        history: List[GenerationRecord],
        evaluations: int,
        start_gen: int,
        stop_gen: int,
        breed_final: bool,
        evaluator: ParallelEvaluator,
        log: EventLog,
        progress: Optional[Callable[[GenerationRecord], None]],
        checkpoint_path: Optional[Union[str, Path]],
        checkpoint_every: int,
    ) -> Tuple[List[LoopProgram], int]:
        """The generational loop shared by :meth:`run` and
        :meth:`run_segment`.

        Evaluates generations ``start_gen .. stop_gen - 1``, appending
        to ``history`` in place.  ``breed_final`` controls whether the
        last evaluated generation is bred into a successor population
        (a segment boundary needs the next population; a finished
        campaign does not).  Returns the final population and the
        updated evaluation count.
        """
        for gen in range(start_gen, stop_gen):
            log.emit(
                "generation_start",
                generation=gen,
                population_size=len(population),
            )
            with collect_kernel_timings() as timings:
                evals, fresh = self._evaluate_generation(
                    population, evaluator
                )
            evaluations += fresh
            scores = [e.score for e in evals]
            best_idx = int(np.argmax(scores))
            record = GenerationRecord(
                generation=gen,
                best_program=population[best_idx],
                best=evals[best_idx],
                mean_score=float(np.mean(scores)),
            )
            history.append(record)
            log.emit(
                "generation_end",
                generation=gen,
                best_score=record.best.score,
                mean_score=record.mean_score,
                best_droop_v=record.best.max_droop_v,
                dominant_frequency_hz=(
                    record.best.dominant_frequency_hz
                ),
                best_ipc=record.best.ipc,
                fresh_evaluations=fresh,
                cache_hits=len(population) - fresh,
                cache_size=len(self._cache),
                dispatched_workers=(
                    evaluator.workers if evaluator.parallel else 1
                ),
                quarantined=len(evaluator.quarantined) or None,
                kernel_timings=timings.snapshot() or None,
                worker_cache_stats=evaluator.worker_stats() or None,
            )
            if progress is not None:
                progress(record)
            if gen == stop_gen - 1 and not breed_final:
                break
            population = self._next_generation(
                population, scores, rng, best_idx
            )
            if checkpoint_path is not None and (
                (gen + 1) % checkpoint_every == 0
            ):
                saved = self._save_checkpoint_resilient(
                    self._make_checkpoint(
                        gen + 1, population, rng, history, evaluations
                    ),
                    checkpoint_path,
                    log,
                )
                log.emit(
                    "checkpoint_saved",
                    generation=gen + 1,
                    path=str(saved),
                    cache_size=len(self._cache),
                )
        return population, evaluations

    def run(
        self,
        isa,
        initial_population: Optional[Sequence[LoopProgram]] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
        event_log: Optional[EventLog] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 5,
        resume: Optional[GACheckpoint] = None,
        evaluator: Optional[ParallelEvaluator] = None,
    ) -> GAResult:
        """Run the full optimization and return per-generation history.

        ``initial_population`` allows seeding from a previous run
        (Section 3.1a); otherwise a fresh random seed population is
        drawn.

        ``event_log`` receives structured telemetry (``ga_run_start``,
        ``generation_start``/``generation_end`` with scores, cache and
        dispatch statistics plus per-kernel timings, ``checkpoint_saved``,
        ``ga_run_end``).  ``checkpoint_path`` enables periodic state
        serialization every ``checkpoint_every`` completed generations;
        ``resume`` restores a :class:`GACheckpoint` (see
        :func:`repro.io.serialization.load_checkpoint`) and continues
        bit-identically to the uninterrupted run.

        ``evaluator`` lets the caller supply (and keep ownership of) a
        pre-warmed :class:`~repro.ga.parallel.ParallelEvaluator` whose
        persistent worker pool survives this run -- benchmarks use it
        to keep pool/session warm-up out of the timed region.  Without
        one, the engine builds its own from ``config.workers`` and
        closes it when the run ends.
        """
        cfg = self.config
        log = event_log if event_log is not None else NULL_LOG
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        rng = np.random.default_rng(cfg.seed)
        population, history, evaluations, start_gen = (
            self._prepare_population(isa, rng, initial_population, resume)
        )

        log.emit(
            "ga_run_start",
            config=self._config_dict(),
            resumed_from_generation=start_gen if resume else None,
            cache_size=len(self._cache),
        )
        owns_evaluator = evaluator is None
        if owns_evaluator:
            evaluator = ParallelEvaluator(
                self._fitness,
                cfg.workers,
                retry_policy=self._retry_policy,
                fault_injector=self._fault_injector,
                event_log=log,
            )
        # Start the persistent pool (workers warm their sessions) up
        # front so the first generation is not charged for it.
        evaluator.warm_up()
        try:
            population, evaluations = self._run_generations(
                population,
                rng,
                history,
                evaluations,
                start_gen,
                cfg.generations,
                False,
                evaluator,
                log,
                progress,
                checkpoint_path,
                checkpoint_every,
            )
        finally:
            if owns_evaluator:
                evaluator.close()
        result = GAResult(
            config=cfg, history=history, evaluations=evaluations
        )
        best = result.best
        log.emit(
            "ga_run_end",
            generations=len(history),
            evaluations=evaluations,
            best_generation=best.generation,
            best_score=best.best.score,
        )
        return result

    def run_segment(
        self,
        isa,
        until_generation: int,
        initial_population: Optional[Sequence[LoopProgram]] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
        event_log: Optional[EventLog] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 5,
        resume: Optional[GACheckpoint] = None,
        evaluator: Optional[ParallelEvaluator] = None,
    ) -> GACheckpoint:
        """Advance the optimization to ``until_generation`` and stop.

        Identical to :meth:`run` over the covered generations -- same
        RNG consumption, same cache/fitness-state evolution -- except
        the run is cut at a *segment boundary*: the last evaluated
        generation is still bred into its successor population, and the
        full engine state is returned as a :class:`GACheckpoint` whose
        ``generation`` equals ``until_generation``.  Feeding that
        checkpoint back through ``resume`` (on this engine or a fresh
        one) continues bit-identically to an uninterrupted :meth:`run`,
        which is exactly the contract the island engine's migration
        boundaries rely on: migrate by editing ``checkpoint.population``
        between segments.

        Emits ``ga_segment_start``/``ga_segment_end`` instead of the
        run-level ``ga_run_start``/``ga_run_end`` events.
        """
        cfg = self.config
        log = event_log if event_log is not None else NULL_LOG
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if not 1 <= until_generation <= cfg.generations:
            raise ValueError(
                "until_generation must be in [1, config.generations], "
                f"got {until_generation}"
            )
        rng = np.random.default_rng(cfg.seed)
        population, history, evaluations, start_gen = (
            self._prepare_population(isa, rng, initial_population, resume)
        )
        if start_gen >= until_generation:
            raise ValueError(
                f"segment does not advance: resume is at generation "
                f"{start_gen}, until_generation={until_generation}"
            )
        log.emit(
            "ga_segment_start",
            start_generation=start_gen,
            until_generation=until_generation,
            cache_size=len(self._cache),
        )
        owns_evaluator = evaluator is None
        if owns_evaluator:
            evaluator = ParallelEvaluator(
                self._fitness,
                cfg.workers,
                retry_policy=self._retry_policy,
                fault_injector=self._fault_injector,
                event_log=log,
            )
        evaluator.warm_up()
        try:
            population, evaluations = self._run_generations(
                population,
                rng,
                history,
                evaluations,
                start_gen,
                until_generation,
                True,
                evaluator,
                log,
                progress,
                checkpoint_path,
                checkpoint_every,
            )
        finally:
            if owns_evaluator:
                evaluator.close()
        checkpoint = self._make_checkpoint(
            until_generation, population, rng, history, evaluations
        )
        log.emit(
            "ga_segment_end",
            generation=until_generation,
            evaluations=evaluations,
            best_score=history[-1].best.score if history else None,
        )
        return checkpoint

    def _config_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self.config)

    def _next_generation(
        self,
        population: Sequence[LoopProgram],
        scores: Sequence[float],
        rng: np.random.Generator,
        best_idx: int,
    ) -> List[LoopProgram]:
        cfg = self.config
        ranked = sorted(
            range(len(population)), key=lambda i: scores[i], reverse=True
        )
        next_pop: List[LoopProgram] = [
            population[i] for i in ranked[: cfg.elitism]
        ]
        while len(next_pop) < cfg.population_size:
            parent_a = tournament_selection(
                population, scores, rng, cfg.tournament_size
            )
            parent_b = tournament_selection(
                population, scores, rng, cfg.tournament_size
            )
            child_a, child_b = one_point_crossover(parent_a, parent_b, rng)
            next_pop.append(
                mutate(child_a, rng, cfg.mutation_rate, self._pool)
            )
            if len(next_pop) < cfg.population_size:
                next_pop.append(
                    mutate(child_b, rng, cfg.mutation_rate, self._pool)
                )
        return next_pop
