"""Property-based invariant of the measurement service.

The coalescer only ever takes contiguous prefix runs of the pending
queue, so the way compatible submissions happen to interleave -- i.e.
how the fixed submission order gets partitioned into batches -- must
not change any job's result.  Hypothesis drives arbitrary contiguous
partitions of a job sequence and compares every per-job payload, plus
the shared analyzer's final RNG state, against the fully sequential
twin service.
"""

import asyncio
import json

from hypothesis import given, settings, strategies as st

from repro.service import MeasurementService

#: Fixed submission order of mutually compatible jobs (shared
#: platform/band/samples -> one CompatKey).
SPECS = [
    ("measure", {"platform": "a53", "program_seed": seed})
    for seed in (1, 2, 3, 4)
]

partitions = st.lists(
    st.integers(min_value=1, max_value=len(SPECS)),
    min_size=1,
    max_size=len(SPECS),
).filter(lambda sizes: sum(sizes) == len(SPECS))


def _service():
    return MeasurementService(seed=99, samples=2)


def _rng_state(service):
    analyzer = service._states["a53"].characterizer.analyzer
    return json.dumps(
        analyzer.rng.bit_generator.state, sort_keys=True, default=str
    )


async def _run_partitioned(sizes):
    """Submit SPECS group by group; each group coalesces into one
    batch because submission is synchronous and the service drains
    fully (join) between groups."""
    async with _service() as svc:
        results = [None] * len(SPECS)
        cursor = 0
        for size in sizes:
            group = [
                (cursor + offset, SPECS[cursor + offset])
                for offset in range(size)
            ]
            jobs = [
                (index, svc.submit(kind, params))
                for index, (kind, params) in group
            ]
            for index, job in jobs:
                results[index] = await job.wait()
            await svc.join()
            cursor += size
        assert svc.counters["batches"] == len(sizes)
        return results, _rng_state(svc)


_SEQUENTIAL = None


def _sequential_twin():
    """The all-singleton partition, computed once per test run."""
    global _SEQUENTIAL
    if _SEQUENTIAL is None:
        _SEQUENTIAL = asyncio.run(_run_partitioned([1] * len(SPECS)))
    return _SEQUENTIAL


@settings(max_examples=8, deadline=None)
@given(sizes=partitions)
def test_any_contiguous_partition_matches_sequential(sizes):
    batched_results, batched_rng = asyncio.run(_run_partitioned(sizes))
    serial_results, serial_rng = _sequential_twin()
    assert json.dumps(batched_results, sort_keys=True) == json.dumps(
        serial_results, sort_keys=True
    )
    assert batched_rng == serial_rng
