"""Unit tests for loop programs."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import Instruction, InstructionClass
from repro.cpu.program import (
    LoopProgram,
    program_from_mnemonics,
    random_instruction,
    random_program,
)


class TestLoopProgramValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            LoopProgram(isa=ARM_ISA, body=())

    def test_register_bounds_enforced(self):
        bad = Instruction(spec=ARM_ISA.spec("add"), dest=99, sources=(0, 1))
        with pytest.raises(ValueError, match="register"):
            LoopProgram(isa=ARM_ISA, body=(bad,))

    def test_memory_bounds_enforced(self):
        bad = Instruction(
            spec=ARM_ISA.spec("ldr"), dest=0, sources=(), address=9999
        )
        with pytest.raises(ValueError, match="memory slot"):
            LoopProgram(isa=ARM_ISA, body=(bad,))

    def test_len_is_body_length(self):
        p = program_from_mnemonics(ARM_ISA, ["add", "sub", "mul"])
        assert len(p) == 3


class TestInstructionMix:
    def test_mix_sums_to_one(self):
        p = random_program(ARM_ISA, 50, np.random.default_rng(0))
        mix = p.instruction_mix()
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_mix_counts_classes(self):
        p = program_from_mnemonics(ARM_ISA, ["add"] * 3 + ["fadd"])
        mix = p.instruction_mix()
        assert mix[InstructionClass.INT_SHORT] == pytest.approx(0.75)
        assert mix[InstructionClass.FLOAT] == pytest.approx(0.25)


class TestAssemblyAndGenome:
    def test_assembly_contains_loop_and_backedge(self):
        p = program_from_mnemonics(ARM_ISA, ["add", "mul"], name="myloop")
        text = p.assembly()
        assert text.startswith("myloop:")
        assert text.endswith("b myloop")

    def test_genome_is_hashable_and_stable(self):
        p = program_from_mnemonics(ARM_ISA, ["add", "mul"])
        assert hash(p.genome()) == hash(p.genome())

    def test_genome_is_computed_once(self):
        """Repeat calls return the cached tuple (the GA hits genome()
        several times per individual per generation)."""
        p = program_from_mnemonics(ARM_ISA, ["add", "mul"])
        assert p.genome() is p.genome()

    def test_different_programs_have_different_genomes(self):
        a = program_from_mnemonics(ARM_ISA, ["add", "mul"])
        b = program_from_mnemonics(ARM_ISA, ["mul", "add"])
        assert a.genome() != b.genome()


class TestRandomGeneration:
    def test_random_program_is_valid_and_deterministic(self):
        a = random_program(ARM_ISA, 50, np.random.default_rng(7))
        b = random_program(ARM_ISA, 50, np.random.default_rng(7))
        assert a.genome() == b.genome()
        assert len(a) == 50

    def test_random_program_respects_pool(self):
        pool = (ARM_ISA.spec("add"), ARM_ISA.spec("mul"))
        p = random_program(ARM_ISA, 30, np.random.default_rng(1), pool=pool)
        assert {i.mnemonic for i in p.body} <= {"add", "mul"}

    def test_random_instruction_valid_operands(self):
        rng = np.random.default_rng(3)
        for spec in ARM_ISA.specs:
            instr = random_instruction(spec, ARM_ISA, rng)
            # constructing a one-instruction program validates bounds
            LoopProgram(isa=ARM_ISA, body=(instr,))


class TestFromMnemonics:
    def test_deterministic_without_rng(self):
        a = program_from_mnemonics(ARM_ISA, ["add", "ldr", "fadd"])
        b = program_from_mnemonics(ARM_ISA, ["add", "ldr", "fadd"])
        assert a.genome() == b.genome()

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            program_from_mnemonics(ARM_ISA, ["nope"])
