"""Shared fixtures: platform models and receive chains.

Board models are session-scoped for speed (their PDN solver caches are
expensive to warm); the function-scoped cluster fixtures reset mutable
state (voltage, clock, power gating) so tests stay independent.

Also home to the test-suite plumbing: the ``--update-golden`` flag
(regenerates ``tests/golden/`` data instead of comparing against it)
and the failing-seed report (tests exposing a ``seed``/``plan_seed``
fixture or hypothesis example print it on failure, so a red run is
reproducible from the log alone).
"""

import numpy as np
import pytest

from repro import EMCharacterizer, make_amd_desktop, make_juno_board
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/ data files instead of "
        "comparing against them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden data files."""
    return request.config.getoption("--update-golden")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On failure, print any seed-like fixture values of the test.

    Seeded tests (chaos plans, property tests, RNG fixtures) become
    reproducible from the failure log: the report gains a
    ``seeds: name=value ...`` line listing every int-valued argument
    whose name mentions ``seed``.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    seeds = {
        name: value
        for name, value in getattr(item, "funcargs", {}).items()
        if "seed" in name and isinstance(value, (int, np.integer))
    }
    if seeds:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(seeds.items()))
        report.sections.append(("seeds", f"seeds: {rendered}"))


@pytest.fixture(scope="session")
def juno_board():
    return make_juno_board()


@pytest.fixture(scope="session")
def amd_desktop():
    return make_amd_desktop()


@pytest.fixture
def a72(juno_board):
    juno_board.a72.reset()
    yield juno_board.a72
    juno_board.a72.reset()


@pytest.fixture
def a53(juno_board):
    juno_board.a53.reset()
    yield juno_board.a53
    juno_board.a53.reset()


@pytest.fixture
def athlon(amd_desktop):
    amd_desktop.cpu.reset()
    yield amd_desktop.cpu
    amd_desktop.cpu.reset()


@pytest.fixture
def characterizer():
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(1234)),
        samples=5,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(99)
