"""Optional L1 cache model: the timing nondeterminism viruses avoid.

Section 3.3 of the paper: *"We deliberately avoid cache misses due to
the timing non-determinism introduced by them ... events such as cache
misses ... result in significant jitter to the GA algorithm, which in
turn impedes its convergence."*

The main pipeline models assume every memory access hits L1 (the
paper's production configuration: the template restricts addresses to a
resident buffer).  This module supplies the counterfactual: a cache
model where accesses beyond the L1-resident window miss with a large,
*randomized* penalty.  Plugging it into the pipeline makes execution --
and therefore the GA's fitness signal -- nondeterministic, which the
ablation benchmark uses to reproduce the paper's design argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheModel:
    """L1 hit/miss timing for abstract memory slot addresses.

    Addresses below ``l1_slots`` always hit (the virus template's
    resident buffer); higher addresses miss with penalty
    ``miss_penalty ± penalty_jitter`` cycles, the jitter standing in
    for DRAM bank/row state and prefetcher behaviour.
    """

    l1_slots: int = 64
    miss_penalty: int = 60
    penalty_jitter: int = 16

    def __post_init__(self) -> None:
        if self.l1_slots < 1:
            raise ValueError("l1_slots must be >= 1")
        if self.miss_penalty < 1:
            raise ValueError("miss_penalty must be >= 1")
        if not 0 <= self.penalty_jitter <= self.miss_penalty:
            raise ValueError(
                "penalty_jitter must be within [0, miss_penalty]"
            )

    def is_hit(self, address: int) -> bool:
        return address < self.l1_slots

    def extra_latency(
        self, address: int, rng: np.random.Generator
    ) -> int:
        """Cycles added on top of the instruction's L1-hit latency."""
        if self.is_hit(address):
            return 0
        jitter = (
            int(rng.integers(-self.penalty_jitter, self.penalty_jitter + 1))
            if self.penalty_jitter > 0
            else 0
        )
        return self.miss_penalty + jitter
