"""Failure model: rail dips below critical voltage -> timing failure.

When the instantaneous die voltage drops below the critical voltage
``v_crit`` (the slowest path's requirement at the current clock), logic
mis-times.  A small dip margin produces silent data corruption or an
application crash; deeper dips crash the system.  The paper observes
SDC/application crashes typically ~10 mV above the system-crash
voltage, which is the default window here.

``v_crit`` rises with clock frequency (faster clock, less slack).  The
per-platform constants are calibrated so virus V_MIN matches the
paper: Cortex-A72 and A53 viruses sit ~150 mV below nominal, the AMD
EM virus at 1.3625 V (37.5 mV below its 1.4 V nominal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np


class Outcome(enum.Enum):
    """Result of one workload execution at one voltage."""

    PASS = "pass"
    SDC = "silent data corruption"
    APP_CRASH = "application crash"
    SYSTEM_CRASH = "system crash"

    @property
    def is_deviation(self) -> bool:
        return self is not Outcome.PASS


@dataclass(frozen=True)
class CriticalVoltageModel:
    """Critical-voltage law for one cluster.

    ``v_crit(f) = v_crit_ref + slope * (f - f_ref)``: linear in clock
    frequency around the reference point, the usual first-order
    shmoo-slope model.

    ``sdc_window_v`` is the band above the crash threshold where
    deviations are SDC or application crashes rather than system
    crashes; ``jitter_sigma_v`` models run-to-run threshold variation
    (temperature, data patterns).
    """

    v_crit_ref: float
    f_ref_hz: float
    slope_v_per_ghz: float = 0.08
    sdc_window_v: float = 0.010
    jitter_sigma_v: float = 0.0015

    def v_crit(self, clock_hz: float) -> float:
        delta_ghz = (clock_hz - self.f_ref_hz) / 1.0e9
        return self.v_crit_ref + self.slope_v_per_ghz * delta_ghz

    def classify(
        self,
        min_rail_voltage: float,
        clock_hz: float,
        rng: np.random.Generator,
    ) -> Outcome:
        """Outcome of one run whose worst rail dip was ``min_rail_voltage``."""
        threshold = self.v_crit(clock_hz) + self.jitter_sigma_v * float(
            rng.standard_normal()
        )
        if min_rail_voltage < threshold:
            return Outcome.SYSTEM_CRASH
        if min_rail_voltage < threshold + self.sdc_window_v:
            # Near-threshold dips corrupt data or kill the process.
            return Outcome.SDC if rng.random() < 0.6 else Outcome.APP_CRASH
        return Outcome.PASS


# Calibrated so that GA-virus V_MIN reproduces the paper's margins
# (Table 2): ~150 mV below nominal on both ARM clusters, 37.5 mV below
# nominal on the AMD CPU.
FAILURE_PRESETS: Dict[str, CriticalVoltageModel] = {
    "cortex-a72": CriticalVoltageModel(v_crit_ref=0.740, f_ref_hz=1.2e9),
    "cortex-a53": CriticalVoltageModel(v_crit_ref=0.756, f_ref_hz=0.95e9),
    "amd-athlon-ii-x4-645": CriticalVoltageModel(
        v_crit_ref=1.1425, f_ref_hz=3.1e9
    ),
}


def failure_model_for(cluster_name: str) -> CriticalVoltageModel:
    """Calibrated failure model for a known cluster."""
    try:
        return FAILURE_PRESETS[cluster_name]
    except KeyError:
        raise KeyError(
            f"no failure model for {cluster_name!r}; "
            f"available: {sorted(FAILURE_PRESETS)}"
        ) from None
