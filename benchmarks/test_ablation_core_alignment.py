"""Ablation: multi-core phase alignment of the virus instances.

The paper runs one virus instance per core; worst-case noise assumes
the cores' high-current phases align.  This ablation quantifies the
assumption on the A72 pair: staggering the two instances by half a loop
period largely cancels the resonant fundamental, which is why aligned
execution is both the worst case and the default model.
"""

import numpy as np

from repro.pdn.models import PDNModel, CORTEX_A72_PDN
from repro.workloads.loops import high_low_program

from benchmarks.conftest import print_header


def test_ablation_core_phase_alignment(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()
    a72.set_clock(540e6)  # 8-cycle loop -> 67.5 MHz, on resonance
    program = high_low_program(a72.spec.isa)

    def run_offsets():
        period = a72.run(program).execution.loop_cycles
        rows = []
        for label, offsets in (
            ("aligned", [0, 0]),
            ("quarter period", [0, period // 4]),
            ("anti-phase", [0, period // 2]),
        ):
            run = a72.run(program, phase_offsets=offsets)
            rows.append((label, run.peak_to_peak, run.max_droop))
        return rows

    rows = benchmark.pedantic(run_offsets, rounds=1, iterations=1)
    a72.reset()
    print_header(
        "Ablation: per-core phase alignment of the resonant loop (A72)"
    )
    print(f"{'alignment':<16} {'p2p':>10} {'droop':>10}")
    for label, p2p, droop in rows:
        print(
            f"{label:<16} {p2p * 1e3:>7.1f} mV {droop * 1e3:>7.1f} mV"
        )
    by_label = {label: p2p for label, p2p, _ in rows}
    # aligned is the worst case; anti-phase cancels most of the ripple
    assert by_label["aligned"] >= by_label["quarter period"]
    assert by_label["anti-phase"] < 0.5 * by_label["aligned"]
