"""Extension: the methodology on a GPU PDN (Section 10 future work).

The paper closes with *"we aim to extend our methodology to GPU PDNs"*.
With the cluster abstraction, a GPU is just a wide-SIMD device on its
own rail: the fast EM sweep finds its resonance, CU power gating shifts
it, and the EM-driven GA evolves a GPU dI/dt virus -- no voltage
visibility required (GPUs expose none).
"""

import numpy as np

from repro.core.resonance import ResonanceSweep
from repro.core.virusgen import VirusGenerator
from repro.ga.engine import GAConfig
from repro.platforms.gpu import make_gpu_card
from repro.workloads.loops import high_low_program

from benchmarks.conftest import paper_characterizer, print_header

CLOCKS = [1.0e9 - k * 25e6 for k in range(0, 32)]


def test_ext_gpu_methodology(benchmark):
    card = make_gpu_card()
    gpu = card.gpu
    char = paper_characterizer(91)

    def run_study():
        sweep = ResonanceSweep(char, samples_per_point=5)
        gating = sweep.power_gating_study(
            gpu, core_counts=(8, 4, 1), clocks_hz=CLOCKS
        )
        gen = VirusGenerator(
            gpu,
            char,
            config=GAConfig(
                population_size=30, generations=25, loop_length=50,
                seed=3,
            ),
        )
        summary = gen.generate_em_virus()
        return gating, summary

    gating, summary = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print_header("Extension: EM methodology on an 8-CU GPU rail")
    for result in gating:
        print(
            f"  {result.powered_cores} CUs powered: resonance "
            f"{result.resonance_hz() / 1e6:5.1f} MHz"
        )
    print(
        f"  GA virus: dominant {summary.dominant_frequency_hz / 1e6:.1f} "
        f"MHz, droop {summary.max_droop_v * 1e3:.1f} mV, "
        f"IPC {summary.ipc:.2f}"
    )
    baseline = gpu.run(high_low_program(gpu.spec.isa))
    print(
        f"  (hand loop at nominal clock: droop "
        f"{baseline.max_droop * 1e3:.1f} mV)"
    )

    freqs = [r.resonance_hz() for r in gating]
    # calibrated endpoints: 55 MHz (8 CUs) -> ~90 MHz (1 CU)
    assert abs(freqs[0] - 55e6) < 6e6
    assert abs(freqs[-1] - 90e6) < 8e6
    assert all(b >= a for a, b in zip(freqs, freqs[1:]))
    # GA locks near the all-CU resonance and beats the hand loop
    assert abs(summary.dominant_frequency_hz - 55e6) < 8e6
    assert summary.max_droop_v > baseline.max_droop
