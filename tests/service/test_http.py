"""HTTP front end: wire roundtrips and error mapping.

Each test boots a real :class:`ServiceServer` on an OS-assigned port
and drives it with the stdlib-streams :class:`HttpClient`, so the
whole request path -- parsing, routing, status mapping, long-poll --
is exercised over an actual TCP connection.
"""

import asyncio

import pytest

from repro.service import (
    BadRequest,
    HttpClient,
    MeasurementService,
    RateLimited,
    ServiceServer,
    UnknownJob,
)

MEASURE = {"platform": "a53", "program_seed": 1}


def _run(coro):
    return asyncio.run(coro)


async def _boot(**kwargs):
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("samples", 3)
    service = await MeasurementService(**kwargs).start()
    server = await ServiceServer(service, port=0).start()
    return service, server, HttpClient(server.host, server.port)


class TestRoutes:
    def test_healthz(self):
        async def run():
            service, server, client = await _boot()
            try:
                assert (await client.healthz())["ok"] is True
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_submit_wait_view_events_stats(self):
        async def run():
            service, server, client = await _boot()
            try:
                accepted = await client.submit("measure", MEASURE)
                assert accepted["status"] in ("queued", "running")
                job_id = accepted["job_id"]
                done = await client.wait(job_id)
                assert done["status"] == "done"
                assert done["result"]["kind"] == "em-measurement"
                view = await client.view(job_id)
                assert view == done
                events = await client.events(job_id)
                names = [e["event"] for e in events["events"]]
                assert names[0] == "submitted"
                assert "finished" in names
                stats = await client.stats()
                assert stats["counters"]["done"] == 1
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_wait_long_poll_returns_202_while_running(self):
        async def run():
            # Not started: the job can never finish, so a bounded
            # wait must come back 202 with the live view.
            service = MeasurementService(seed=3, samples=3)
            server = await ServiceServer(service, port=0).start()
            client = HttpClient(server.host, server.port)
            try:
                accepted = await client.submit("measure", MEASURE)
                status, payload = await client.request(
                    "GET",
                    f"/v1/jobs/{accepted['job_id']}/wait"
                    "?timeout_s=0.05",
                )
                assert status == 202
                assert payload["status"] == "queued"
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_cancel_roundtrip(self):
        async def run():
            service = MeasurementService(seed=3, samples=3)
            server = await ServiceServer(service, port=0).start()
            client = HttpClient(server.host, server.port)
            try:
                accepted = await client.submit("measure", MEASURE)
                view = await client.cancel(accepted["job_id"])
                assert view["status"] == "cancelled"
            finally:
                await server.close()
                await service.close()

        _run(run())


class TestErrorMapping:
    def test_unknown_job_is_404_and_typed(self):
        async def run():
            service, server, client = await _boot()
            try:
                status, payload = await client.request(
                    "GET", "/v1/jobs/job-000077"
                )
                assert status == 404
                assert payload["type"] == "UnknownJob"
                with pytest.raises(UnknownJob):
                    await client.view("job-000077")
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_bad_request_is_400_and_typed(self):
        async def run():
            service, server, client = await _boot()
            try:
                with pytest.raises(BadRequest):
                    await client.submit("calibrate", {"platform": "a53"})
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_rate_limited_is_429_with_retry_after(self):
        async def run():
            service, server, client = await _boot(
                rate_per_s=0.001, burst=1.0
            )
            try:
                await client.submit("measure", MEASURE)
                status, payload = await client.request(
                    "POST",
                    "/v1/jobs",
                    {"kind": "measure", "params": MEASURE},
                )
                assert status == 429
                assert payload["retry_after_s"] > 0.0
                with pytest.raises(RateLimited) as excinfo:
                    await client.submit("measure", MEASURE)
                assert excinfo.value.retry_after_s > 0.0
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_unknown_route_is_404(self):
        async def run():
            service, server, client = await _boot()
            try:
                status, _ = await client.request("GET", "/nope")
                assert status == 404
                status, _ = await client.request(
                    "DELETE", "/v1/jobs/job-1"
                )
                assert status == 405
            finally:
                await server.close()
                await service.close()

        _run(run())

    def test_malformed_body_is_400(self):
        async def run():
            service, server, _client = await _boot()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                body = b"not json"
                writer.write(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n%s"
                    % (len(body), body)
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b"400" in status_line
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()
                await service.close()

        _run(run())
