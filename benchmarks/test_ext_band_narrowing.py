"""Extension: band narrowing to accelerate the GA (Section 5.3(b)).

Paper: the fast sweep is useful *"to constrain the spectrum analyser
measurements during EM GA search to a smaller band of frequencies to
minimize the measurement time and, hence, the GA search time"*.

The spectrum analyzer model accounts simulated dwell time per measured
bin; the paper's full-span 30-sample measurement costs ~18 s per
individual, a 15-hour GA.  A quick sweep first, then a +/-10 MHz band
around the found resonance, cuts measurement time ~7x while the GA
converges to the same place.
"""

import numpy as np

from repro.core.virusgen import VirusGenerator
from repro.ga.engine import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

from benchmarks.conftest import paper_characterizer, print_header

GA = GAConfig(population_size=24, generations=20, loop_length=50, seed=5)
CLOCKS = [1.2e9 - k * 20e6 for k in range(0, 54)]


def test_ext_band_narrowing(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()

    def run_both():
        # full-band GA
        char_full = paper_characterizer(201)
        gen_full = VirusGenerator(a72, char_full, config=GA)
        full = gen_full.generate_em_virus()
        full_time = char_full.analyzer.total_measurement_time_s

        # sweep first, then narrow-band GA
        char_narrow = paper_characterizer(202)
        gen_narrow = VirusGenerator(a72, char_narrow, config=GA)
        band = gen_narrow.narrowed_band_from_sweep(
            half_width_hz=10e6, clocks_hz=CLOCKS
        )
        narrow = gen_narrow.generate_em_virus(band=band)
        narrow_time = char_narrow.analyzer.total_measurement_time_s
        return full, full_time, narrow, narrow_time, band

    full, full_time, narrow, narrow_time, band = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print_header(
        "Extension: GA measurement band narrowed by a prior fast sweep"
    )
    print(
        f"  narrowed band: {band[0] / 1e6:.1f} - {band[1] / 1e6:.1f} MHz"
    )
    print(
        f"  full-band GA:    dominant {full.dominant_frequency_hz / 1e6:5.1f}"
        f" MHz, droop {full.max_droop_v * 1e3:5.1f} mV, simulated "
        f"instrument time {full_time / 3600:5.2f} h"
    )
    print(
        f"  narrow-band GA:  dominant "
        f"{narrow.dominant_frequency_hz / 1e6:5.1f}"
        f" MHz, droop {narrow.max_droop_v * 1e3:5.1f} mV, simulated "
        f"instrument time {narrow_time / 3600:5.2f} h "
        f"({full_time / narrow_time:.1f}x faster)"
    )

    # both converge onto the resonance
    assert abs(full.dominant_frequency_hz - 67e6) < 8e6
    assert abs(narrow.dominant_frequency_hz - 67e6) < 8e6
    # the narrowed run produces a comparable virus...
    assert narrow.max_droop_v > 0.7 * full.max_droop_v
    # ...for a large instrument-time saving (sweep overhead included)
    assert narrow_time < 0.35 * full_time
