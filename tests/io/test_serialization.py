"""Unit tests for program/virus serialization."""

import json

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import InstructionSet, RegisterFile
from repro.cpu.program import program_from_mnemonics, random_program
from repro.cpu.x86 import X86_ISA
from repro.io.serialization import (
    SerializationError,
    load_program,
    load_virus_archive,
    program_from_dict,
    program_to_dict,
    save_program,
    save_virus_archive,
)


class TestProgramRoundTrip:
    def test_arm_round_trip(self, tmp_path):
        program = random_program(ARM_ISA, 50, np.random.default_rng(1))
        path = tmp_path / "virus.json"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.genome() == program.genome()
        assert loaded.name == program.name

    def test_x86_round_trip(self):
        program = random_program(X86_ISA, 30, np.random.default_rng(2))
        loaded = program_from_dict(program_to_dict(program))
        assert loaded.genome() == program.genome()

    def test_restricted_pool_round_trip(self):
        """Programs built from a subset ISA keep their resources."""
        pool = InstructionSet(
            name="armv8-pool",
            specs=(ARM_ISA.spec("add"), ARM_ISA.spec("ldr")),
            registers={
                RegisterFile.INT: 8,
                RegisterFile.FP: 8,
                RegisterFile.VEC: 8,
            },
            memory_slots=16,
        )
        program = random_program(pool, 20, np.random.default_rng(3))
        loaded = program_from_dict(program_to_dict(program))
        assert loaded.genome() == program.genome()
        assert loaded.isa.memory_slots == 16
        assert loaded.isa.registers[RegisterFile.INT] == 8

    def test_assembly_preserved(self):
        program = program_from_mnemonics(ARM_ISA, ["add", "ldr", "fsqrt"])
        loaded = program_from_dict(program_to_dict(program))
        assert loaded.assembly() == program.assembly()


class TestErrors:
    def test_bad_version(self):
        data = program_to_dict(
            program_from_mnemonics(ARM_ISA, ["add"])
        )
        data["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            program_from_dict(data)

    def test_unknown_base(self):
        data = program_to_dict(
            program_from_mnemonics(ARM_ISA, ["add"])
        )
        data["base_isa"] = "riscv"
        with pytest.raises(SerializationError, match="unknown base"):
            program_from_dict(data)

    def test_unknown_mnemonic(self):
        data = program_to_dict(
            program_from_mnemonics(ARM_ISA, ["add"])
        )
        data["body"][0]["mnemonic"] = "hcf"
        with pytest.raises(SerializationError):
            program_from_dict(data)

    def test_missing_fields(self):
        with pytest.raises(SerializationError, match="missing"):
            program_from_dict({"body": []})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_program(path)


class TestVirusArchive:
    def test_archive_round_trip(self, tmp_path, a72, characterizer):
        from repro.core.virusgen import VirusGenerator
        from repro.ga.engine import GAConfig

        gen = VirusGenerator(
            a72,
            characterizer,
            config=GAConfig(
                population_size=8, generations=3, loop_length=20, seed=4
            ),
        )
        summary = gen.generate_em_virus(samples=3)
        meta_path = save_virus_archive(summary, tmp_path)

        assert meta_path.exists()
        program, metadata = load_virus_archive(meta_path)
        assert program.genome() == summary.virus.genome()
        assert metadata["cluster"] == "cortex-a72"
        assert metadata["metric"] == "em-amplitude"
        # assembly file sits next to the archive
        asm = (tmp_path / metadata["assembly_file"]).read_text()
        assert "virus_loop:" in asm

    def test_archive_metadata_is_valid_json(self, tmp_path, a72):
        from repro.core.virusgen import VirusGenerator
        from repro.ga.engine import GAConfig

        gen = VirusGenerator(
            a72,
            config=GAConfig(
                population_size=8, generations=2, loop_length=10, seed=5
            ),
        )
        summary = gen.generate_em_virus(samples=2)
        meta_path = save_virus_archive(summary, tmp_path, stem="v1")
        metadata = json.loads(meta_path.read_text())
        assert metadata["program_file"] == "v1.json"
        assert metadata["max_droop_v"] > 0.0


class TestPopulationArchive:
    def test_population_round_trip(self, tmp_path):
        from repro.io.serialization import load_population, save_population

        rng = np.random.default_rng(9)
        population = [random_program(ARM_ISA, 20, rng) for _ in range(6)]
        path = tmp_path / "population.json"
        save_population(population, path)
        loaded = load_population(path)
        assert len(loaded) == 6
        for a, b in zip(population, loaded):
            assert a.genome() == b.genome()

    def test_population_resumes_ga(self, tmp_path, a72, characterizer):
        """A saved population seeds a new engine run (Section 3.1a)."""
        from repro.ga.engine import GAConfig, GAEngine
        from repro.ga.fitness import EMAmplitudeFitness
        from repro.io.serialization import load_population, save_population

        rng = np.random.default_rng(10)
        population = [random_program(ARM_ISA, 16, rng) for _ in range(8)]
        path = tmp_path / "pop.json"
        save_population(population, path)

        fitness = EMAmplitudeFitness(
            analyzer=characterizer.analyzer, samples=2
        )
        config = GAConfig(
            population_size=8, generations=2, loop_length=16, seed=1
        )
        result = GAEngine(lambda p: fitness(a72, p), config).run(
            ARM_ISA, initial_population=load_population(path)
        )
        gen0_genomes = {p.genome() for p in population}
        assert result.history[0].best_program.genome() in gen0_genomes

    def test_bad_population_file(self, tmp_path):
        from repro.io.serialization import load_population

        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 1}')
        with pytest.raises(SerializationError, match="individuals"):
            load_population(path)
