"""Machine-readable run provenance.

A :class:`RunManifest` is written next to every artifact a CLI run
produces (virus archives, sweep tables, reports).  It records enough
to reconstruct the run -- platform, seed, full configuration, code
version, elapsed time -- and points at the sibling JSONL event log and
artifact files, so :mod:`repro.analysis.report` can regenerate a
report from provenance alone, without re-running the experiment.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

MANIFEST_VERSION = 1
MANIFEST_FILENAME = "run_manifest.json"


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, if any."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class RunManifest:
    """Provenance record for one experiment run.

    ``event_log`` and ``artifacts`` are paths relative to the manifest's
    own directory, so an archived artifact directory stays relocatable.
    """

    command: str
    platform: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    git: Optional[str] = None
    created_unix: float = 0.0
    elapsed_s: float = 0.0
    event_log: Optional[str] = None
    artifacts: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @classmethod
    def create(
        cls,
        command: str,
        platform: str,
        seed: int,
        config: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Start a manifest for a run beginning now."""
        return cls(
            command=command,
            platform=platform,
            seed=seed,
            config=dict(config or {}),
            git=git_describe(),
            created_unix=time.time(),
        )

    def add_artifact(self, name: str) -> None:
        if name not in self.artifacts:
            self.artifacts.append(name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "manifest_version": self.version,
            "command": self.command,
            "platform": self.platform,
            "seed": self.seed,
            "config": self.config,
            "git": self.git,
            "created_unix": self.created_unix,
            "elapsed_s": self.elapsed_s,
            "event_log": self.event_log,
            "artifacts": list(self.artifacts),
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        try:
            version = data["manifest_version"]
            command = data["command"]
            platform = data["platform"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed manifest: {exc}") from exc
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r}"
            )
        return cls(
            command=command,
            platform=platform,
            seed=int(data.get("seed", 0)),
            config=dict(data.get("config", {})),
            git=data.get("git"),
            created_unix=float(data.get("created_unix", 0.0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            event_log=data.get("event_log"),
            artifacts=list(data.get("artifacts", [])),
            extra=dict(data.get("extra", {})),
        )

    def write(self, directory: Union[str, Path]) -> Path:
        """Finalize elapsed time and write into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if self.created_unix and not self.elapsed_s:
            self.elapsed_s = round(time.time() - self.created_unix, 3)
        path = directory / MANIFEST_FILENAME
        path.write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest from a file or an artifact directory."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        return cls.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        )
