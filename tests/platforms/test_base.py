"""Unit tests for the Cluster abstraction."""

import numpy as np
import pytest

from repro.cpu.program import program_from_mnemonics


@pytest.fixture
def hilo(a72):
    return program_from_mnemonics(a72.spec.isa, ["add"] * 8 + ["sdiv"])


class TestControls:
    def test_clock_must_be_reachable(self, a72):
        a72.set_clock(1.18e9)  # one 20 MHz step down
        assert a72.clock_hz == 1.18e9
        with pytest.raises(ValueError, match="not reachable"):
            a72.set_clock(1.19e9)

    def test_allowed_clocks_descend_to_min(self, a72):
        clocks = a72.spec.allowed_clocks_hz()
        assert clocks[0] == a72.spec.nominal_clock_hz
        assert clocks[-1] >= a72.spec.min_clock_hz - 1.0
        steps = np.diff(clocks)
        assert np.allclose(steps, -a72.spec.clock_step_hz)

    def test_voltage_range_guard(self, a72):
        with pytest.raises(ValueError):
            a72.set_voltage(0.1)
        with pytest.raises(ValueError):
            a72.set_voltage(2.0)

    def test_power_gate_bounds(self, a53):
        a53.power_gate(2)
        assert a53.powered_cores == 2
        with pytest.raises(ValueError):
            a53.power_gate(0)
        with pytest.raises(ValueError):
            a53.power_gate(5)

    def test_reset_restores_nominal(self, a72):
        a72.set_clock(1.0e9)
        a72.set_voltage(0.9)
        a72.power_gate(1)
        a72.reset()
        assert a72.clock_hz == a72.spec.nominal_clock_hz
        assert a72.voltage == a72.spec.nominal_voltage
        assert a72.powered_cores == a72.spec.num_cores


class TestExecution:
    def test_active_cannot_exceed_powered(self, a72, hilo):
        a72.power_gate(1)
        with pytest.raises(ValueError, match="exceed"):
            a72.run(hilo, active_cores=2)

    def test_run_reports_operating_point(self, a72, hilo):
        a72.set_clock(1.0e9)
        run = a72.run(hilo)
        assert run.clock_hz == 1.0e9
        assert run.voltage == 1.0
        assert run.powered_cores == 2
        assert run.active_cores == 2

    def test_current_scales_with_clock(self, a72, hilo):
        run_fast = a72.run(hilo)
        a72.set_clock(0.6e9)
        run_slow = a72.run(hilo)
        fast_mean = run_fast.response.die_current.mean()
        slow_mean = run_slow.response.die_current.mean()
        assert slow_mean == pytest.approx(0.5 * fast_mean, rel=1e-6)

    def test_current_scales_with_voltage(self, a72, hilo):
        nominal = a72.run(hilo).response.die_current.mean()
        a72.set_voltage(0.9)
        reduced = a72.run(hilo).response.die_current.mean()
        assert reduced == pytest.approx(0.9 * nominal, rel=1e-6)

    def test_lower_voltage_shifts_rail_down(self, a72, hilo):
        a72.set_voltage(0.9)
        run = a72.run(hilo)
        assert run.response.nominal_voltage == pytest.approx(0.9)
        assert run.response.die_voltage.max() < 0.9

    def test_droop_peaks_when_loop_hits_resonance(self, a72, hilo):
        """Fig. 11 physics at cluster level: tune the clock so the loop
        frequency crosses 67 MHz and the droop maximizes there."""
        droops = {}
        for clock in (1.2e9, 800e6, 540e6):
            a72.set_clock(clock)
            run = a72.run(hilo)
            droops[run.loop_frequency_hz] = run.peak_to_peak
        # 800 MHz / 12 cycles? -> loop at 100, 66.7, 45 MHz
        freqs = sorted(droops)
        mid = [f for f in freqs if 60e6 < f < 72e6]
        assert mid, f"no sweep point near resonance: {freqs}"
        assert droops[mid[0]] == max(droops.values())

    def test_run_trace_path(self, a72):
        resp = a72.run_trace(np.full(64, 1.0), 1.2e9)
        assert resp.max_droop > 0.0

    def test_jitter_trace_longer_but_periodic(self, a72, hilo):
        rng = np.random.default_rng(0)
        run = a72.run(hilo, timing_jitter_rng=rng, jitter_tiles=4)
        # response waveform covers jitter_tiles periods
        base = a72.run(hilo)
        assert run.response.die_voltage.size == (
            4 * base.response.die_voltage.size
        )
