"""Shared fixtures: platform models and receive chains.

Board models are session-scoped for speed (their PDN solver caches are
expensive to warm); the function-scoped cluster fixtures reset mutable
state (voltage, clock, power gating) so tests stay independent.
"""

import numpy as np
import pytest

from repro import EMCharacterizer, make_amd_desktop, make_juno_board
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


@pytest.fixture(scope="session")
def juno_board():
    return make_juno_board()


@pytest.fixture(scope="session")
def amd_desktop():
    return make_amd_desktop()


@pytest.fixture
def a72(juno_board):
    juno_board.a72.reset()
    yield juno_board.a72
    juno_board.a72.reset()


@pytest.fixture
def a53(juno_board):
    juno_board.a53.reset()
    yield juno_board.a53
    juno_board.a53.reset()


@pytest.fixture
def athlon(amd_desktop):
    amd_desktop.cpu.reset()
    yield amd_desktop.cpu
    amd_desktop.cpu.reset()


@pytest.fixture
def characterizer():
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(1234)),
        samples=5,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(99)
