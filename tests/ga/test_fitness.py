"""Unit tests for the fitness measurement chains."""

import numpy as np
import pytest

from repro.cpu.program import program_from_mnemonics
from repro.ga.fitness import (
    EMAmplitudeFitness,
    MaxDroopFitness,
    PeakToPeakFitness,
)
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.probes import DifferentialProbe
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


@pytest.fixture
def hilo(a72):
    return program_from_mnemonics(
        a72.spec.isa, ["add"] * 8 + ["sdiv"], name="hilo"
    )


@pytest.fixture
def quiet_loop(a72):
    """A steady loop with little dI/dt: independent adds only."""
    return program_from_mnemonics(a72.spec.isa, ["add"] * 9, name="flat")


class TestEMAmplitudeFitness:
    def test_returns_evaluation_fields(self, a72, hilo):
        fit = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(0)),
            samples=5,
        )
        ev = fit(a72, hilo)
        assert ev.score > 0.0
        assert 50e6 <= ev.dominant_frequency_hz <= 200e6
        assert ev.max_droop_v > 0.0
        assert ev.ipc > 0.0
        assert float(ev) == ev.score

    def test_hilo_beats_flat_loop(self, a72, hilo, quiet_loop):
        """Alternating current scores higher EM amplitude than flat."""
        fit = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(1)),
            samples=5,
        )
        assert fit(a72, hilo).score > fit(a72, quiet_loop).score


class TestMaxDroopFitness:
    def test_scope_droop_close_to_model(self, a72, hilo):
        scope = Oscilloscope(
            noise_rms_v=0.0,
            resolution_bits=14,
            rng=np.random.default_rng(2),
        )
        fit = MaxDroopFitness(oscilloscope=scope)
        ev = fit(a72, hilo)
        assert ev.score == pytest.approx(ev.max_droop_v, rel=0.1)

    def test_hilo_beats_flat(self, a72, hilo, quiet_loop):
        scope = Oscilloscope(rng=np.random.default_rng(3))
        fit = MaxDroopFitness(oscilloscope=scope)
        assert fit(a72, hilo).score > fit(a72, quiet_loop).score


class TestPeakToPeakFitness:
    def test_probe_chain(self, athlon):
        prog = program_from_mnemonics(
            athlon.spec.isa, ["add_rr"] * 8 + ["idiv_rr"]
        )
        fit = PeakToPeakFitness(probe=DifferentialProbe())
        ev = fit(athlon, prog)
        assert ev.score > 0.0
        assert ev.peak_to_peak_v > 0.0


class TestCacheModeFitness:
    def test_cache_model_requires_rng(self, a72):
        from repro.cpu.cache import CacheModel

        with pytest.raises(ValueError, match="memory_rng"):
            EMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(0)),
                cache_model=CacheModel(),
            )

    def test_cache_model_makes_fitness_noisy(self, a72):
        from repro.cpu.cache import CacheModel
        from repro.cpu.isa import InstructionSet
        from repro.cpu.program import random_program

        wide = InstructionSet(
            name="armv8-wide",
            specs=a72.spec.isa.specs,
            registers=dict(a72.spec.isa.registers),
            memory_slots=256,
        )
        program = random_program(
            wide, 24, np.random.default_rng(1),
            pool=(wide.spec("ldr"), wide.spec("add")),
        )
        fit = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(2)),
            samples=3,
            cache_model=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(3),
        )
        a = fit(a72, program).score
        b = fit(a72, program).score
        assert a != pytest.approx(b, rel=1e-6)
