"""Closed-loop adaptive clocking against the simulated PDN.

Adaptive clocking ([21][29] in the paper) watches the rail and, when a
droop crosses a trip threshold, stretches the clock: the core slows,
current demand falls, and the dip bottoms out above the failure point.
Its Achilles' heel is response latency -- the droop keeps developing
for the detector/actuator delay before any relief arrives.

The model runs the PDN's trapezoidal stepper one clock cycle at a time
with the controller in the loop:

- each cycle draws the workload's scheduled current, scaled by the
  throttle factor while a stretch is active;
- when the die voltage crosses ``trip_threshold_v`` below nominal, a
  throttle is scheduled ``response_latency_s`` later and held for
  ``hold_s``.

Section 6's warning falls out of the physics: with fewer powered cores
the resonance is faster, the dip reaches bottom sooner, and a fixed
response latency arrives too late -- the mitigation's usable latency
budget shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.pdn.models import PDNModel
from repro.pdn.transient import TransientSolver


@dataclass(frozen=True)
class AdaptiveClockConfig:
    """Controller parameters.

    ``trip_threshold_v`` is the droop (below nominal) that arms the
    throttle; ``response_latency_s`` covers detection plus clock
    actuation; ``throttle_factor`` is the current ratio while
    stretched; ``hold_s`` is the minimum stretch duration.
    """

    trip_threshold_v: float = 0.030
    response_latency_s: float = 5.0e-9
    throttle_factor: float = 0.6
    hold_s: float = 30.0e-9

    def __post_init__(self) -> None:
        if self.trip_threshold_v <= 0.0:
            raise ValueError("trip threshold must be positive")
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ValueError("throttle factor must be in (0, 1]")
        if self.response_latency_s < 0.0:
            raise ValueError("response latency must be >= 0")


@dataclass
class ClosedLoopResult:
    """Waveforms and summary of one closed-loop run."""

    times_s: np.ndarray
    die_voltage: np.ndarray
    throttled: np.ndarray
    nominal_voltage: float

    @property
    def min_voltage(self) -> float:
        return float(self.die_voltage.min())

    @property
    def max_droop(self) -> float:
        return self.nominal_voltage - self.min_voltage

    @property
    def throttle_fraction(self) -> float:
        """Fraction of cycles spent stretched (the performance cost)."""
        return float(np.mean(self.throttled))


def resonant_burst(
    pdn: PDNModel,
    powered_cores: int,
    base_a: float,
    swing_a: float,
    start_s: float,
    duration_s: float,
) -> "callable":
    """A worst-case load: a square-wave burst at the rail's resonance.

    Before ``start_s`` the load idles at ``base_a``; then it alternates
    between ``base_a + swing_a`` and ``base_a`` at the first-order
    resonance frequency of the given power-gating state for
    ``duration_s`` -- the Fig. 2 excitation as a time-bounded event.
    """
    f_res = pdn.measured_resonance_hz(powered_cores)

    def load(t: float) -> float:
        if t < start_s or t > start_s + duration_s:
            return base_a
        phase = (t - start_s) * f_res
        return base_a + (swing_a if (phase % 1.0) < 0.5 else 0.0)

    load.resonance_hz = f_res
    return load


class AdaptiveClock:
    """Simulate a cluster rail with the throttling controller in-loop."""

    def __init__(
        self,
        pdn: PDNModel,
        powered_cores: int,
        config: AdaptiveClockConfig = AdaptiveClockConfig(),
        dt_s: float = 0.5e-9,
    ):
        self.pdn = pdn
        self.powered_cores = powered_cores
        self.config = config
        self.dt_s = dt_s
        self._solver = TransientSolver(
            pdn.build_circuit(powered_cores), dt=dt_s
        )

    def run(
        self,
        load_fn,
        duration_s: float,
        enabled: bool = True,
    ) -> ClosedLoopResult:
        """Run the closed loop for ``duration_s``.

        ``load_fn(t) -> amperes`` is the unthrottled demand;
        ``enabled=False`` gives the unmitigated baseline.
        """
        cfg = self.config
        nominal = self.pdn.nominal_voltage
        trip_v = nominal - cfg.trip_threshold_v
        steps = int(round(duration_s / self.dt_s))
        stepper = self._solver.stepper("die")
        stepper.reset(load_fn(0.0))

        times = np.empty(steps)
        volts = np.empty(steps)
        throttled = np.zeros(steps, dtype=bool)

        throttle_until = -1.0
        pending_at: Optional[float] = None
        for k in range(steps):
            t = (k + 1) * self.dt_s
            active = enabled and t <= throttle_until
            if pending_at is not None and enabled and t >= pending_at:
                throttle_until = t + cfg.hold_s
                pending_at = None
                active = True
            demand = load_fn(t)
            if active:
                demand *= cfg.throttle_factor
            v = stepper.step(demand)
            times[k] = t
            volts[k] = v
            throttled[k] = active
            # detector: arm the throttle once the rail crosses the trip
            if (
                enabled
                and v < trip_v
                and pending_at is None
                and t > throttle_until
            ):
                pending_at = t + cfg.response_latency_s
        return ClosedLoopResult(
            times_s=times,
            die_voltage=volts,
            throttled=throttled,
            nominal_voltage=nominal,
        )

    def improvement_v(
        self, load_fn, duration_s: float
    ) -> float:
        """Droop reduction the controller buys for this load."""
        base = self.run(load_fn, duration_s, enabled=False)
        mitigated = self.run(load_fn, duration_s, enabled=True)
        return base.max_droop - mitigated.max_droop
