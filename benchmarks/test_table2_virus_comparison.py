"""Table 2: cross-platform dI/dt virus comparison.

Paper: all five viruses (a72OC-DSO, a72em, a53em, amdEm, amdOsc) use a
50-instruction loop; ARM viruses have loop frequency well below their
dominant frequency (the min-IPC argument of Section 8.2) while the AMD
viruses have them equal; branches are essentially absent from the
evolved mixes while every other instruction type appears.
"""

import numpy as np

from repro.analysis.tables import VirusRow, render_virus_table
from repro.cpu.isa import InstructionClass
from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload

from benchmarks.conftest import print_header


def _margin(cluster, summary, step_v=0.010):
    tester = VminTester(
        cluster,
        failure_model_for(cluster.name),
        step_v=step_v,
        seed=2,
    )
    result = tester.run(
        ProgramWorkload(summary.virus.name, summary.virus, jitter_seed=None),
        repeats=10,
    )
    return cluster.spec.nominal_voltage - result.vmin


def test_table2_virus_comparison(
    benchmark,
    juno_board,
    amd_desktop,
    a72_em_virus,
    a72_dso_virus,
    a53_em_virus,
    amd_em_virus,
    amd_osc_virus,
):
    juno_board.a72.reset()
    juno_board.a53.reset()
    amd_desktop.cpu.reset()

    def regenerate():
        rows = []
        for name, cluster, summary, step in (
            ("a72OC-DSO", juno_board.a72, a72_dso_virus, 0.010),
            ("a72em", juno_board.a72, a72_em_virus, 0.010),
            ("a53em", juno_board.a53, a53_em_virus, 0.010),
            ("amdEm", amd_desktop.cpu, amd_em_virus, 0.0125),
            ("amdOsc", amd_desktop.cpu, amd_osc_virus, 0.0125),
        ):
            rows.append(
                VirusRow(
                    name=name,
                    program=summary.virus,
                    ipc=summary.ipc,
                    loop_period_s=summary.loop_period_s,
                    loop_frequency_hz=summary.loop_frequency_hz,
                    dominant_frequency_hz=summary.dominant_frequency_hz,
                    voltage_margin_v=_margin(cluster, summary, step),
                )
            )
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Table 2: dI/dt virus comparison")
    print(render_virus_table(rows))

    by_name = {r.name: r for r in rows}
    # all viruses are 50-instruction loops
    assert all(len(r.program) == 50 for r in rows)

    # Section 8.2: ARM viruses - loop frequency < dominant frequency
    for name in ("a72OC-DSO", "a72em", "a53em"):
        r = by_name[name]
        assert r.loop_frequency_hz < 0.8 * r.dominant_frequency_hz
    # AMD viruses - loop and dominant frequency coincide (low min-IPC)
    for name in ("amdEm", "amdOsc"):
        r = by_name[name]
        ratio = r.dominant_frequency_hz / r.loop_frequency_hz
        assert ratio < 1.2 or abs(ratio - round(ratio)) < 0.05

    # ARM margins ~150 mV, AMD margins tens of mV
    for name in ("a72OC-DSO", "a72em", "a53em"):
        assert 0.08 <= by_name[name].voltage_margin_v <= 0.22
    for name in ("amdEm", "amdOsc"):
        assert by_name[name].voltage_margin_v <= 0.09

    # instruction mixes: no (or almost no) branches, everything else used
    for r in rows:
        mix = r.mix()
        assert mix.get(InstructionClass.BRANCH, 0.0) <= 0.06
        used = sum(1 for v in mix.values() if v > 0.0)
        assert used >= 4  # diverse mixes (Section 8.3)

    # EM- and voltage-driven viruses on the same platform behave alike
    assert abs(
        by_name["a72em"].voltage_margin_v
        - by_name["a72OC-DSO"].voltage_margin_v
    ) <= 0.04
