"""Session-scoped caches for the measurement chain.

A :class:`SimulationSession` owns everything that is expensive to
derive but stable across chain calls: AC transfer-function grids
(previously locked inside each ``SteadyStateSolver``), pipeline
executions (schedule + current trace, which do not depend on the
operating point), radiator tilt curves, propagation/antenna gains and
analyzer band masks.

Cache entries are keyed by the *cluster operating state*
(``Cluster.state()``: clock, voltage, powered cores) where relevant, so
a sweep over K clock points performs at most one AC analysis per
distinct state and a re-measurement at a revisited state is a pure
cache hit.  ``Cluster.state_version`` -- a counter bumped by
``set_clock`` / ``set_voltage`` / ``power_gate`` -- lets the session
detect state changes with a single integer comparison instead of
re-reading every field; a version bump invalidates the memoized state
snapshot (counted in ``stats.invalidations``) but never the
state-keyed entries themselves, which remain valid for their own key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.program import LoopProgram
    from repro.cpu.multicore import ClusterExecution
    from repro.em.radiation import DieRadiator
    from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
    from repro.pdn.steady_state import PeriodicResponse
    from repro.platforms.base import Cluster, ClusterState


@dataclass
class SessionStats:
    """Hit/miss counters for every session cache (observability only)."""

    tf_hits: int = 0
    tf_misses: int = 0
    execute_hits: int = 0
    execute_misses: int = 0
    tilt_hits: int = 0
    tilt_misses: int = 0
    gain_hits: int = 0
    gain_misses: int = 0
    mask_hits: int = 0
    mask_misses: int = 0
    invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "tf_hits": self.tf_hits,
            "tf_misses": self.tf_misses,
            "execute_hits": self.execute_hits,
            "execute_misses": self.execute_misses,
            "tilt_hits": self.tilt_hits,
            "tilt_misses": self.tilt_misses,
            "gain_hits": self.gain_hits,
            "gain_misses": self.gain_misses,
            "mask_hits": self.mask_hits,
            "mask_misses": self.mask_misses,
            "invalidations": self.invalidations,
        }


class SimulationSession:
    """Cross-call caches for one simulation campaign.

    One session per experiment (an ``EMCharacterizer``, a GA fitness, a
    sweep) is the intended granularity; sharing a session across
    experiments against the same cluster compounds the reuse.  All
    cached values are deterministic pure functions of their keys, so
    caching never changes results -- the bit-equivalence tests in
    ``tests/chain/test_equivalence.py`` pin this.
    """

    def __init__(self, max_executions: int = 4096):
        self.stats = SessionStats()
        self._max_executions = max_executions
        # id(cluster) -> (state_version, ClusterState)
        self._cluster_states: Dict[int, Tuple[int, "ClusterState"]] = {}
        # (cluster_id, genome, active, iterations) -> ClusterExecution
        self._executions: Dict[Tuple, "ClusterExecution"] = {}
        # (cluster_id, powered_cores, n_samples, sample_rate) -> (Z, H_I)
        self._tf_grids: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        # (radiator, grid_key) -> tilt array over the emission lines
        self._tilts: Dict[Tuple, np.ndarray] = {}
        # (analyzer_id, settings, grid_key) -> line gain array
        self._gains: Dict[Tuple, np.ndarray] = {}
        # (analyzer_id, settings, band) -> boolean bin mask
        self._band_masks: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # cluster state tracking
    # ------------------------------------------------------------------
    def cluster_state(self, cluster: "Cluster") -> "ClusterState":
        """The cluster's operating point, memoized by state version."""
        key = id(cluster)
        entry = self._cluster_states.get(key)
        version = cluster.state_version
        if entry is not None:
            if entry[0] == version:
                return entry[1]
            self.stats.invalidations += 1
        state = cluster.state()
        self._cluster_states[key] = (version, state)
        return state

    # ------------------------------------------------------------------
    # execute stage: schedule + per-cycle current, clock-independent
    # ------------------------------------------------------------------
    def execution(
        self,
        cluster: "Cluster",
        program: "LoopProgram",
        active_cores: int,
        clock_hz: float,
        iterations: int = 16,
        phase_offsets: Optional[Sequence[int]] = None,
    ) -> "ClusterExecution":
        """Steady-state execution of ``program`` on ``active_cores``.

        The schedule and the per-cycle current trace are independent of
        the operating point (amperes per cycle are fixed; the clock
        only sets the sample rate), so one cached execution serves
        every clock point of a sweep -- the cache key deliberately
        omits the clock and the entry is re-stamped with the item's
        ``clock_hz`` on the way out.
        """
        from repro.cpu.multicore import CoreModel, execute_on_cluster

        core = CoreModel(
            pipeline=cluster.pipeline,
            current_model=cluster.spec.current_model,
            clock_hz=clock_hz,
        )
        if phase_offsets is not None:
            # Phase studies are rare and offset-specific; don't cache.
            return execute_on_cluster(
                core,
                program,
                active_cores=active_cores,
                phase_offsets=phase_offsets,
                uncore_current_a=cluster.spec.uncore_current_a,
                iterations=iterations,
            )
        key = (id(cluster), program.genome(), active_cores, iterations)
        cached = self._executions.get(key)
        if cached is None:
            self.stats.execute_misses += 1
            cached = execute_on_cluster(
                core,
                program,
                active_cores=active_cores,
                uncore_current_a=cluster.spec.uncore_current_a,
                iterations=iterations,
            )
            if len(self._executions) >= self._max_executions:
                self._executions.pop(next(iter(self._executions)))
            self._executions[key] = cached
        else:
            self.stats.execute_hits += 1
        if cached.clock_hz != clock_hz:
            cached = replace(cached, clock_hz=clock_hz)
        return cached

    # ------------------------------------------------------------------
    # pdn stage: transfer-function grids hoisted out of the solver
    # ------------------------------------------------------------------
    def pdn_solve(
        self,
        cluster: "Cluster",
        powered_cores: int,
        voltage: float,
        load_current: np.ndarray,
        sample_rate_hz: float,
    ) -> "PeriodicResponse":
        """Steady-state rail response at an explicit operating point.

        The AC transfer-function grid is cached here, keyed by
        ``(cluster, powered_cores, n_samples, sample_rate)`` -- i.e. by
        the distinct cluster states a campaign visits -- so repeated
        solves at a revisited state never re-run the AC analysis.
        """
        from repro.platforms.base import _recentered

        solver = cluster.pdn.solver(powered_cores)
        key = (
            id(cluster),
            powered_cores,
            load_current.size,
            sample_rate_hz,
        )
        transfer = self._tf_grids.get(key)
        if transfer is None:
            self.stats.tf_misses += 1
            transfer = solver.transfer_functions(
                load_current.size, sample_rate_hz
            )
            self._tf_grids[key] = transfer
        else:
            self.stats.tf_hits += 1
        response = solver.solve(
            load_current, sample_rate_hz, transfer=transfer
        )
        return _recentered(response, voltage)

    # ------------------------------------------------------------------
    # radiate / propagate / receive scalings
    # ------------------------------------------------------------------
    def radiator_tilt(
        self,
        radiator: "DieRadiator",
        frequencies_hz: np.ndarray,
        grid_key: Tuple,
    ) -> np.ndarray:
        """The radiator's frequency tilt over one harmonic grid."""
        key = (radiator, grid_key)
        tilt = self._tilts.get(key)
        if tilt is None:
            self.stats.tilt_misses += 1
            tilt = radiator.tilt(frequencies_hz)
            self._tilts[key] = tilt
        else:
            self.stats.tilt_hits += 1
        return tilt

    def line_gains(
        self,
        analyzer: "SpectrumAnalyzer",
        frequencies_hz: np.ndarray,
        grid_key: Tuple,
    ) -> np.ndarray:
        """Coupling x antenna gain over one grid's in-span lines."""
        key = (id(analyzer), analyzer._settings_key(), grid_key)
        gains = self._gains.get(key)
        if gains is None:
            self.stats.gain_misses += 1
            gains = analyzer.line_gains(frequencies_hz)
            self._gains[key] = gains
        else:
            self.stats.gain_hits += 1
        return gains

    def band_mask(
        self,
        analyzer: "SpectrumAnalyzer",
        band: Tuple[float, float],
    ) -> np.ndarray:
        """Boolean mask of the analyzer bins inside ``band``."""
        key = (id(analyzer), analyzer._settings_key(), tuple(band))
        mask = self._band_masks.get(key)
        if mask is None:
            self.stats.mask_misses += 1
            centers = analyzer.bin_centers()
            mask = (centers >= band[0]) & (centers <= band[1])
            self._band_masks[key] = mask
        else:
            self.stats.mask_hits += 1
        return mask
