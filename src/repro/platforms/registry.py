"""The Table 1 platform matrix as queryable data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.platforms.base import NoiseVisibility


@dataclass(frozen=True)
class PlatformInfo:
    """One row of Table 1."""

    motherboard: str
    cpu: str
    num_cores: int
    isa: str
    microarchitecture: str
    nominal_clock_hz: float
    nominal_voltage: float
    technology_nm: int
    operating_system: str
    visibility: NoiseVisibility


PLATFORM_TABLE: Tuple[PlatformInfo, ...] = (
    PlatformInfo(
        motherboard="Juno Board R2",
        cpu="Cortex-A72",
        num_cores=2,
        isa="ARM",
        microarchitecture="Out of Order",
        nominal_clock_hz=1.2e9,
        nominal_voltage=1.0,
        technology_nm=16,
        operating_system="Debian",
        visibility=NoiseVisibility.OC_DSO,
    ),
    PlatformInfo(
        motherboard="Juno Board R2",
        cpu="Cortex-A53",
        num_cores=4,
        isa="ARM",
        microarchitecture="In-Order",
        nominal_clock_hz=0.95e9,
        nominal_voltage=1.0,
        technology_nm=16,
        operating_system="Debian",
        visibility=NoiseVisibility.NONE,
    ),
    PlatformInfo(
        motherboard="Asus M5A78L LE",
        cpu="Athlon II X4 645",
        num_cores=4,
        isa="x86-64",
        microarchitecture="Out of Order",
        nominal_clock_hz=3.1e9,
        nominal_voltage=1.4,
        technology_nm=45,
        operating_system="Windows 8.1",
        visibility=NoiseVisibility.KELVIN_PADS,
    ),
)


def by_cpu(cpu: str) -> PlatformInfo:
    for row in PLATFORM_TABLE:
        if row.cpu.lower() == cpu.lower():
            return row
    raise KeyError(f"no platform row for CPU {cpu!r}")


def render_table() -> str:
    """Format the platform matrix like the paper's Table 1."""
    headers = [
        "MB",
        "CPU",
        "Cores",
        "ISA",
        "uArch",
        "Freq,Vol",
        "Tech(nm)",
        "OS",
        "Noise visibility",
    ]
    rows: List[List[str]] = [headers]
    for p in PLATFORM_TABLE:
        rows.append(
            [
                p.motherboard,
                p.cpu,
                str(p.num_cores),
                p.isa,
                p.microarchitecture,
                f"{p.nominal_clock_hz / 1e9:.2f}GHz,{p.nominal_voltage:g}V",
                str(p.technology_nm),
                p.operating_system,
                p.visibility.value,
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)
