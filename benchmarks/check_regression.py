"""Benchmark regression gate for CI.

Compares a freshly generated ``bench_throughput.py`` report against the
committed baseline ``BENCH_eval_engine.json`` and exits non-zero when
any kernel's throughput regressed by more than ``--tolerance``
(default 30%).

Absolute wall-clock times are machine-dependent, so the comparison is
on the *speedup* ratios (optimized vs reference) each report records:
those are self-normalizing -- both numerator and denominator ran on the
same machine -- which makes a CI runner comparable to the workstation
that produced the baseline.

The GA entry compares serial-vs-parallel wall-clock, which only means
anything with real cores; it is skipped when either report ran with
fewer schedulable CPUs (``usable_cpus``, falling back to
``cpu_count``) than the GA benchmark's worker count.  On runners with
at least :data:`GA_FLOOR_CORES` cores the persistent-worker pool is
additionally held to an absolute floor: ``ga.speedup`` below
:data:`GA_SPEEDUP_FLOOR` fails the gate even if the baseline was just
as bad, so the parallel path can never quietly regress back to
slower-than-serial dispatch.  The ``islands`` entry (2-island ring vs
serial) is gated the same way against :data:`ISLANDS_SPEEDUP_FLOOR`.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py --quick \
        --out bench-current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_eval_engine.json --current bench-current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KERNEL_KEYS = ("schedule", "trace", "combined", "transient")

#: Minimum acceptable ga.speedup on capable runners.
GA_SPEEDUP_FLOOR = 1.5
#: Core count from which the absolute GA floor is enforced.
GA_FLOOR_CORES = 4
#: Minimum acceptable islands.speedup on capable runners.
ISLANDS_SPEEDUP_FLOOR = 1.3


def _cores(report: dict) -> int:
    """Schedulable CPUs a report ran with (older reports lack the
    ``usable_cpus`` field and fall back to the host count)."""
    return report.get("usable_cpus") or report.get("cpu_count") or 0


def compare(baseline: dict, current: dict, tolerance: float) -> list:
    """Return a list of (key, baseline_speedup, current_speedup, ok)."""
    rows = []
    for key in KERNEL_KEYS:
        base = baseline[key]["speedup"]
        cur = current[key]["speedup"]
        rows.append((key, base, cur, cur >= base * (1.0 - tolerance)))

    workers = max(
        baseline.get("ga", {}).get("workers", 0),
        current.get("ga", {}).get("workers", 0),
    )
    cores = min(_cores(baseline), _cores(current))
    if "ga" in baseline and "ga" in current and cores >= workers:
        base = baseline["ga"]["speedup"]
        cur = current["ga"]["speedup"]
        ok = cur >= base * (1.0 - tolerance)
        if cores >= GA_FLOOR_CORES and cur < GA_SPEEDUP_FLOOR:
            print(
                f"ga: speedup {cur:.2f}x is below the "
                f"{GA_SPEEDUP_FLOOR}x floor on a {cores}-core runner",
                file=sys.stderr,
            )
            ok = False
        rows.append(("ga", base, cur, ok))
    else:
        print(
            f"ga: skipped (usable cpus {cores} < workers {workers}; "
            "parallel speedup is meaningless without real cores)",
            file=sys.stderr,
        )

    # The island campaign spreads 2 islands x workers_per_island
    # processes; like the ga entry it is only meaningful with that
    # many real cores behind it.
    island_procs = max(
        _island_procs(baseline), _island_procs(current)
    )
    if (
        "islands" in baseline
        and "islands" in current
        and cores >= island_procs
    ):
        base = baseline["islands"]["speedup"]
        cur = current["islands"]["speedup"]
        ok = cur >= base * (1.0 - tolerance)
        if cores >= GA_FLOOR_CORES and cur < ISLANDS_SPEEDUP_FLOOR:
            print(
                f"islands: speedup {cur:.2f}x is below the "
                f"{ISLANDS_SPEEDUP_FLOOR}x floor on a "
                f"{cores}-core runner",
                file=sys.stderr,
            )
            ok = False
        rows.append(("islands", base, cur, ok))
    else:
        print(
            f"islands: skipped (usable cpus {cores} < "
            f"{island_procs} island workers)",
            file=sys.stderr,
        )
    return rows


def _island_procs(report: dict) -> int:
    entry = report.get("islands", {})
    return entry.get("islands", 0) * entry.get("workers_per_island", 0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_eval_engine.json",
        help="committed reference report",
    )
    parser.add_argument(
        "--current", required=True,
        help="report from this run of bench_throughput.py",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional speedup drop before failing (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())

    failed = False
    for key, base, cur, ok in compare(baseline, current, args.tolerance):
        status = "ok" if ok else "REGRESSED"
        print(
            f"{key:>10}: baseline {base:6.2f}x  current {cur:6.2f}x  "
            f"({cur / base - 1.0:+.1%})  {status}"
        )
        failed |= not ok
    if failed:
        print(
            f"throughput regressed by more than "
            f"{args.tolerance:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
