"""Workload zoo: the benchmarks the paper compares viruses against.

Real benchmark binaries are not available (nor is the hardware to run
them), so each benchmark is modeled as a *synthetic instruction-mix
program*: a long loop whose instruction-class profile matches the
benchmark's character (lbm: FP + memory streaming; mcf: memory-bound;
Prime95: saturated SIMD FFT kernels; ...).  Running those programs
through the same pipeline/PDN path as the viruses produces the paper's
qualitative structure for free: benchmarks are high-power but
*aperiodic at the resonance*, so they droop much less than a tuned
dI/dt virus.

- :mod:`repro.workloads.base` -- the Workload protocol.
- :mod:`repro.workloads.spec` -- SPEC2006-like suite (ARM and x86).
- :mod:`repro.workloads.desktop` -- Blender/Cinebench/Euler3D/WebXPRT/
  GeekBench-like Windows workloads (Fig. 18).
- :mod:`repro.workloads.stress` -- Prime95-like, AMD-stability-like,
  idle.
- :mod:`repro.workloads.loops` -- the hand-written high/low-current
  loop of Section 5.3.
"""

from repro.workloads.base import (
    IdleWorkload,
    ProgramWorkload,
    Workload,
    WorkloadRun,
)
from repro.workloads.spec import SPEC_PROFILES, spec_suite, spec_workload
from repro.workloads.desktop import desktop_suite
from repro.workloads.stress import (
    amd_stability_test,
    idle_workload,
    prime95_like,
)
from repro.workloads.loops import high_low_loop

__all__ = [
    "Workload",
    "WorkloadRun",
    "ProgramWorkload",
    "IdleWorkload",
    "SPEC_PROFILES",
    "spec_suite",
    "spec_workload",
    "desktop_suite",
    "prime95_like",
    "amd_stability_test",
    "idle_workload",
    "high_low_loop",
]
