"""The unified experiment API: ``.run(ctx)`` across all entry points.

Every experiment -- EM characterization, resonance sweep, virus
generation -- takes the same :class:`repro.obs.RunContext` and returns
a result that round-trips through ``to_json``/``from_json``.
"""

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import ResonanceSweep, SweepResult
from repro.core.results import (
    RESULT_SCHEMA_VERSION,
    GARunSummary,
    MeasurementResult,
)
from repro.core.virusgen import VirusGenerator
from repro.ga.engine import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.context import RunContext
from repro.obs.events import EventLog, MemorySink


def make_characterizer(seed=1234, samples=3):
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=samples,
    )


class TestRunContext:
    def test_defaults(self, a53):
        ctx = RunContext(cluster=a53)
        assert ctx.seed == 0
        assert ctx.workers == 1
        assert ctx.active_cores is None
        assert not ctx.event_log.enabled
        assert ctx.cluster_name == a53.name

    def test_rejects_bad_workers(self, a53):
        with pytest.raises(ValueError, match="workers"):
            RunContext(cluster=a53, workers=0)


class TestCharacterizerRun:
    def test_returns_measurement_result(self, a53):
        sink = MemorySink()
        ctx = RunContext(cluster=a53, event_log=EventLog([sink]))
        result = make_characterizer().run(ctx)
        assert isinstance(result, MeasurementResult)
        assert result.cluster_name == a53.name
        assert result.amplitude_w > 0.0
        assert len(sink.events("em_measurement_start")) == 1
        assert len(sink.events("em_measurement_end")) == 1

    def test_round_trips_json(self, a53):
        result = make_characterizer().run(RunContext(cluster=a53))
        again = MeasurementResult.from_json(result.to_json())
        assert again.cluster_name == result.cluster_name
        assert again.amplitude_w == result.amplitude_w
        np.testing.assert_array_equal(
            again.frequencies_hz, result.frequencies_hz
        )
        np.testing.assert_array_equal(
            again.power_dbm, result.power_dbm
        )


class TestSweepRun:
    def _clocks(self, a53):
        allowed = sorted(a53.spec.allowed_clocks_hz())
        return allowed[-3:]

    def test_returns_sweep_result_with_events(self, a53):
        sink = MemorySink()
        ctx = RunContext(cluster=a53, event_log=EventLog([sink]))
        sweep = ResonanceSweep(make_characterizer(), samples_per_point=2)
        result = sweep.run(ctx, clocks_hz=self._clocks(a53))
        assert isinstance(result, SweepResult)
        assert result.resonance_hz() > 0.0
        assert len(sink.events("sweep_start")) == 1
        points = sink.events("sweep_point")
        assert len(points) == len(result.points)
        assert len(sink.events("sweep_end")) == 1

    def test_round_trips_json(self, a53):
        sweep = ResonanceSweep(make_characterizer(), samples_per_point=2)
        result = sweep.run(
            RunContext(cluster=a53), clocks_hz=self._clocks(a53)
        )
        again = SweepResult.from_json(result.to_json())
        assert again.cluster_name == result.cluster_name
        assert len(again.points) == len(result.points)
        assert again.resonance_hz() == result.resonance_hz()

    def test_bare_cluster_raises_type_error(self, a53):
        sweep = ResonanceSweep(make_characterizer(), samples_per_point=2)
        with pytest.raises(TypeError, match="RunContext"):
            sweep.run(a53, clocks_hz=self._clocks(a53))


class TestVirusGeneratorRun:
    def test_runs_under_context(self, a53):
        sink = MemorySink()
        ctx = RunContext(
            cluster=a53, seed=7, event_log=EventLog([sink])
        )
        generator = VirusGenerator(
            a53,
            make_characterizer(),
            config=GAConfig(
                population_size=4, generations=2, loop_length=4
            ),
        )
        summary = generator.run(ctx)
        assert isinstance(summary, GARunSummary)
        # context seed overrides the config's
        assert summary.ga_result.config.seed == 7
        assert len(sink.events("virus_run_start")) == 1
        assert len(sink.events("ga_run_start")) == 1
        assert len(sink.events("generation_end")) == 2
        assert len(sink.events("virus_run_end")) == 1

    def test_summary_round_trips_json(self, a53):
        ctx = RunContext(cluster=a53, seed=7)
        generator = VirusGenerator(
            a53,
            make_characterizer(),
            config=GAConfig(
                population_size=4, generations=2, loop_length=4
            ),
        )
        summary = generator.run(ctx)
        again = GARunSummary.from_json(summary.to_json())
        assert again.cluster_name == summary.cluster_name
        assert again.virus.genome() == summary.virus.genome()
        assert again.max_droop_v == summary.max_droop_v
        assert (
            again.ga_result.score_series().tolist()
            == summary.ga_result.score_series().tolist()
        )


class TestJsonResultSchema:
    def test_kind_tag_and_version_checked(self, a53):
        result = make_characterizer().run(RunContext(cluster=a53))
        text = result.to_json()
        assert f'"result_version": {RESULT_SCHEMA_VERSION}' in text
        with pytest.raises(ValueError, match="kind"):
            SweepResult.from_json(text)  # wrong result type
