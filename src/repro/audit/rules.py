"""The determinism lint rule table.

Each rule is a project-specific invariant the reproduction's
bit-identity guarantees rest on (GA resume, session caching, fault
retry).  The rule objects here carry only metadata -- identifier,
summary, and the documented fix-it -- so both the linter output and
``docs/architecture.md`` render from one source of truth.  The AST
checks themselves live in :mod:`repro.audit.lint`.

Suppression syntax (same line as the finding)::

    key = id(obj)  # audit: ignore[R3]
    value = risky()  # audit: ignore[R3,R6]
    anything = ok()  # audit: ignore

A bare ``# audit: ignore`` suppresses every rule on that line; the
bracketed form suppresses only the listed rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, what it flags, and how to fix it."""

    id: str
    name: str
    summary: str
    fixit: str


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="R1",
            name="unseeded-rng",
            summary=(
                "unseeded RNG construction: numpy's module-level "
                "np.random.* functions draw from hidden global state, "
                "and default_rng() with no seed is entropy-seeded -- "
                "either one makes a run unreproducible"
            ),
            fixit=(
                "construct an explicit generator with "
                "np.random.default_rng(seed) and thread it to the "
                "draw site (instrument RNGs come from the run seed)"
            ),
        ),
        Rule(
            id="R2",
            name="wall-clock-read",
            summary=(
                "wall-clock read (time.time / datetime.now / "
                "datetime.utcnow / date.today) outside repro.obs: "
                "timestamps belong in telemetry, never in results"
            ),
            fixit=(
                "move the timestamp into the repro.obs event/manifest "
                "layer, or derive durations from time.monotonic / "
                "time.perf_counter inside a timing section"
            ),
        ),
        Rule(
            id="R3",
            name="id-cache-key",
            summary=(
                "id() of a non-interned object: CPython reuses "
                "addresses after GC, so an id()-derived cache or dict "
                "key can silently alias a dead object's entries"
            ),
            fixit=(
                "key by a stable monotonic token (Cluster.uid, a "
                "session token registry holding a strong reference) "
                "or by a weakref, never by id()"
            ),
        ),
        Rule(
            id="R4",
            name="mutable-default-arg",
            summary=(
                "mutable default argument: the default is shared "
                "across calls, so state leaks between runs"
            ),
            fixit=(
                "default to None and construct the container inside "
                "the function (or use dataclasses.field("
                "default_factory=...))"
            ),
        ),
        Rule(
            id="R5",
            name="state-version-bump",
            summary=(
                "Cluster mutator does not bump state_version: a "
                "method writes an operating-state field read by "
                "state() without incrementing _state_version, so "
                "session caches keep serving the stale snapshot"
            ),
            fixit=(
                "add `self._state_version += 1` after the last state "
                "field write in the mutator"
            ),
        ),
        Rule(
            id="R6",
            name="overbroad-except",
            summary=(
                "bare or over-broad except: `except:` / `except "
                "BaseException:` swallow KeyboardInterrupt and "
                "SystemExit, and a non-re-raising `except Exception:` "
                "swallows injected FaultErrors and AuditViolations"
            ),
            fixit=(
                "catch the narrowest concrete exception types the "
                "operation can raise (e.g. pickle.PicklingError, "
                "OSError), or re-raise after cleanup with a bare "
                "`raise`"
            ),
        ),
    )
}

#: Rule ids in canonical order, for stable output.
RULE_IDS: Tuple[str, ...] = tuple(sorted(RULES))


def render_rule_table() -> str:
    """Plain-text table of every rule (the ``rules`` subcommand)."""
    lines = []
    for rule_id in RULE_IDS:
        rule = RULES[rule_id]
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    fix-it: {rule.fixit}")
    return "\n".join(lines)
