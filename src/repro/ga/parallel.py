"""Parallel fitness evaluation for the GA engine, with resilience.

A generation's unseen genomes are independent measurements, so they can
be fanned out across worker processes.  The dispatch model (backed by
the persistent warm-cache pool in :mod:`repro.ga.workers`) is:

1. the engine dedupes the generation by genome against its memo cache,
2. unseen programs are split into one contiguous shard per worker and
   submitted as a single whole-population request to a
   :class:`~repro.ga.workers.PersistentWorkerPool` -- long-lived
   workers that received the fitness spec once at pool start, warmed
   their :class:`~repro.chain.session.SimulationSession` once, and
   keep those caches hot across generations; shards travel as compact
   ndarray payloads (:mod:`repro.ga.shm`), and
3. per-shard results are reassembled strictly in submission order.

Ordering is deterministic: results are keyed by shard index and each
shard preserves item order, so a *pure* fitness function produces
bit-identical ``GAResult`` histories at any worker count (the
``workers=4 == workers=1`` determinism test).  A fitness that mutates
hidden state per call (e.g. a spectrum analyzer advancing its RNG)
keeps that state per-process under parallel dispatch, so its scores
are only reproducible serially -- leave ``workers=1`` for those.

Fitness callables must be picklable to cross the process boundary
(plain functions, dataclass instances such as
:class:`repro.ga.fitness.ClusterFitness` -- not closures).  An
unpicklable fitness degrades gracefully to serial evaluation; the
probe's verdict is memoized per fitness *object* (identity, weakly
referenced) so constructing evaluators repeatedly does not re-pickle
large fitness state just to re-learn the same answer.

Resilience (see :mod:`repro.faults`): with a
:class:`~repro.faults.RetryPolicy` attached, transient faults raised
inside batch evaluation are retried with the fitness's RNG state
rewound (``fitness_state`` protocol), so a retried-to-success run is
bit-identical to a fault-free one.  Crashed workers
(:class:`~repro.faults.WorkerCrash`, dead worker processes, dispatch
timeouts) get their shards re-dispatched -- the pool respawns dead or
hung workers with a full warm-up replay, while a worker that merely
*raised* an injected ``WorkerCrash`` stays alive (its fault counters
keep advancing, exactly like the historical executor semantics).
After ``max_pool_restarts`` crash events the evaluator emits
``degraded_to_serial`` and finishes the campaign in-process.  A genome
that keeps failing after per-item retries is *quarantined*: it scores
:data:`PENALTY_SCORE` (emitting ``genome_quarantined``) so the GA
keeps advancing instead of dying with the instrument.
"""

from __future__ import annotations

import pickle
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cpu.program import LoopProgram
from repro.faults.errors import RETRYABLE_FAULTS, WorkerCrash
from repro.faults.plan import NULL_INJECTOR, FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.ga.fitness import FitnessEvaluation
from repro.ga.workers import (
    PersistentWorkerPool,
    evaluate_with as _evaluate_with,
    state_hooks as _state_hooks,
)
from repro.obs.events import NULL_LOG, EventLog

#: Score assigned to quarantined genomes.  Real fitness metrics
#: (EM amplitude in watts, droop in volts) are strictly positive, so
#: zero ranks a quarantined individual below every healthy one while
#: keeping generation means finite.
PENALTY_SCORE = 0.0

#: Crash events (WorkerCrash / dead worker / dispatch timeout) after
#: which the evaluator stops re-dispatching and finishes serially.
DEFAULT_MAX_POOL_RESTARTS = 3

#: Picklability-probe verdicts per fitness object: ``(weakref, bool)``
#: pairs compared by identity.  A list rather than a
#: ``WeakKeyDictionary`` because fitness objects are often eq-compared
#: unhashable dataclasses.  Only the *verdict* is cached -- payload
#: bytes are always pickled fresh at pool start so workers see current
#: fitness state, never a stale snapshot.
_PROBE_CACHE: List[Tuple["weakref.ref", bool]] = []


def penalty_evaluation() -> FitnessEvaluation:
    """The placeholder evaluation a quarantined genome receives."""
    return FitnessEvaluation(
        score=PENALTY_SCORE,
        dominant_frequency_hz=0.0,
        max_droop_v=0.0,
        peak_to_peak_v=0.0,
        ipc=0.0,
        loop_frequency_hz=0.0,
    )


def _cached_probe(fitness: Callable) -> Optional[bool]:
    """Look up a memoized picklability verdict (and purge dead refs)."""
    verdict = None
    alive = []
    for ref, ok in _PROBE_CACHE:
        obj = ref()
        if obj is None:
            continue
        alive.append((ref, ok))
        if obj is fitness:
            verdict = ok
    _PROBE_CACHE[:] = alive
    return verdict


def _remember_probe(fitness: Callable, verdict: bool) -> None:
    try:
        ref = weakref.ref(fitness)
    except TypeError:
        return  # not weak-referenceable; skip caching
    _PROBE_CACHE.append((ref, verdict))


def shard(
    programs: Sequence[LoopProgram], workers: int
) -> List[List[LoopProgram]]:
    """Split ``programs`` into at most ``workers`` contiguous shards.

    Shard sizes differ by at most one, with the larger shards first;
    concatenating the shards reproduces the input order exactly.
    """
    count = min(workers, len(programs))
    base, extra = divmod(len(programs), count)
    shards = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        shards.append(list(programs[start:start + size]))
        start += size
    return shards


class ParallelEvaluator:
    """Evaluates batches of programs across a persistent worker pool.

    Parameters
    ----------
    fitness:
        The fitness callable.  If it cannot be pickled the evaluator
        silently evaluates serially in-process (``parallel`` is False).
    workers:
        Pool size; 1 means serial.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy`.  Without one,
        transient faults propagate to the caller unchanged (the
        historical behavior); with one, batches are retried, failing
        shards re-dispatched and persistent failures quarantined.
    fault_injector:
        Optional armed :class:`~repro.faults.FaultInjector`, shipped to
        workers alongside the fitness (site ``worker.shard``).
    event_log:
        Destination for ``fault_injected`` / ``retry_attempt`` /
        ``worker_warmup`` / ``degraded_to_serial`` /
        ``genome_quarantined`` events.
    max_pool_restarts:
        Crash events tolerated before degrading to serial execution.
    use_shm:
        Force shared-memory payload transport on/off; ``None`` follows
        the ``REPRO_GA_SHM`` environment variable (default on).
    """

    def __init__(
        self,
        fitness: Callable,
        workers: int,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        event_log: EventLog = NULL_LOG,
        max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
        use_shm: Optional[bool] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        self._fitness = fitness
        self.workers = workers
        self._policy = retry_policy
        self._injector = (
            fault_injector if fault_injector is not None else NULL_INJECTOR
        )
        self._log = event_log
        self._max_pool_restarts = max_pool_restarts
        self._use_shm = use_shm
        self._pool: Optional[PersistentWorkerPool] = None
        self._payload: Optional[bytes] = None
        self._picklable = False
        #: Crash events seen so far (worker deaths, injected crashes,
        #: dispatch timeouts).
        self.pool_crashes = 0
        #: Whether the evaluator has permanently fallen back to serial.
        self.degraded = False
        #: Genomes quarantined with a penalty score this run.
        self.quarantined: Set[Tuple] = set()
        if workers > 1:
            self._picklable = self._probe_picklability()

    def _probe_picklability(self) -> bool:
        """Whether the fitness spec can cross the process boundary.

        Memoized per fitness object; a cache hit skips pickling
        entirely (the payload is then built lazily at pool start).
        Only pickling failures mean "fall back to serial"; anything
        else (KeyboardInterrupt, injected FaultErrors, AuditViolations)
        must propagate with its traceback.
        """
        cached = _cached_probe(self._fitness)
        if cached is not None:
            return cached
        try:
            self._payload = pickle.dumps(
                (self._fitness, self._injector, self._policy)
            )
        except (pickle.PicklingError, TypeError, AttributeError):
            _remember_probe(self._fitness, False)
            return False
        _remember_probe(self._fitness, True)
        return True

    @property
    def parallel(self) -> bool:
        """Whether batches actually fan out to worker processes."""
        return self._picklable and not self.degraded

    def evaluate(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        """Evaluate ``programs``, returning results in input order."""
        if not self.parallel or len(programs) <= 1:
            return self._evaluate_serial(programs)
        return self._evaluate_parallel(programs)

    def warm_up(self) -> None:
        """Start the worker pool eagerly (no-op when serial).

        Spawns the workers and blocks until every worker finished its
        fitness ``warm_up()`` hook, so the first ``evaluate`` call --
        and anything the caller times around it -- runs against warm
        caches.  Emits one ``worker_warmup`` event per worker.
        """
        if self.parallel:
            self._ensure_pool()

    def worker_stats(self) -> Dict[int, dict]:
        """Latest per-worker session cache stats (worker id keyed)."""
        if self._pool is None:
            return {}
        return dict(self._pool.worker_stats)

    # ------------------------------------------------------------------
    # serial path (workers=1, unpicklable fitness, or degraded)
    # ------------------------------------------------------------------
    def _evaluate_serial(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        if self._policy is None:
            return _evaluate_with(self._fitness, programs)
        capture, restore = _state_hooks(self._fitness)
        try:
            return call_with_retry(
                lambda: _evaluate_with(self._fitness, programs),
                self._policy,
                event_log=self._log,
                scope="batch",
                capture_state=capture,
                restore_state=restore,
            )
        except RETRYABLE_FAULTS:
            # The whole batch kept failing; salvage item by item so one
            # poisoned genome cannot take the generation down with it.
            return self._salvage_items(programs)

    def _salvage_items(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        capture, restore = _state_hooks(self._fitness)
        results: List[FitnessEvaluation] = []
        for program in programs:
            try:
                results.append(
                    call_with_retry(
                        lambda p=program: _evaluate_with(
                            self._fitness, [p]
                        )[0],
                        self._policy,
                        event_log=self._log,
                        scope="item",
                        capture_state=capture,
                        restore_state=restore,
                    )
                )
            except RETRYABLE_FAULTS as exc:
                genome = program.genome()
                self.quarantined.add(genome)
                self._log.emit(
                    "genome_quarantined",
                    program=program.name,
                    site=getattr(exc, "site", None),
                    kind=getattr(exc, "kind", type(exc).__name__),
                    retries=self._policy.max_retries,
                    penalty_score=PENALTY_SCORE,
                )
                results.append(penalty_evaluation())
        return results

    # ------------------------------------------------------------------
    # parallel path: persistent pool dispatch with crash recovery
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> PersistentWorkerPool:
        if self._pool is None:
            if self._payload is None:
                # Probe verdict was cached, so nothing was pickled in
                # the constructor; build the payload now (and only
                # now -- workers must see current fitness state).
                self._payload = pickle.dumps(
                    (self._fitness, self._injector, self._policy)
                )
            self._pool = PersistentWorkerPool(
                self._payload,
                self.workers,
                event_log=self._log,
                use_shm=self._use_shm,
            )
            self._pool.start()
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _record_crash(self, shard_index: int, exc: BaseException) -> None:
        self.pool_crashes += 1
        if isinstance(exc, WorkerCrash):
            self._log.emit(
                "fault_injected",
                site=exc.site,
                kind=exc.kind,
                scope="worker-shard",
                error=str(exc),
            )
        self._log.emit(
            "worker_crash",
            shard=shard_index,
            crashes=self.pool_crashes,
            max_pool_restarts=self._max_pool_restarts,
            error=str(exc) or type(exc).__name__,
        )

    def _evaluate_parallel(
        self, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        shards = shard(programs, self.workers)
        results: List[Optional[List[FitnessEvaluation]]] = (
            [None] * len(shards)
        )
        remaining = list(range(len(shards)))
        retry_counts = [0] * len(shards)
        timeout = self._policy.timeout_s if self._policy else None
        while remaining:
            if self.degraded:
                for i in remaining:
                    results[i] = self._evaluate_serial(shards[i])
                remaining = []
                break
            pool = self._ensure_pool()
            outcomes = pool.dispatch(
                {i: shards[i] for i in remaining}, timeout_s=timeout
            )
            next_remaining: List[int] = []
            for i in remaining:
                outcome = outcomes[i]
                if outcome.kind == "ok":
                    results[i] = outcome.results
                    continue
                exc = outcome.error
                if outcome.kind == "crash" or isinstance(
                    exc, WorkerCrash
                ):
                    # Dead/hung worker (already respawned warm by the
                    # pool) or an injected crash from a still-healthy
                    # worker: either way, re-dispatch the shard.
                    self._record_crash(i, exc)
                    next_remaining.append(i)
                elif isinstance(exc, RETRYABLE_FAULTS):
                    # A transient fault survived the worker's local
                    # retries (or no policy is attached).
                    if self._policy is None:
                        raise exc
                    retry_counts[i] += 1
                    if retry_counts[i] <= self._policy.max_retries:
                        self._log.emit(
                            "retry_attempt",
                            scope="shard",
                            attempt=retry_counts[i],
                            max_retries=self._policy.max_retries,
                            site=getattr(exc, "site", None),
                            kind=getattr(exc, "kind", None),
                            delay_s=0.0,
                        )
                        next_remaining.append(i)
                    else:
                        results[i] = self._salvage_items(shards[i])
                else:
                    raise exc
            if (
                next_remaining
                and self.pool_crashes > self._max_pool_restarts
            ):
                self.degraded = True
                self._teardown_pool()
                self._log.emit(
                    "degraded_to_serial",
                    crashes=self.pool_crashes,
                    max_pool_restarts=self._max_pool_restarts,
                    pending_shards=len(next_remaining),
                )
            remaining = next_remaining
        flattened: List[FitnessEvaluation] = []
        for shard_results in results:
            flattened.extend(shard_results)
        return flattened

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
