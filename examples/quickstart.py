#!/usr/bin/env python3
"""Quickstart: characterize a CPU's PDN from EM emanations alone.

Walks the paper's whole methodology on the simulated Juno board's
Cortex-A72 cluster in a few minutes:

1. Sweep a hand-written high/low loop across CPU clocks to find the
   first-order PDN resonance from the EM spike (Section 5.3).
2. Run an EM-amplitude-driven GA to generate a dI/dt virus (Section 5.1).
3. Validate against the on-chip scope: the virus's voltage droop and
   the EM amplitude rose together, and the dominant frequency sits on
   the resonance.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EMCharacterizer, ResonanceSweep, VirusGenerator
from repro import make_juno_board
from repro.ga import GAConfig
from repro.obs import RunContext
from repro.instruments.spectrum_analyzer import (
    SpectrumAnalyzer,
    watts_to_dbm,
)


def main() -> None:
    juno = make_juno_board()
    a72 = juno.a72
    characterizer = EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(42)),
        samples=10,
    )

    # ------------------------------------------------------------------
    # 1. Fast resonance detection: sweep the CPU clock, watch the spike.
    # ------------------------------------------------------------------
    print("== Fast EM resonance sweep (Section 5.3) ==")
    sweep = ResonanceSweep(characterizer, samples_per_point=5)
    clocks = [1.2e9 - k * 20e6 for k in range(0, 54)]
    result = sweep.run(RunContext(cluster=a72), clocks_hz=clocks)
    print(
        f"  Cortex-A72, both cores powered: resonance at "
        f"{result.resonance_hz() / 1e6:.1f} MHz "
        f"(paper: 66-72 MHz band, EM sweep peak ~70 MHz)"
    )

    # ------------------------------------------------------------------
    # 2. EM-driven GA virus generation.
    # ------------------------------------------------------------------
    print("== EM-amplitude-driven GA (Section 5.1) ==")
    generator = VirusGenerator(
        a72,
        characterizer,
        config=GAConfig(
            population_size=30, generations=25, loop_length=50, seed=1
        ),
    )

    def report(record):
        if record.generation % 5 == 0:
            dbm = float(watts_to_dbm(np.array(record.best.score)))
            print(
                f"  gen {record.generation:3d}: best EM amplitude "
                f"{dbm:6.1f} dBm, droop "
                f"{record.best.max_droop_v * 1e3:5.1f} mV, dominant "
                f"{record.best.dominant_frequency_hz / 1e6:5.1f} MHz"
            )

    summary = generator.generate_em_virus(progress=report)
    print(
        f"  final virus: dominant {summary.dominant_frequency_hz / 1e6:.1f}"
        f" MHz, droop {summary.max_droop_v * 1e3:.1f} mV, "
        f"IPC {summary.ipc:.2f}, loop frequency "
        f"{summary.loop_frequency_hz / 1e6:.1f} MHz"
    )

    # ------------------------------------------------------------------
    # 3. Validate with the OC-DSO (only the A72 has one).
    # ------------------------------------------------------------------
    print("== OC-DSO validation (Section 5.1) ==")
    run = a72.run(summary.virus)
    capture = juno.oc_dso.capture(run.response, duration_s=4e-6)
    print(
        f"  OC-DSO measured droop {capture.max_droop() * 1e3:.1f} mV, "
        f"FFT dominant {capture.dominant_frequency_hz((50e6, 200e6)) / 1e6:.1f} MHz"
    )
    print("  -> EM-driven search found the resonance without touching the rail.")

    print()
    print("Virus loop body (first 10 instructions):")
    for line in summary.virus.assembly().splitlines()[1:11]:
        print("   ", line)


if __name__ == "__main__":
    main()
