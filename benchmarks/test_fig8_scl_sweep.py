"""Figure 8: SCL square-wave sweep reveals the A72 PDN resonance.

Paper: peak-to-peak rail oscillation vs SCL frequency peaks at
66-72 MHz with both cores powered (C0C1) and 80-86 MHz with one (C0).
"""

import numpy as np

from benchmarks.conftest import print_header


def test_fig8_scl_resonance_sweep(benchmark, juno_board):
    a72 = juno_board.a72
    a72.reset()
    freqs = np.arange(50e6, 121e6, 1e6)

    def regenerate():
        two = juno_board.scl.sweep(a72.pdn.solver(2), freqs)
        one = juno_board.scl.sweep(a72.pdn.solver(1), freqs)
        return two, one

    two, one = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 8: SCL frequency sweep on the Cortex-A72 rail")
    print(f"{'f_SCL':>8} {'p2p C0C1':>12} {'p2p C0':>12}")
    for i in range(0, freqs.size, 5):
        print(
            f"{freqs[i] / 1e6:>5.0f} MHz "
            f"{two.peak_to_peak_v[i] * 1e3:>9.1f} mV "
            f"{one.peak_to_peak_v[i] * 1e3:>9.1f} mV"
        )
    res2, res1 = two.resonance_hz(), one.resonance_hz()
    print(
        f"  C0C1 resonance {res2 / 1e6:.0f} MHz (paper: 66-72 MHz); "
        f"C0 resonance {res1 / 1e6:.0f} MHz (paper: 80-86 MHz)"
    )
    assert 63e6 <= res2 <= 72e6
    assert 78e6 <= res1 <= 88e6
    # relatively flat response around resonance (the paper's comment)
    near = np.abs(freqs - res2) <= 3e6
    assert two.peak_to_peak_v[near].min() > 0.8 * two.peak_to_peak_v.max()
