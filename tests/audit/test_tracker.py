"""Runtime layer: shadow recompute, draw ledger, typed violations."""

import dataclasses

import numpy as np
import pytest

from repro.audit import (
    AuditViolation,
    CacheShadowMismatch,
    DeterminismTracker,
    RngLedgerViolation,
    bitwise_equal,
)
from repro.chain.path import SignalPath
from repro.chain.session import SimulationSession
from repro.chain.types import ChainItem, ChainRequest
from repro.faults.errors import FaultError
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.events import EventLog, MemorySink
from repro.workloads.loops import high_low_program


def paranoid_tracker(**kwargs) -> DeterminismTracker:
    """A tracker that checks every single cache hit."""
    kwargs.setdefault("sample_rate", 1.0)
    return DeterminismTracker(**kwargs)


def audited_chain(cluster, tracker, seed=1234):
    session = SimulationSession(audit=tracker)
    analyzer = SpectrumAnalyzer(rng=np.random.default_rng(seed))
    from repro.em.radiation import DieRadiator

    path = SignalPath.em_chain(
        DieRadiator(), analyzer, session=session
    )
    return path, analyzer


# ---------------------------------------------------------------------------
# bitwise_equal
# ---------------------------------------------------------------------------
class TestBitwiseEqual:
    def test_arrays(self):
        a = np.array([1.0, 2.0, np.nan])
        assert bitwise_equal(a, a.copy())
        assert not bitwise_equal(a, a.astype(np.float32))
        assert not bitwise_equal(a, np.array([1.0, 2.0, 3.0]))

    def test_float_bits_not_value(self):
        assert bitwise_equal(float("nan"), float("nan"))
        assert not bitwise_equal(0.0, -0.0)

    def test_nested_containers(self):
        assert bitwise_equal((1, [np.arange(3)]), (1, [np.arange(3)]))
        assert not bitwise_equal((1, [np.arange(3)]), (1, [np.arange(4)]))

    def test_dataclasses(self):
        @dataclasses.dataclass
        class Box:
            data: np.ndarray
            label: str

        a = Box(np.arange(4.0), "x")
        assert bitwise_equal(a, Box(np.arange(4.0), "x"))
        assert not bitwise_equal(a, Box(np.arange(4.0), "y"))


# ---------------------------------------------------------------------------
# shadow recompute
# ---------------------------------------------------------------------------
class TestShadowRecompute:
    def test_clean_hits_pass(self, a53):
        tracker = paranoid_tracker()
        session = SimulationSession(audit=tracker)
        program = high_low_program(a53.spec.isa)
        for _ in range(3):
            session.execution(
                a53, program, active_cores=1, clock_hz=a53.clock_hz
            )
        assert tracker.stats.shadow_checks["executions"] == 2
        assert tracker.stats.violations == 0

    def test_corrupted_execution_entry_caught(self, a53):
        tracker = paranoid_tracker()
        session = SimulationSession(audit=tracker)
        program = high_low_program(a53.spec.isa)
        first = session.execution(
            a53, program, active_cores=1, clock_hz=a53.clock_hz
        )
        (key,) = session._executions
        corrupted = dataclasses.replace(
            first, load_current=first.load_current * 1.5
        )
        session._executions[key] = corrupted
        with pytest.raises(CacheShadowMismatch):
            session.execution(
                a53, program, active_cores=1, clock_hz=a53.clock_hz
            )

    def test_corrupted_state_snapshot_caught(self, a53):
        tracker = paranoid_tracker()
        session = SimulationSession(audit=tracker)
        session.cluster_state(a53)
        version, state = session._cluster_states[a53.uid]
        session._cluster_states[a53.uid] = (
            version,
            state._replace(voltage=state.voltage + 0.1),
        )
        with pytest.raises(CacheShadowMismatch):
            session.cluster_state(a53)

    def test_sampling_respects_rate_zero(self, a53):
        tracker = paranoid_tracker(sample_rate=0.0)
        session = SimulationSession(audit=tracker)
        program = high_low_program(a53.spec.isa)
        session.execution(a53, program, active_cores=1, clock_hz=a53.clock_hz)
        (key,) = session._executions
        session._executions[key] = dataclasses.replace(
            session._executions[key],
            load_current=session._executions[key].load_current + 1.0,
        )
        # rate 0 never recomputes, so the corruption goes unnoticed.
        session.execution(a53, program, active_cores=1, clock_hz=a53.clock_hz)
        assert tracker.stats.shadow_checks == {}

    def test_violation_emits_event(self, a53):
        sink = MemorySink()
        tracker = paranoid_tracker(event_log=EventLog([sink]))
        session = SimulationSession(audit=tracker)
        session.cluster_state(a53)
        version, state = session._cluster_states[a53.uid]
        session._cluster_states[a53.uid] = (
            version,
            state._replace(clock_hz=state.clock_hz * 2),
        )
        with pytest.raises(CacheShadowMismatch):
            session.cluster_state(a53)
        events = [r for r in sink.records if r["event"] == "audit_violation"]
        assert len(events) == 1
        assert events[0]["kind"] == "cache_shadow_mismatch"
        assert events[0]["site"] == "session.cluster_states"


# ---------------------------------------------------------------------------
# RNG draw ledger
# ---------------------------------------------------------------------------
class TestDrawLedger:
    def request(self, cluster, **kwargs):
        program = high_low_program(cluster.spec.isa)
        kwargs.setdefault("samples", 3)
        return ChainRequest(
            cluster=cluster, items=[ChainItem(program=program)], **kwargs
        )

    def test_clean_chain_passes_replay(self, a53):
        tracker = paranoid_tracker()
        path, _ = audited_chain(a53, tracker)
        path.run(self.request(a53))
        assert tracker.stats.ledger_stages == 6
        assert tracker.stats.ledger_replays == 1
        assert tracker.stats.violations == 0

    def test_unentitled_stage_draining_caught(self, a53):
        tracker = paranoid_tracker()
        path, analyzer = audited_chain(a53, tracker)

        class RogueStage:
            name = "rogue"
            drains = ()

            def run(self, batch):
                analyzer.rng.standard_normal(4)

        path.stages.insert(2, RogueStage())
        with pytest.raises(RngLedgerViolation, match="rogue"):
            path.run(self.request(a53))

    def test_over_draining_receive_caught(self, a53):
        tracker = paranoid_tracker()
        path, analyzer = audited_chain(a53, tracker)
        receive = path.stages[-1]

        class GreedyReceive:
            name = "receive"
            drains = ("analyzer",)

            def run(self, batch):
                receive.run(batch)
                analyzer.rng.standard_normal(1)  # one draw too many

        path.stages[-1] = GreedyReceive()
        with pytest.raises(RngLedgerViolation, match="contract"):
            path.run(self.request(a53))

    def test_under_draining_receive_caught(self, a53):
        tracker = paranoid_tracker()
        path, analyzer = audited_chain(a53, tracker)

        class LazyReceive:
            name = "receive"
            drains = ("analyzer",)

            def run(self, batch):
                pass  # contracted draws never happen

        path.stages[-1] = LazyReceive()
        with pytest.raises(RngLedgerViolation):
            path.run(self.request(a53))

    def test_ledger_can_be_disabled(self, a53):
        tracker = paranoid_tracker(ledger=False)
        path, analyzer = audited_chain(a53, tracker)

        class RogueStage:
            name = "rogue"
            drains = ()

            def run(self, batch):
                analyzer.rng.standard_normal(4)

        path.stages.insert(2, RogueStage())
        path.run(self.request(a53))  # no ledger, no violation
        assert tracker.stats.ledger_stages == 0


# ---------------------------------------------------------------------------
# violation typing + summary
# ---------------------------------------------------------------------------
class TestViolationContract:
    def test_violations_are_not_fault_errors(self):
        # The retry/quarantine machinery keys on FaultError; an audit
        # violation is a simulator bug and must never be retried away.
        assert not issubclass(AuditViolation, FaultError)
        assert not issubclass(CacheShadowMismatch, FaultError)
        assert not issubclass(RngLedgerViolation, FaultError)

    def test_violation_carries_site(self):
        err = RngLedgerViolation("boom", site="chain.receive")
        assert err.site == "chain.receive"
        assert isinstance(err, AuditViolation)

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            DeterminismTracker(sample_rate=1.5)

    def test_summary_event(self):
        sink = MemorySink()
        tracker = paranoid_tracker()
        tracker.emit_summary(EventLog([sink]))
        (record,) = sink.records
        assert record["event"] == "audit_summary"
        assert record["violations"] == 0
        assert "shadow_checks" in record
