"""Island-model GA determinism suite.

Pins the distribution contract of :mod:`repro.ga.islands`:

* same seed => byte-identical histories for islands in {1, 2, 4};
* migration off => every island bit-identical to an independent
  seeded :class:`GAEngine` run;
* worker pools don't change results (workers=2 == workers=1);
* checkpoint/resume across migration boundaries is bit-identical;
* a crashed island recovers from its checkpoint and the campaign
  stays byte-identical to a fault-free run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.faults.errors import FaultError
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.islands import (
    IslandConfig,
    IslandGAEngine,
    island_population_sizes,
    island_seed,
    load_island_checkpoint,
    save_island_checkpoint,
    segment_ends,
)
from repro.ga.topology import TOPOLOGIES, migrate, migration_links
from repro.obs.events import EventLog, MemorySink

from tests.ga.test_checkpoint import (
    GenomeHashFitness,
    NoisyFitness,
    _isa,
)


@pytest.fixture(scope="module")
def isa():
    return _isa()


CONFIG = GAConfig(
    population_size=12, generations=6, loop_length=5, seed=42
)


def _histories(result):
    """Fully comparable per-island history fingerprints."""
    return [
        [
            (
                r.generation,
                r.best.score,
                r.mean_score,
                r.best_program.genome(),
                r.best_program.name,
            )
            for r in island.history
        ]
        for island in result.results
    ]


# ----------------------------------------------------------------------
# topology unit tests
# ----------------------------------------------------------------------
class TestTopology:
    def test_ring_links(self):
        assert migration_links(3, "ring") == ((0, 1), (1, 2), (2, 0))

    def test_star_links(self):
        assert migration_links(3, "star") == (
            (0, 1),
            (0, 2),
            (1, 0),
            (2, 0),
        )

    def test_all_to_all_links(self):
        links = migration_links(3, "all-to-all")
        assert len(links) == 6
        assert len(set(links)) == 6

    def test_single_island_has_no_links(self):
        for topology in TOPOLOGIES:
            assert migration_links(1, topology) == ()

    def test_exclusion_rebuilds_topology_over_alive_subset(self):
        # With island 1 down, the ring closes over {0, 2}.
        assert migration_links(3, "ring", frozenset({1})) == (
            (0, 2),
            (2, 0),
        )
        # With the hub down, the star re-elects the lowest alive.
        assert migration_links(3, "star", frozenset({0})) == (
            (1, 2),
            (2, 1),
        )

    def test_exclusion_leaves_links_balanced(self):
        for topology in TOPOLOGIES:
            links = migration_links(5, topology, frozenset({2}))
            outs = {}
            ins = {}
            for s, d in links:
                outs[s] = outs.get(s, 0) + 1
                ins[d] = ins.get(d, 0) + 1
            assert outs == ins
            assert 2 not in outs and 2 not in ins

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            migration_links(2, "mesh")

    def test_migrate_is_an_exchange(self):
        populations = [["a0", "a1", "a2"], ["b0", "b1"], ["c0", "c1"]]
        links = migration_links(3, "ring")
        exchanged = migrate(populations, links)
        # Sizes conserved, champions moved along the ring, immigrants
        # land at the front.
        assert [len(p) for p in exchanged] == [3, 2, 2]
        assert exchanged[1][0] == "a0"
        assert exchanged[2][0] == "b0"
        assert exchanged[0][0] == "c0"
        flat = sorted(x for p in exchanged for x in p)
        assert flat == sorted(x for p in populations for x in p)

    def test_migrate_rejects_unbalanced_links(self):
        with pytest.raises(ValueError, match="unbalanced"):
            migrate([["a"], ["b"]], [(0, 1)])

    def test_migrate_rejects_oversubscribed_source(self):
        links = [(0, 1), (0, 2), (1, 0), (2, 0)]
        with pytest.raises(ValueError, match="emigrants"):
            migrate([["a"], ["b", "x"], ["c", "y"]], links)


# ----------------------------------------------------------------------
# seeding / sizing helpers
# ----------------------------------------------------------------------
class TestDerivation:
    def test_island_zero_keeps_campaign_seed(self):
        assert island_seed(7, 0) == 7

    def test_island_seeds_are_decorrelated_and_stable(self):
        seeds = [island_seed(7, i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [island_seed(7, i) for i in range(4)]

    def test_population_split_larger_first(self):
        assert island_population_sizes(12, 4) == (3, 3, 3, 3)
        assert island_population_sizes(13, 4) == (4, 3, 3, 3)

    def test_population_split_rejects_starved_islands(self):
        with pytest.raises(ValueError, match="cannot be split"):
            island_population_sizes(5, 4)

    def test_segment_ends_are_horizon_independent(self):
        assert segment_ends(0, 6, 2) == [2, 4, 6]
        assert segment_ends(3, 6, 2) == [4, 6]
        assert segment_ends(0, 6, None) == [6]
        assert segment_ends(0, 5, 2) == [2, 4, 5]


# ----------------------------------------------------------------------
# determinism suite
# ----------------------------------------------------------------------
class TestIslandDeterminism:
    @pytest.mark.parametrize("islands", [1, 2, 4])
    def test_same_seed_byte_identical(self, isa, islands):
        icfg = IslandConfig(islands=islands, migration_interval=2)
        first = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(isa)
        second = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(isa)
        assert _histories(first) == _histories(second)

    def test_single_island_equals_plain_engine(self, isa):
        plain = GAEngine(GenomeHashFitness(), config=CONFIG).run(isa)
        island = IslandGAEngine(
            GenomeHashFitness(),
            CONFIG,
            IslandConfig(islands=1, migration_interval=None),
        ).run(isa)
        np.testing.assert_array_equal(
            plain.score_series(), island.results[0].score_series()
        )
        assert (
            plain.best_program.genome()
            == island.best_program.genome()
        )

    @pytest.mark.parametrize("islands", [2, 4])
    def test_migration_off_equals_independent_runs(self, isa, islands):
        sizes = island_population_sizes(
            CONFIG.population_size, islands
        )
        result = IslandGAEngine(
            NoisyFitness(),
            CONFIG,
            IslandConfig(islands=islands, migration_interval=None),
        ).run(isa)
        for i in range(islands):
            independent = GAEngine(
                NoisyFitness(),
                config=replace(
                    CONFIG,
                    population_size=sizes[i],
                    seed=island_seed(CONFIG.seed, i),
                ),
            ).run(isa)
            np.testing.assert_array_equal(
                independent.score_series(),
                result.results[i].score_series(),
            )
            assert independent.evaluations == (
                result.results[i].evaluations
            )

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_topologies_reproducible_and_conserving(self, isa, topology):
        icfg = IslandConfig(
            islands=3, topology=topology, migration_interval=2
        )
        first = IslandGAEngine(GenomeHashFitness(), CONFIG, icfg).run(
            isa
        )
        second = IslandGAEngine(GenomeHashFitness(), CONFIG, icfg).run(
            isa
        )
        assert _histories(first) == _histories(second)
        assert [len(r.history) for r in first.results] == [
            CONFIG.generations
        ] * 3

    def test_sequential_matches_concurrent(self, isa):
        base = IslandConfig(islands=3, migration_interval=2)
        threaded = IslandGAEngine(NoisyFitness(), CONFIG, base).run(isa)
        sequential = IslandGAEngine(
            NoisyFitness(), CONFIG, replace(base, concurrent=False)
        ).run(isa)
        assert _histories(threaded) == _histories(sequential)

    def test_workers_do_not_change_results(self, isa):
        from tests.ga.test_parallel import PureFitness

        icfg = IslandConfig(islands=2, migration_interval=1)
        serial = IslandGAEngine(
            PureFitness(),
            replace(CONFIG, population_size=8, generations=3),
            icfg,
        ).run(isa)
        parallel = IslandGAEngine(
            PureFitness(),
            replace(
                CONFIG, population_size=8, generations=3, workers=2
            ),
            icfg,
        ).run(isa)
        assert _histories(serial) == _histories(parallel)


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestIslandCheckpointResume:
    @pytest.mark.parametrize("truncate_at", [3, 4, 5])
    def test_resume_bit_identical(self, isa, tmp_path, truncate_at):
        icfg = IslandConfig(islands=2, migration_interval=2)
        full = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(isa)
        directory = tmp_path / f"trunc{truncate_at}"
        IslandGAEngine(
            NoisyFitness(),
            replace(CONFIG, generations=truncate_at),
            icfg,
        ).run(isa, checkpoint_dir=directory, checkpoint_every=1)
        resumed = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(
            isa, resume=load_island_checkpoint(directory)
        )
        assert _histories(resumed) == _histories(full)

    def test_checkpoint_round_trip(self, isa, tmp_path):
        icfg = IslandConfig(islands=2, migration_interval=2)
        IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(
            isa, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        loaded = load_island_checkpoint(tmp_path)
        assert loaded.island_config.islands == 2
        assert loaded.island_config.migration_interval == 2
        assert len(loaded.checkpoints) == 2
        assert loaded.generation == CONFIG.generations
        # Re-saving the loaded state reproduces the same files.
        out = tmp_path / "resaved"
        save_island_checkpoint(loaded, out)
        again = load_island_checkpoint(out)
        assert [c.generation for c in again.checkpoints] == [
            c.generation for c in loaded.checkpoints
        ]

    def test_resume_rejects_mismatched_distribution(self, isa, tmp_path):
        icfg = IslandConfig(islands=2, migration_interval=2)
        IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(
            isa, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        loaded = load_island_checkpoint(tmp_path)
        other = IslandConfig(islands=2, migration_interval=3)
        with pytest.raises(ValueError, match="does not match"):
            IslandGAEngine(NoisyFitness(), CONFIG, other).run(
                isa, resume=loaded
            )


# ----------------------------------------------------------------------
# crash -> recover
# ----------------------------------------------------------------------
class TestIslandRecovery:
    def test_crash_recover_byte_identical(self, isa, tmp_path):
        icfg = IslandConfig(islands=2, migration_interval=2)
        clean = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(isa)
        # Kill island 1 at its second segment attempt; the engine must
        # restore it from checkpoint state and continue unchanged.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="island.1.segment",
                    kind="worker_crash",
                    at_visit=1,
                ),
            )
        )
        sink = MemorySink()
        crashed = IslandGAEngine(
            NoisyFitness(),
            CONFIG,
            icfg,
            fault_injector=FaultInjector(plan),
        ).run(
            isa,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            event_log=EventLog([sink]),
        )
        recoveries = sink.events("island_recovered")
        assert len(recoveries) == 1
        assert recoveries[0]["island"] == 1
        assert recoveries[0]["generation"] == 2
        assert _histories(crashed) == _histories(clean)

    def test_mid_segment_crash_recovers_from_disk(self, isa, tmp_path):
        """A fault after an intra-segment periodic save resumes from
        the rotated disk checkpoint, not the boundary state."""
        icfg = IslandConfig(islands=2, migration_interval=3)
        clean = IslandGAEngine(NoisyFitness(), CONFIG, icfg).run(isa)
        # Each island saves every generation; its second save (gen 2,
        # inside the first segment) dies before touching the disk, so
        # the newest surviving state is the gen-1 rotated file -- newer
        # than the (empty) segment-boundary state.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="checkpoint.save",
                    kind="stage_timeout",
                    at_visit=1,
                ),
            )
        )
        sink = MemorySink()
        crashed = IslandGAEngine(
            NoisyFitness(),
            CONFIG,
            icfg,
            fault_injector=FaultInjector(plan),
        ).run(
            isa,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            event_log=EventLog([sink]),
        )
        recoveries = sink.events("island_recovered")
        # Both islands carry the same plan replica, so both hit it.
        assert {r["island"] for r in recoveries} == {0, 1}
        assert all(
            r["source"] == "disk-checkpoint" for r in recoveries
        )
        assert _histories(crashed) == _histories(clean)

    def test_restart_budget_exhaustion_raises(self, isa):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="island.0.segment",
                    kind="worker_crash",
                    at_visit=0,
                    times=10,
                ),
            )
        )
        engine = IslandGAEngine(
            GenomeHashFitness(),
            CONFIG,
            IslandConfig(
                islands=2,
                migration_interval=None,
                max_island_restarts=1,
            ),
            fault_injector=FaultInjector(plan),
        )
        with pytest.raises(FaultError):
            engine.run(isa)

    def test_migration_events_emitted(self, isa):
        sink = MemorySink()
        IslandGAEngine(
            GenomeHashFitness(),
            CONFIG,
            IslandConfig(islands=2, migration_interval=2),
        ).run(isa, event_log=EventLog([sink]))
        starts = sink.events("migration_start")
        ends = sink.events("migration_end")
        assert [e["generation"] for e in starts] == [2, 4, 6]
        assert len(starts) == len(ends)
        assert starts[0]["links"] == [[0, 1], [1, 0]]
        assert sink.events("island_run_start")
        assert sink.events("island_run_end")
        # Per-island telemetry is attributable through the island tag.
        islands_seen = {
            e["island"] for e in sink.events("generation_end")
        }
        assert islands_seen == {0, 1}


# ----------------------------------------------------------------------
# tie-breaks across merged island histories
# ----------------------------------------------------------------------
class TestBestTieBreaks:
    def test_ga_result_best_breaks_ties_to_earliest_generation(
        self, isa
    ):
        from repro.ga.engine import GAResult

        history = [
            _record(isa, 0, 0.5),
            _record(isa, 1, 0.9),
            _record(isa, 2, 0.9),
        ]
        result = GAResult(
            config=CONFIG, history=history, evaluations=0
        )
        assert result.best.generation == 1

    def test_merged_ties_break_across_islands(self, isa):
        """Two islands with an equal-score generation: the merged
        history and the campaign best must both pick the lower
        island's record."""
        from repro.ga.engine import GAResult
        from repro.ga.islands import IslandGAResult

        histories = [
            [
                _record(isa, 0, 0.3, name="i0g0"),
                _record(isa, 1, 0.9, name="i0g1"),
            ],
            [
                _record(isa, 0, 0.9, name="i1g0"),
                _record(isa, 1, 0.2, name="i1g1"),
            ],
        ]
        results = tuple(
            GAResult(config=CONFIG, history=h, evaluations=0)
            for h in histories
        )
        outcome = IslandGAResult(
            config=CONFIG,
            island_config=IslandConfig(islands=2),
            results=results,
        )
        # Earliest generation wins across islands (gen 0 of island 1
        # vs gen 1 of island 0)...
        assert outcome.best_island == 1
        assert outcome.best.generation == 0
        merged = outcome.merged()
        # ...and per-generation merge prefers the lower island on ties.
        assert merged.history[0].best_program.name == "i1g0"
        assert merged.history[1].best_program.name == "i0g1"
        assert merged.best.generation == 0
        assert merged.best.best_program.name == "i1g0"

    def test_equal_scores_same_generation_pick_lowest_island(self, isa):
        from repro.ga.engine import GAResult
        from repro.ga.islands import IslandGAResult

        histories = [
            [_record(isa, 0, 0.7, name="a")],
            [_record(isa, 0, 0.7, name="b")],
        ]
        results = tuple(
            GAResult(config=CONFIG, history=h, evaluations=0)
            for h in histories
        )
        outcome = IslandGAResult(
            config=CONFIG,
            island_config=IslandConfig(islands=2),
            results=results,
        )
        assert outcome.best_island == 0
        assert outcome.merged().history[0].best_program.name == "a"


def _record(isa, generation, score, name="prog"):
    """A minimal GenerationRecord for tie-break unit tests."""
    from repro.cpu.program import random_program
    from repro.ga.engine import GenerationRecord
    from repro.ga.fitness import FitnessEvaluation

    program = random_program(
        isa, 1, np.random.default_rng(0), name=name
    )
    return GenerationRecord(
        generation=generation,
        best_program=program,
        best=FitnessEvaluation(
            score=score,
            dominant_frequency_hz=1e8,
            max_droop_v=0.01,
            peak_to_peak_v=0.02,
            ipc=1.0,
            loop_frequency_hz=1e7,
        ),
        mean_score=score,
    )
