"""Unit tests for the GA engine (synthetic fitness, no hardware model)."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import InstructionClass
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation


def make_fitness(score_fn):
    """Wrap a program->float function into the evaluation record."""

    calls = {"count": 0}

    def fitness(program):
        calls["count"] += 1
        return FitnessEvaluation(
            score=score_fn(program),
            dominant_frequency_hz=0.0,
            max_droop_v=0.0,
            peak_to_peak_v=0.0,
            ipc=1.0,
            loop_frequency_hz=1.0,
        )

    return fitness, calls


def count_class(program, iclass):
    return sum(1 for i in program.body if i.spec.iclass is iclass)


class TestConfigValidation:
    def test_bad_population(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)

    def test_bad_mutation_rate(self):
        with pytest.raises(ValueError):
            GAConfig(mutation_rate=2.0)

    def test_bad_elitism(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=10, elitism=10)


class TestOptimization:
    def test_ga_maximizes_simple_objective(self):
        """The GA should discover loops dominated by SIMD instructions."""
        fitness, _ = make_fitness(
            lambda p: count_class(p, InstructionClass.SIMD)
        )
        config = GAConfig(
            population_size=20, generations=20, loop_length=30, seed=1
        )
        result = GAEngine(fitness, config).run(ARM_ISA)
        first = result.history[0].best.score
        last = result.history[-1].best.score
        assert last > first
        assert last >= 0.5 * 30  # most of the loop became SIMD

    def test_history_monotonic_with_elitism(self):
        fitness, _ = make_fitness(
            lambda p: count_class(p, InstructionClass.FLOAT)
        )
        config = GAConfig(
            population_size=16, generations=15, loop_length=20,
            elitism=2, seed=3,
        )
        result = GAEngine(fitness, config).run(ARM_ISA)
        scores = result.score_series()
        assert all(b >= a for a, b in zip(scores, scores[1:]))

    def test_deterministic_under_seed(self):
        fitness_a, _ = make_fitness(lambda p: len(set(p.genome())))
        fitness_b, _ = make_fitness(lambda p: len(set(p.genome())))
        config = GAConfig(
            population_size=10, generations=5, loop_length=15, seed=11
        )
        ra = GAEngine(fitness_a, config).run(ARM_ISA)
        rb = GAEngine(fitness_b, config).run(ARM_ISA)
        assert ra.best_program.genome() == rb.best_program.genome()

    def test_different_seeds_differ(self):
        fitness, _ = make_fitness(lambda p: hash(p.genome()) % 1000)
        ra = GAEngine(
            fitness, GAConfig(population_size=10, generations=3, seed=1)
        ).run(ARM_ISA)
        rb = GAEngine(
            fitness, GAConfig(population_size=10, generations=3, seed=2)
        ).run(ARM_ISA)
        assert ra.best_program.genome() != rb.best_program.genome()


class TestMemoization:
    def test_cache_avoids_reevaluation(self):
        fitness, calls = make_fitness(
            lambda p: count_class(p, InstructionClass.SIMD)
        )
        config = GAConfig(
            population_size=16, generations=10, loop_length=20, seed=5
        )
        engine = GAEngine(fitness, config)
        result = engine.run(ARM_ISA)
        # elitist clones and converged duplicates hit the cache
        assert calls["count"] < 16 * 10
        assert calls["count"] == result.evaluations
        assert engine.cache_size == result.evaluations


class TestInitialPopulation:
    def test_resume_from_population(self):
        fitness, _ = make_fitness(lambda p: 1.0)
        config = GAConfig(
            population_size=8, generations=2, loop_length=10, seed=7
        )
        from repro.cpu.program import random_program

        rng = np.random.default_rng(0)
        seedpop = [random_program(ARM_ISA, 10, rng) for _ in range(8)]
        result = GAEngine(fitness, config).run(
            ARM_ISA, initial_population=seedpop
        )
        assert result.history[0].best_program in seedpop

    def test_wrong_population_size_rejected(self):
        fitness, _ = make_fitness(lambda p: 1.0)
        config = GAConfig(population_size=8, generations=2)
        from repro.cpu.program import random_program

        seedpop = [
            random_program(ARM_ISA, 50, np.random.default_rng(0))
        ]
        with pytest.raises(ValueError):
            GAEngine(fitness, config).run(
                ARM_ISA, initial_population=seedpop
            )


class TestProgressAndSeries:
    def test_progress_callback_called_per_generation(self):
        fitness, _ = make_fitness(lambda p: 1.0)
        config = GAConfig(population_size=8, generations=6, seed=2)
        seen = []
        GAEngine(fitness, config).run(
            ARM_ISA, progress=lambda rec: seen.append(rec.generation)
        )
        assert seen == list(range(6))

    def test_series_lengths(self):
        fitness, _ = make_fitness(lambda p: 2.0)
        config = GAConfig(population_size=8, generations=4, seed=2)
        result = GAEngine(fitness, config).run(ARM_ISA)
        assert result.score_series().shape == (4,)
        assert result.droop_series().shape == (4,)
        assert result.dominant_frequency_series().shape == (4,)


class TestMemoizeFlag:
    def test_memoize_off_reevaluates_clones(self):
        calls = {"count": 0}

        def fitness(program):
            calls["count"] += 1
            return FitnessEvaluation(
                score=1.0,
                dominant_frequency_hz=0.0,
                max_droop_v=0.0,
                peak_to_peak_v=0.0,
                ipc=1.0,
                loop_frequency_hz=1.0,
            )

        config = GAConfig(
            population_size=10, generations=6, loop_length=10, seed=8,
            elitism=2,
        )
        engine = GAEngine(fitness, config, memoize=False)
        engine.run(ARM_ISA)
        # every individual of every generation was measured afresh
        assert calls["count"] == 10 * 6
        assert engine.cache_size == 0
