"""Extension: PDN tamper detection via resonance drift (Section 10 (a)).

The paper proposes on-the-fly PDN characterization for tampering
detection.  Enroll a golden Cortex-A72 unit's resonance fingerprint,
then screen: pristine clones must pass, units with altered power
delivery (implant capacitance, interposer inductance) must be flagged.
"""

import dataclasses

import numpy as np

from repro.core.resonance import ResonanceSweep
from repro.core.tamper import TamperDetector
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.pdn.models import scaled
from repro.platforms.base import Cluster
from repro.platforms.juno import A72_SPEC, A72_UNITS

from benchmarks.conftest import paper_characterizer, print_header

CLOCKS = [1.2e9 - k * 20e6 for k in range(0, 54)]


def unit(pdn_params=None):
    spec = A72_SPEC
    if pdn_params is not None:
        spec = dataclasses.replace(spec, pdn_params=pdn_params)
    return Cluster(
        spec,
        OutOfOrderPipeline(
            width=3, window=48, rob_size=128, unit_counts=A72_UNITS
        ),
    )


def test_ext_tamper_screening(benchmark):
    detector = TamperDetector(
        ResonanceSweep(paper_characterizer(81), samples_per_point=4),
        tolerance=0.06,
    )

    def run_screening():
        golden = detector.enroll(unit(), clocks_hz=CLOCKS)
        cases = {
            "pristine clone": unit(),
            "+40% rail capacitance (implant)": unit(
                scaled(
                    A72_SPEC.pdn_params,
                    c_die_base=A72_SPEC.pdn_params.c_die_base * 1.4,
                    c_die_per_core=(
                        A72_SPEC.pdn_params.c_die_per_core * 1.4
                    ),
                )
            ),
            "2x package inductance (interposer)": unit(
                scaled(
                    A72_SPEC.pdn_params,
                    l_pkg=A72_SPEC.pdn_params.l_pkg * 2.0,
                )
            ),
        }
        verdicts = {
            name: detector.check(dut, golden, clocks_hz=CLOCKS)
            for name, dut in cases.items()
        }
        return golden, verdicts

    golden, verdicts = benchmark.pedantic(
        run_screening, rounds=1, iterations=1
    )
    print_header("Extension: tamper screening by resonance fingerprint")
    print(
        "  golden fingerprint: "
        + ", ".join(
            f"{n} cores -> {f / 1e6:.1f} MHz"
            for n, f in sorted(golden.resonances_hz.items())
        )
    )
    for name, verdict in verdicts.items():
        flag = "TAMPERED" if verdict.tampered else "clean"
        print(
            f"  {name:<36} drift {verdict.worst_drift_fraction * 100:5.1f}%"
            f"  -> {flag}"
        )
    assert not verdicts["pristine clone"].tampered
    assert verdicts["+40% rail capacitance (implant)"].tampered
    assert verdicts["2x package inductance (interposer)"].tampered
