"""Parallel GA evaluation: determinism and graceful degradation."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import InstructionClass
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation
from repro.ga.parallel import ParallelEvaluator


class PureFitness:
    """Deterministic, stateless, picklable fitness (module level so
    worker processes can unpickle it)."""

    def __call__(self, program):
        simd = sum(
            1 for i in program.body
            if i.spec.iclass is InstructionClass.SIMD
        )
        # A float score with some structure so ties are rare.
        score = simd + 0.001 * sum(
            i.dest or 0 for i in program.body
        )
        return FitnessEvaluation(
            score=score,
            dominant_frequency_hz=float(simd),
            max_droop_v=0.0,
            peak_to_peak_v=0.0,
            ipc=1.0,
            loop_frequency_hz=1.0,
        )


def ga_config(workers):
    return GAConfig(
        population_size=12,
        generations=5,
        loop_length=20,
        seed=4,
        workers=workers,
    )


class TestConfig:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            GAConfig(workers=0)


class TestDeterminism:
    def test_workers_4_matches_workers_1(self):
        """A pure fitness gives bit-identical history at any worker
        count: same per-generation scores, winners, and evaluation
        budget."""
        serial = GAEngine(PureFitness(), ga_config(1)).run(ARM_ISA)
        parallel = GAEngine(PureFitness(), ga_config(4)).run(ARM_ISA)
        assert serial.evaluations == parallel.evaluations
        assert len(serial.history) == len(parallel.history)
        for s, p in zip(serial.history, parallel.history):
            assert s.best.score == p.best.score
            assert s.mean_score == p.mean_score
            assert s.best_program.genome() == p.best_program.genome()


class TestEvaluator:
    def test_serial_fallback_for_unpicklable_fitness(self):
        """Closures can't cross the process boundary; the evaluator
        must quietly evaluate in-process instead of crashing."""
        secret = 2.5
        ev = ParallelEvaluator(lambda p: secret, workers=4)
        assert not ev.parallel
        rng = np.random.default_rng(0)
        from repro.cpu.program import random_program

        programs = [random_program(ARM_ISA, 5, rng) for _ in range(3)]
        assert ev.evaluate(programs) == [2.5, 2.5, 2.5]

    def test_workers_1_never_spawns_a_pool(self):
        ev = ParallelEvaluator(PureFitness(), workers=1)
        assert not ev.parallel
        assert ev._pool is None

    def test_parallel_results_preserve_input_order(self):
        rng = np.random.default_rng(1)
        from repro.cpu.program import random_program

        programs = [random_program(ARM_ISA, 8, rng) for _ in range(6)]
        fitness = PureFitness()
        with ParallelEvaluator(fitness, workers=2) as ev:
            assert ev.parallel
            got = [e.score for e in ev.evaluate(programs)]
        expected = [fitness(p).score for p in programs]
        assert got == expected

    def test_unpicklable_fitness_in_engine_stays_serial(self):
        """GAEngine with workers>1 and a closure fitness still runs
        (and counts evaluations) exactly like the serial engine."""
        calls = {"n": 0}

        def fitness(program):
            calls["n"] += 1
            return FitnessEvaluation(
                score=float(len(program.body)),
                dominant_frequency_hz=0.0,
                max_droop_v=0.0,
                peak_to_peak_v=0.0,
                ipc=1.0,
                loop_frequency_hz=1.0,
            )

        cfg = GAConfig(
            population_size=8, generations=3, loop_length=10,
            seed=0, workers=4,
        )
        result = GAEngine(fitness, cfg).run(ARM_ISA)
        assert calls["n"] == result.evaluations


class _InterruptOnPickle(PureFitness):
    """Raises a non-pickling error mid-serialization."""

    exc = KeyboardInterrupt

    def __reduce__(self):
        raise self.exc()


class TestPicklingExceptionScope:
    """The payload probe may only swallow pickling failures.

    It used to catch ``Exception`` wholesale, which turned injected
    faults (and anything else a ``__reduce__`` hook raised) into a
    silent serial fallback with no traceback.
    """

    def test_keyboard_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            ParallelEvaluator(_InterruptOnPickle(), workers=2)

    def test_injected_faults_propagate_with_traceback(self):
        from repro.faults.errors import TransientFault

        class FaultOnPickle(_InterruptOnPickle):
            exc = staticmethod(
                lambda: TransientFault("injected", site="ga.payload")
            )

        with pytest.raises(TransientFault) as excinfo:
            ParallelEvaluator(FaultOnPickle(), workers=2)
        assert excinfo.value.site == "ga.payload"

    def test_plain_pickling_failure_still_falls_back(self):
        secret = 1.5
        ev = ParallelEvaluator(lambda p: secret, workers=2)
        assert not ev.parallel
