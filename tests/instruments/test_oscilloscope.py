"""Unit tests for the oscilloscope / OC-DSO model."""

import numpy as np
import pytest

from repro.instruments.oscilloscope import Oscilloscope, ScopeCapture
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


@pytest.fixture(scope="module")
def resonant_response():
    solver = PDNModel(CORTEX_A72_PDN).solver(2)
    n = 64
    wave = np.where(np.arange(n) < n // 2, 1.5, 0.5)
    return solver.solve(wave, n * 67e6)


def quiet_scope(seed=1, **kw):
    kw.setdefault("noise_rms_v", 0.0)
    kw.setdefault("resolution_bits", 16)
    return Oscilloscope(rng=np.random.default_rng(seed), **kw)


class TestCapture:
    def test_capture_length(self, resonant_response):
        scope = quiet_scope()
        cap = scope.capture(resonant_response, duration_s=1e-6)
        assert cap.times_s.size == int(1e-6 * scope.sample_rate_hz)
        assert cap.sample_rate_hz == pytest.approx(scope.sample_rate_hz)

    def test_capture_reproduces_droop(self, resonant_response):
        """Scope droop matches the solver's droop within noise/LSB."""
        scope = quiet_scope()
        cap = scope.capture(resonant_response, duration_s=2e-6)
        assert cap.max_droop() == pytest.approx(
            resonant_response.max_droop, rel=0.05
        )

    def test_capture_reproduces_p2p(self, resonant_response):
        scope = quiet_scope()
        cap = scope.capture(resonant_response, duration_s=2e-6)
        assert cap.peak_to_peak() == pytest.approx(
            resonant_response.peak_to_peak, rel=0.05
        )

    def test_quantization_steps(self, resonant_response):
        scope = Oscilloscope(
            resolution_bits=6,
            noise_rms_v=0.0,
            rng=np.random.default_rng(0),
        )
        cap = scope.capture(resonant_response, duration_s=0.5e-6)
        lsb = scope.window_v / 2**6
        offsets = (cap.volts - resonant_response.nominal_voltage) / lsb
        assert np.allclose(offsets, np.round(offsets), atol=1e-9)

    def test_noise_adds_spread(self, resonant_response):
        noisy = Oscilloscope(
            noise_rms_v=5e-3, rng=np.random.default_rng(2)
        )
        quiet = quiet_scope()
        cap_noisy = noisy.capture(resonant_response, duration_s=1e-6)
        cap_quiet = quiet.capture(resonant_response, duration_s=1e-6)
        assert cap_noisy.peak_to_peak() > cap_quiet.peak_to_peak()


class TestFFT:
    def test_dominant_frequency_matches_excitation(self, resonant_response):
        scope = quiet_scope()
        cap = scope.capture(resonant_response, duration_s=4e-6)
        dom = cap.dominant_frequency_hz((50e6, 200e6))
        assert dom == pytest.approx(67e6, rel=0.03)

    def test_band_without_bins_rejected(self, resonant_response):
        scope = quiet_scope()
        cap = scope.capture(resonant_response, duration_s=1e-6)
        with pytest.raises(ValueError):
            cap.dominant_frequency_hz((1.0, 2.0))

    def test_fft_amplitude_calibration(self):
        """A pure sine of known amplitude reads back correctly."""
        fs = 1.6e9
        t = np.arange(4096) / fs
        v = 1.0 + 0.01 * np.sin(2 * np.pi * 50e6 * t)
        cap = ScopeCapture(times_s=t, volts=v, nominal_voltage=1.0)
        freqs, amps = cap.fft()
        idx = np.argmin(np.abs(freqs - 50e6))
        window = slice(max(0, idx - 2), idx + 3)
        assert amps[window].max() == pytest.approx(0.01, rel=0.05)


class TestMeasureHelpers:
    def test_measure_wrappers(self, resonant_response):
        scope = quiet_scope()
        assert scope.measure_max_droop(resonant_response) > 0.0
        assert scope.measure_peak_to_peak(resonant_response) > 0.0

    def test_too_short_capture_rejected(self):
        cap = ScopeCapture(
            times_s=np.array([0.0]),
            volts=np.array([1.0]),
            nominal_voltage=1.0,
        )
        with pytest.raises(ValueError):
            cap.sample_rate_hz
