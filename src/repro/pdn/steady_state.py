"""Exact periodic steady-state solver for the linear PDN.

A dI/dt virus is a short instruction loop executed indefinitely, so its
load current is periodic.  For a *linear* network the periodic
steady-state response is exact in the frequency domain: decompose one
period of load current into harmonics, multiply each harmonic by the
complex AC transfer function, and superpose.

This path is orders of magnitude faster than transient integration and
is therefore used for GA fitness evaluation, where thousands of
candidate loops must be scored.  Transfer functions are cached per
(circuit, harmonic-frequency) grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.obs.timing import timed_kernel
from repro.pdn.impedance import analyze_ac
from repro.pdn.netlist import Circuit


@dataclass
class PeriodicResponse:
    """Steady-state response of the PDN to one period of load current.

    All waveforms are sampled on the same grid as the input current
    (``sample_rate_hz``, one full period).  ``die_voltage`` includes the
    nominal supply and the DC IR drop: it is the actual rail waveform an
    on-chip scope would record.
    """

    sample_rate_hz: float
    nominal_voltage: float
    die_voltage: np.ndarray
    die_current: np.ndarray
    harmonic_frequencies_hz: np.ndarray
    die_voltage_harmonics: np.ndarray
    die_current_harmonics: np.ndarray

    @property
    def period_s(self) -> float:
        return self.die_voltage.size / self.sample_rate_hz

    @property
    def max_droop(self) -> float:
        """Largest dip below the nominal supply voltage, in volts."""
        return float(self.nominal_voltage - np.min(self.die_voltage))

    @property
    def peak_to_peak(self) -> float:
        return float(np.max(self.die_voltage) - np.min(self.die_voltage))

    @property
    def min_voltage(self) -> float:
        return float(np.min(self.die_voltage))

    def voltage_spectrum(self) -> Tuple[np.ndarray, np.ndarray]:
        """(frequencies_hz, amplitude) of the AC voltage harmonics."""
        return self.harmonic_frequencies_hz, np.abs(self.die_voltage_harmonics)

    def current_spectrum(self) -> Tuple[np.ndarray, np.ndarray]:
        """(frequencies_hz, amplitude) of the AC die-current harmonics.

        These feed the EM radiation model: radiated power at each
        harmonic is proportional to the squared current amplitude.
        """
        return self.harmonic_frequencies_hz, np.abs(self.die_current_harmonics)

    def dominant_frequency_hz(
        self, band: Optional[Sequence[float]] = None
    ) -> float:
        """Frequency of the largest AC voltage harmonic (optionally banded)."""
        freqs = self.harmonic_frequencies_hz
        amps = np.abs(self.die_voltage_harmonics)
        mask = freqs > 0.0
        if band is not None:
            mask &= (freqs >= band[0]) & (freqs <= band[1])
        if not mask.any():
            raise ValueError("no harmonics inside requested band")
        idx = np.flatnonzero(mask)
        return float(freqs[idx[np.argmax(amps[idx])]])


class SteadyStateSolver:
    """Periodic steady-state analysis of a circuit's die rail.

    Parameters
    ----------
    circuit:
        PDN netlist.  Independent voltage sources supply the rail.
    die_node:
        Node where the CPU load current is drawn.
    sense_branch:
        Name of the inductor whose current represents the die feed
        current (the package inductor): its oscillation amplitude drives
        the EM radiation model.
    nominal_voltage:
        Ideal supply voltage (the voltage-source value).
    """

    def __init__(
        self,
        circuit: Circuit,
        die_node: str,
        sense_branch: str,
        nominal_voltage: float,
    ):
        self._circuit = circuit
        self._die_node = die_node
        self._sense_branch = sense_branch
        self._nominal = nominal_voltage
        self._tf_cache: Dict[
            Tuple[int, float], Tuple[np.ndarray, np.ndarray]
        ] = {}
        #: Number of fresh AC analyses this solver has performed.  The
        #: chain layer's cache-hit assertions ("at most one analysis per
        #: distinct cluster state") read this counter.
        self.tf_analyses = 0

    @property
    def nominal_voltage(self) -> float:
        return self._nominal

    def transfer_functions(
        self, n_samples: int, sample_rate_hz: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(Z(f_k), H_I(f_k)) on the rfft harmonic grid, cached."""
        key = (n_samples, sample_rate_hz)
        cached = self._tf_cache.get(key)
        if cached is not None:
            return cached
        self.tf_analyses += 1
        freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate_hz)
        # Skip DC here; the IR drop is handled separately via Z(0+).
        analysis = analyze_ac(self._circuit, self._die_node, freqs[1:])
        z = np.concatenate(
            [[0.0 + 0.0j], analysis.impedance(self._die_node)]
        )
        h_i = np.concatenate(
            [[0.0 + 0.0j], analysis.branch_currents[self._sense_branch]]
        )
        # DC transfer: resistive path for voltage, unity for current.
        dc = analyze_ac(self._circuit, self._die_node, [1.0])
        z[0] = np.real(dc.impedance(self._die_node)[0])
        h_i[0] = np.real(dc.branch_currents[self._sense_branch][0])
        # Orient the sense branch so die current follows load at DC
        # (positive mean load -> positive mean die current), regardless
        # of how the inductor's terminals were declared in the netlist.
        if h_i[0] < 0.0:
            h_i = -h_i
            h_i[0] = abs(h_i[0])
        self._tf_cache[key] = (z, h_i)
        return z, h_i

    # Backwards-compatible private alias (pre-chain name).
    _transfer_functions = transfer_functions

    @timed_kernel("pdn.steady_state.solve")
    def solve(
        self,
        load_current: np.ndarray,
        sample_rate_hz: float,
        transfer: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> PeriodicResponse:
        """Steady-state die waveforms for one period of ``load_current``.

        ``load_current`` holds instantaneous amperes drawn by the CPU at
        ``sample_rate_hz``; the waveform is treated as repeating
        indefinitely.  ``transfer`` optionally supplies a precomputed
        ``(Z, H_I)`` grid (see :meth:`transfer_functions`) so a
        session-scoped cache can bypass the solver's own.
        """
        i_load = np.asarray(load_current, dtype=float)
        if i_load.ndim != 1 or i_load.size < 2:
            raise ValueError("load_current must be a 1-D array of >= 2 samples")
        n = i_load.size
        if transfer is not None:
            z, h_i = transfer
        else:
            z, h_i = self.transfer_functions(n, sample_rate_hz)

        i_harm = np.fft.rfft(i_load)
        v_harm = -z * i_harm  # load current *drops* the rail
        i_die_harm = h_i * i_harm

        v_wave = self._nominal + np.fft.irfft(v_harm, n=n)
        i_die_wave = np.fft.irfft(i_die_harm, n=n)

        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
        scale = 2.0 / n  # single-sided amplitude for k >= 1
        v_amp = v_harm * scale
        i_amp = i_die_harm * scale
        v_amp[0] = v_harm[0] / n
        i_amp[0] = i_die_harm[0] / n
        return PeriodicResponse(
            sample_rate_hz=sample_rate_hz,
            nominal_voltage=self._nominal,
            die_voltage=v_wave,
            die_current=i_die_wave,
            harmonic_frequencies_hz=freqs,
            die_voltage_harmonics=v_amp,
            die_current_harmonics=i_amp,
        )
