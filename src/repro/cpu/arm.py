"""ARMv8-like instruction table (Section 3.3's ARM pool).

The pool deliberately spans the diversity the paper calls essential:
short-latency integer (MOV/ADD/SUB/EOR), long-latency integer
(MUL/SDIV), floating point including the long non-pipelined FDIV/FSQRT
the viruses use for stalls (Section 8.3), SIMD equivalents, explicit
loads/stores (always L1 hits) and unconditional dummy branches.

Latencies and throughputs are representative of ARMv8 cores of the
Juno era; energies are relative switching-charge units calibrated so a
dual-issue ADD burst against a DIV shadow swings cluster current by the
amperes needed to reproduce the paper's droop magnitudes.
"""

from __future__ import annotations

from repro.cpu.isa import (
    ExecutionUnit,
    InstructionClass,
    InstructionSet,
    InstructionSpec,
    RegisterFile,
)

_U = ExecutionUnit
_C = InstructionClass
_R = RegisterFile


def _spec(mnemonic, iclass, unit, latency, rt, energy, **kw) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        iclass=iclass,
        unit=unit,
        latency=latency,
        recip_throughput=rt,
        energy=energy,
        **kw,
    )


ARM_SPECS = (
    # --- short-latency integer --------------------------------------------
    _spec("mov", _C.INT_SHORT, _U.ALU, 1, 1, 0.9, num_sources=1),
    _spec("add", _C.INT_SHORT, _U.ALU, 1, 1, 1.0),
    _spec("sub", _C.INT_SHORT, _U.ALU, 1, 1, 1.0),
    _spec("eor", _C.INT_SHORT, _U.ALU, 1, 1, 1.1),
    _spec("orr", _C.INT_SHORT, _U.ALU, 1, 1, 1.0),
    # --- long-latency integer ---------------------------------------------
    _spec("mul", _C.INT_LONG, _U.MUL, 4, 1, 2.2),
    _spec("madd", _C.INT_LONG, _U.MUL, 4, 1, 2.6, num_sources=3),
    _spec("sdiv", _C.INT_LONG, _U.DIV, 8, 8, 1.4),
    _spec("udiv", _C.INT_LONG, _U.DIV, 8, 8, 1.3),
    # --- floating point -----------------------------------------------------
    _spec("fmov", _C.FLOAT, _U.FPU, 2, 1, 1.2, regfile=_R.FP, num_sources=1),
    _spec("fadd", _C.FLOAT, _U.FPU, 3, 1, 1.8, regfile=_R.FP),
    _spec("fmul", _C.FLOAT, _U.FPU, 4, 1, 2.4, regfile=_R.FP),
    _spec("fdiv", _C.FLOAT, _U.FDIV, 18, 18, 1.8, regfile=_R.FP),
    _spec("fsqrt", _C.FLOAT, _U.FDIV, 24, 24, 1.7, regfile=_R.FP, num_sources=1),
    # --- SIMD ----------------------------------------------------------------
    _spec("vadd", _C.SIMD, _U.SIMD, 3, 1, 2.8, regfile=_R.VEC),
    _spec("vmul", _C.SIMD, _U.SIMD, 4, 1, 3.4, regfile=_R.VEC),
    _spec("vfma", _C.SIMD, _U.SIMD, 4, 1, 3.8, regfile=_R.VEC, num_sources=3),
    _spec("vsqrt", _C.SIMD, _U.FDIV, 28, 28, 2.0, regfile=_R.VEC, num_sources=1),
    # --- memory (explicit load/store, always L1 hits) -----------------------
    _spec(
        "ldr", _C.MEM, _U.LSU, 3, 1, 2.0, num_sources=0, touches_memory=True
    ),
    _spec(
        "str",
        _C.MEM,
        _U.LSU,
        1,
        1,
        1.9,
        num_sources=1,
        has_dest=False,
        touches_memory=True,
    ),
    # --- dummy unconditional branch to the next instruction -----------------
    _spec(
        "b.next",
        _C.BRANCH,
        _U.BRANCH,
        1,
        1,
        0.6,
        num_sources=0,
        has_dest=False,
    ),
)

ARM_ISA = InstructionSet(
    name="armv8",
    specs=ARM_SPECS,
    registers={_R.INT: 16, _R.FP: 16, _R.VEC: 16},
    memory_slots=64,
)
