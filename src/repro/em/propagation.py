"""Coupling between the die radiator and the antenna, plus ambient noise.

The paper places the antenna at a stable 5-10 cm from the CPU; the
received signal strength falls with distance and the board side (the
lower side, closer to the die, is preferred).  The model uses an
inverse-distance-cubed near-field law (magnetic dipole coupling at
centimeter range against meter-scale wavelengths) normalized at a
reference distance, and an ambient environment that contributes the
spectrum analyzer's displayed noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NearFieldCoupling:
    """Distance-dependent gain between die radiator and antenna."""

    distance_m: float = 0.07
    reference_distance_m: float = 0.07
    exponent: float = 3.0
    board_side_gain: float = 1.0  # 1.0 = lower side (closer to die)

    def gain(self) -> float:
        """Scalar amplitude gain applied to the emission spectrum."""
        if self.distance_m <= 0.0:
            raise ValueError("antenna distance must be positive")
        ratio = self.reference_distance_m / self.distance_m
        return self.board_side_gain * ratio**self.exponent


@dataclass(frozen=True)
class AmbientEnvironment:
    """Measurement environment: noise floor and its sweep-to-sweep spread."""

    noise_floor_dbm: float = -95.0
    noise_sigma_db: float = 1.0

    def noise_power_w(self) -> float:
        """Mean noise power per RBW bin, in watts."""
        return 1.0e-3 * 10.0 ** (self.noise_floor_dbm / 10.0)

    def sample_noise_w(
        self, shape, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-bin noise power draws for one sweep."""
        db = self.noise_floor_dbm + self.noise_sigma_db * rng.standard_normal(
            shape
        )
        return 1.0e-3 * 10.0 ** (db / 10.0)
