"""MeasurementService behavior: determinism, overload, lifecycle.

The headline test pins the service's bit-identity contract: a
coalesced batch of compatible jobs produces byte-for-byte the same
per-job results -- and leaves the shared analyzer RNG in the same
state -- as the identical jobs submitted strictly sequentially to a
twin service built with the same seed.
"""

import asyncio
import json

import pytest

from repro.obs.events import EventLog, MemorySink
from repro.obs.manifest import RunManifest
from repro.platforms import registry
from repro.service import (
    BadRequest,
    InprocClient,
    JobCancelled,
    JobTimeout,
    MeasurementService,
    QueueFull,
    RateLimited,
    UnknownJob,
)

CLOCKS = registry.make_cluster("a53").spec.allowed_clocks_hz()[:2]

MEASURE_SPECS = [
    {"platform": "a53", "program_seed": 1},
    {"platform": "a53", "program_seed": 2},
    {"platform": "a53", "program_seed": 3},
]


def _service(**kwargs):
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("samples", 3)
    return MeasurementService(**kwargs)


def _rng_state(service, platform="a53"):
    analyzer = service._states[platform].characterizer.analyzer
    return json.dumps(
        analyzer.rng.bit_generator.state, sort_keys=True, default=str
    )


class TestDeterminism:
    def test_coalesced_batch_bit_identical_to_sequential(self):
        async def coalesced():
            async with _service() as svc:
                jobs = [
                    svc.submit("measure", spec)
                    for spec in MEASURE_SPECS
                ]
                results = [await j.wait() for j in jobs]
                # All three really rode one batch.
                assert svc.counters["batches"] == 1
                assert len({j.batch_id for j in jobs}) == 1
                return results, _rng_state(svc)

        async def sequential():
            async with _service() as svc:
                results = []
                for spec in MEASURE_SPECS:
                    job = svc.submit("measure", spec)
                    results.append(await job.wait())
                assert svc.counters["batches"] == 3
                return results, _rng_state(svc)

        batched, rng_a = asyncio.run(coalesced())
        serial, rng_b = asyncio.run(sequential())
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )
        assert rng_a == rng_b

    def test_mixed_measure_sweep_coalesce_and_match_sequential(self):
        specs = [
            ("measure", {"platform": "a53", "program_seed": 5}),
            ("sweep", {"platform": "a53", "clocks_hz": list(CLOCKS)}),
            ("measure", {"platform": "a53", "program_seed": 6}),
        ]

        async def run(sequential):
            async with _service() as svc:
                results = []
                if sequential:
                    for kind, params in specs:
                        results.append(
                            await svc.submit(kind, params).wait()
                        )
                else:
                    jobs = [svc.submit(k, p) for k, p in specs]
                    results = [await j.wait() for j in jobs]
                    assert svc.counters["batches"] == 1
                return results, _rng_state(svc)

        batched, rng_a = asyncio.run(run(sequential=False))
        serial, rng_b = asyncio.run(run(sequential=True))
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )
        assert rng_a == rng_b

    def test_incompatible_settings_split_but_stay_deterministic(self):
        specs = [
            {"platform": "a53", "program_seed": 1},
            {"platform": "a53", "program_seed": 2, "samples": 5},
            {"platform": "a53", "program_seed": 3},
        ]

        async def run():
            async with _service() as svc:
                jobs = [svc.submit("measure", s) for s in specs]
                results = [await j.wait() for j in jobs]
                # Differing samples breaks the run at job 2: no batch
                # may skip over it.
                assert svc.counters["batches"] == 3
                return results

        first = asyncio.run(run())
        second = asyncio.run(run())
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestOverload:
    def test_rate_limited_tenant_gets_429(self):
        async def run():
            async with _service(rate_per_s=0.001, burst=1.0) as svc:
                client = InprocClient(svc)
                job = client.submit(
                    "measure", MEASURE_SPECS[0], tenant="alice"
                )
                with pytest.raises(RateLimited) as excinfo:
                    client.submit(
                        "measure", MEASURE_SPECS[1], tenant="alice"
                    )
                assert excinfo.value.http_status == 429
                assert excinfo.value.retry_after_s > 0.0
                # An independent tenant is not affected.
                other = client.submit(
                    "measure", MEASURE_SPECS[1], tenant="bob"
                )
                await asyncio.gather(job.wait(), other.wait())
                assert svc.counters["rejected_rate_limit"] == 1

        asyncio.run(run())

    def test_full_queue_sheds_load(self):
        async def run():
            svc = _service(max_pending_jobs=2)  # never started: no drain
            svc.submit("measure", MEASURE_SPECS[0])
            svc.submit("measure", MEASURE_SPECS[1])
            with pytest.raises(QueueFull) as excinfo:
                svc.submit("measure", MEASURE_SPECS[2])
            assert excinfo.value.http_status == 429
            assert svc.counters["rejected_queue_full"] == 1

        asyncio.run(run())


class TestLifecycle:
    def test_queued_job_times_out(self):
        async def run():
            svc = _service()
            job = svc.submit(
                "measure", MEASURE_SPECS[0], timeout_s=0.005
            )
            await asyncio.sleep(0.05)  # expire while still queued
            await svc.start()
            with pytest.raises(JobTimeout):
                await job.wait()
            assert job.status == "timeout"
            await svc.close()

        asyncio.run(run())

    def test_cancel_queued_job(self):
        async def run():
            svc = _service()
            job = svc.submit("measure", MEASURE_SPECS[0])
            svc.cancel(job.id)
            assert job.status == "cancelled"
            await svc.start()
            with pytest.raises(JobCancelled):
                await job.wait()
            await svc.close()

        asyncio.run(run())

    def test_unknown_platform_rejected_before_queueing(self):
        async def run():
            async with _service() as svc:
                with pytest.raises(BadRequest, match="pdp11"):
                    svc.submit("measure", {"platform": "pdp11"})
                assert len(svc._coalescer) == 0

        asyncio.run(run())

    def test_invalid_operating_point_rejects_submission(self):
        async def run():
            async with _service() as svc:
                with pytest.raises(BadRequest, match="not reachable"):
                    svc.submit(
                        "measure",
                        {"platform": "a53", "clock_hz": 1.23456e9},
                    )

        asyncio.run(run())

    def test_close_without_drain_cancels_queued_jobs(self):
        async def run():
            svc = _service()
            await svc.start()
            # Occupy the dispatcher, then pile on queued work.
            first = svc.submit("measure", MEASURE_SPECS[0])
            await first.wait()
            svc._wake.clear()
            queued = svc.submit("measure", MEASURE_SPECS[1])
            await svc.close()
            assert queued.status == "cancelled"

        asyncio.run(run())


class TestVirusJobs:
    def test_virus_runs_exclusively(self):
        async def run():
            async with _service() as svc:
                virus = svc.submit(
                    "virus",
                    {
                        "platform": "a53",
                        "generations": 1,
                        "population": 2,
                        "loop_length": 4,
                    },
                )
                measure = svc.submit("measure", MEASURE_SPECS[0])
                summary = await virus.wait()
                await measure.wait()
                assert summary["kind"] == "ga-run-summary"
                assert svc.counters["batches"] == 2  # never coalesced

        asyncio.run(run())

    def test_virus_resume_from_missing_checkpoint_fails_cleanly(
        self, tmp_path
    ):
        missing = tmp_path / "nope" / "checkpoint.json"

        async def run():
            async with _service() as svc:
                job = svc.submit(
                    "virus",
                    {
                        "platform": "a53",
                        "generations": 1,
                        "population": 2,
                        "resume_dir": str(missing),
                    },
                )
                with pytest.raises(Exception):
                    await job.wait()
                assert job.status == "failed"
                # One-line error naming the path, not a traceback.
                assert str(missing) in job.error
                assert "\n" not in job.error

        asyncio.run(run())


class TestPersistence:
    def test_unknown_job_error_names_checked_path(self, tmp_path):
        async def run():
            async with _service(state_dir=tmp_path) as svc:
                with pytest.raises(UnknownJob) as excinfo:
                    svc.job_view("job-000099")
                message = str(excinfo.value)
                assert "job-000099" in message
                assert str(tmp_path / "job-000099") in message
                assert "\n" not in message

        asyncio.run(run())

    def test_unknown_job_without_state_dir(self):
        async def run():
            async with _service() as svc:
                with pytest.raises(UnknownJob, match="job-000042"):
                    svc.get("job-000042")

        asyncio.run(run())

    def test_evicted_job_rehydrates_from_manifest(self, tmp_path):
        async def run():
            async with _service(
                state_dir=tmp_path, max_finished_jobs=1
            ) as svc:
                first = svc.submit("measure", MEASURE_SPECS[0])
                await first.wait()
                second = svc.submit("measure", MEASURE_SPECS[1])
                await second.wait()
                assert first.id not in svc._jobs  # evicted
                view = svc.job_view(first.id)
                assert view["from_manifest"] is True
                assert view["status"] == "done"
                assert view["result"]["kind"] == "em-measurement"
                # The artifact dir speaks the standard provenance
                # protocol.
                manifest = RunManifest.load(tmp_path / first.id)
                assert manifest.command == "service-measure"
                assert manifest.extra["job_id"] == first.id
                assert "result.json" in manifest.artifacts

        asyncio.run(run())

    def test_provenance_report_renders_service_job(self, tmp_path):
        from repro.analysis.report import report_from_provenance

        async def run():
            async with _service(state_dir=tmp_path) as svc:
                job = svc.submit("measure", MEASURE_SPECS[0])
                await job.wait()
                return job.id

        job_id = asyncio.run(run())
        report = report_from_provenance(tmp_path / job_id)
        assert "service-measure" in report


class TestObservability:
    def test_job_events_stream_with_batch_tags(self):
        sink = MemorySink()

        async def run():
            async with _service(event_log=EventLog([sink])) as svc:
                jobs = [
                    svc.submit("measure", spec)
                    for spec in MEASURE_SPECS[:2]
                ]
                for job in jobs:
                    await job.wait()
                return jobs

        jobs = asyncio.run(run())
        names = [r["event"] for r in sink.records]
        assert names.count("job_submitted") == 2
        assert names.count("job_batched") == 1
        assert names.count("job_done") == 2
        assert names[-1] == "service_stop"
        # Chain events carry the job attribution.
        chain_events = [
            r for r in sink.records if r["event"] == "chain_run"
        ]
        assert chain_events
        assert chain_events[0]["jobs"] == [j.id for j in jobs]
        assert chain_events[0]["batch"] == jobs[0].batch_id

    def test_stats_shape(self):
        async def run():
            async with _service() as svc:
                job = svc.submit("measure", MEASURE_SPECS[0])
                await job.wait()
                stats = svc.stats()
                assert stats["counters"]["done"] == 1
                assert stats["queue_depth"] == 0
                assert stats["platforms_active"] == ["a53"]

        asyncio.run(run())
