"""``python -m repro.audit`` -- the determinism audit command line.

Subcommands::

    python -m repro.audit lint src/          # static rule pass
    python -m repro.audit rules              # print the rule table

``lint`` exits 1 when any unsuppressed finding remains, 0 otherwise;
suppressed findings are counted in the summary (and listed with
``--show-suppressed``) but never fail the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.audit.lint import lint_paths
from repro.audit.rules import render_rule_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.audit",
        description="determinism audit: static lint for the invariants "
        "the repro's bit-identity guarantees rest on",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lint", help="run the static rule pass")
    p.add_argument("paths", nargs="+", help="files or directories")
    p.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by '# audit: ignore[..]'",
    )
    p.add_argument(
        "--no-fixit",
        action="store_true",
        help="omit the fix-it line under each finding",
    )

    sub.add_parser("rules", help="print the rule table")
    return parser


def cmd_lint(args) -> int:
    findings = lint_paths(args.paths)
    unsuppressed = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else unsuppressed
    for finding in shown:
        print(finding.render(show_fixit=not args.no_fixit))
    suppressed = len(findings) - len(unsuppressed)
    print(
        f"audit lint: {len(unsuppressed)} finding(s), "
        f"{suppressed} suppressed",
        file=sys.stderr,
    )
    return 1 if unsuppressed else 0


def cmd_rules(args) -> int:
    print(render_rule_table())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return cmd_lint(args)
    return cmd_rules(args)


if __name__ == "__main__":
    raise SystemExit(main())
