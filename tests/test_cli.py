"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_cluster


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_platform_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--platform", "m1"])


class TestResolve:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("a72", "cortex-a72"),
            ("a53", "cortex-a53"),
            ("amd", "amd-athlon-ii-x4-645"),
            ("gpu", "gpu-8cu"),
        ],
    )
    def test_resolve_cluster(self, name, expected):
        assert resolve_cluster(name).name == expected

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            resolve_cluster("sparc")


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Cortex-A72" in out and "Athlon" in out

    def test_impedance(self, capsys):
        assert main(
            ["impedance", "--platform", "a72", "--points", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "first-order resonance" in out
        assert "67" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--platform", "a72", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "first-order resonance" in out

    def test_virus_to_stdout(self, capsys):
        assert main(
            [
                "virus", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--loop-length", "16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "virus for cortex-a72" in out
        assert "b " in out  # assembly back-edge

    def test_virus_archive_and_vmin(self, capsys, tmp_path):
        assert main(
            [
                "virus", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--loop-length", "16", "--out", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        meta = tmp_path / "cortex-a72-em-amplitude.meta.json"
        assert meta.exists()
        assert main(
            [
                "vmin", "--platform", "a72",
                "--workloads", "idle",
                "--virus", str(meta),
                "--virus-repeats", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "idle" in out and "virus" in out

    def test_vmin_unknown_workload(self, capsys):
        assert main(
            ["vmin", "--platform", "a72", "--workloads", "doom"]
        ) == 2

    def test_report(self, capsys):
        assert main(
            [
                "report", "--platform", "a72",
                "--population", "8", "--generations", "3",
                "--no-vmin",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "# PDN characterization: cortex-a72" in out
        assert "EM-driven dI/dt virus" in out
        assert "V_MIN ladder" not in out
