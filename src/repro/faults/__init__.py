"""Fault injection and resilience for the measurement chain and GA.

Long campaigns against physical instruments survive because the
harness degrades gracefully: transient instrument faults are retried
(with the instrument RNG rewound, so a retried-to-success run is
bit-identical to a fault-free one), crashed workers are re-dispatched
and eventually degraded to serial evaluation, persistently failing
genomes are quarantined with a penalty fitness, and corrupted
checkpoints fall back to rotated copies.  This package provides the
deterministic fault *source* (:class:`FaultPlan` /
:class:`FaultInjector`) and the shared resilience knobs
(:class:`RetryPolicy`); the handling lives at the arming sites --
:class:`repro.chain.SignalPath`, :class:`repro.ga.parallel.
ParallelEvaluator`, :mod:`repro.io.serialization`.

See ``docs/testing.md`` for how to write a fault plan and what the
chaos suite (``tests/faults/``) pins.
"""

from repro.faults.errors import (
    FAULT_KINDS,
    RETRYABLE_FAULTS,
    CorruptArtifact,
    FaultError,
    StageTimeout,
    TransientFault,
    WorkerCrash,
)
from repro.faults.plan import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
)
from repro.faults.retry import RetryPolicy, call_with_retry

__all__ = [
    "CorruptArtifact",
    "FAULT_KINDS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_INJECTOR",
    "RETRYABLE_FAULTS",
    "RetryPolicy",
    "StageTimeout",
    "TransientFault",
    "WorkerCrash",
    "call_with_retry",
    "load_fault_plan",
]
