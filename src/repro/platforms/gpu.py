"""GPU platform extension (the paper's future work (Section 10)).

*"For future work, we aim to extend our methodology to GPU PDNs,
complementing recent studies on GPU voltage noise [18][19]."*

A GPU is, for this methodology, just another cluster: many compute
units (CUs) on one voltage rail, a wide-SIMD instruction stream, and an
LC-tank PDN of its own.  This module supplies a SIMT-flavoured
instruction table (wide vector ops carry large per-instruction energy:
32 lanes switch at once), an 8-CU in-order model and a PDN preset
calibrated to a 55 MHz first-order resonance with all CUs powered
(GPU rails carry more die capacitance, so they resonate below the CPU
clusters), rising to 90 MHz with one CU.

Everything downstream -- the fast EM sweep, EM-driven GA, power-gating
studies -- works unchanged, which is the point of the extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.current import CurrentModel
from repro.cpu.isa import (
    ExecutionUnit,
    InstructionClass,
    InstructionSet,
    InstructionSpec,
    RegisterFile,
)
from repro.cpu.pipeline import InOrderPipeline
from repro.pdn.models import PDNParameters
from repro.platforms.base import Cluster, ClusterSpec, NoiseVisibility

_U = ExecutionUnit
_C = InstructionClass
_R = RegisterFile


def _spec(mnemonic, iclass, unit, latency, rt, energy, **kw):
    return InstructionSpec(
        mnemonic=mnemonic,
        iclass=iclass,
        unit=unit,
        latency=latency,
        recip_throughput=rt,
        energy=energy,
        **kw,
    )


GPU_SPECS = (
    # scalar control path (cheap)
    _spec("s_mov", _C.INT_SHORT, _U.ALU, 1, 1, 0.4, num_sources=1),
    _spec("s_add", _C.INT_SHORT, _U.ALU, 1, 1, 0.5),
    # wide vector ALU: 32 lanes switch together -> big charge packets
    _spec("v_add32", _C.SIMD, _U.SIMD, 2, 1, 6.0, regfile=_R.VEC),
    _spec("v_mul32", _C.SIMD, _U.SIMD, 3, 1, 7.5, regfile=_R.VEC),
    _spec(
        "v_fma32", _C.SIMD, _U.SIMD, 3, 1, 9.0, regfile=_R.VEC,
        num_sources=3,
    ),
    # transcendental/divide: long, non-pipelined -> low-current shadow
    _spec(
        "v_rcp32", _C.SIMD, _U.FDIV, 8, 8, 3.0, regfile=_R.VEC,
        num_sources=1,
    ),
    _spec(
        "v_sqrt32", _C.SIMD, _U.FDIV, 20, 20, 4.5, regfile=_R.VEC,
        num_sources=1,
    ),
    # scalar float
    _spec("v_fadd", _C.FLOAT, _U.FPU, 3, 1, 1.2, regfile=_R.FP),
    # memory: coalesced L1 hits
    _spec(
        "ld_shared", _C.MEM, _U.LSU, 4, 1, 5.0, num_sources=0,
        touches_memory=True,
    ),
    _spec(
        "st_shared", _C.MEM, _U.LSU, 2, 1, 4.5, num_sources=1,
        has_dest=False, touches_memory=True,
    ),
    # dummy branch
    _spec(
        "s_branch", _C.BRANCH, _U.BRANCH, 1, 1, 0.3, num_sources=0,
        has_dest=False,
    ),
)

GPU_ISA = InstructionSet(
    name="gpu-simt",
    specs=GPU_SPECS,
    registers={_R.INT: 16, _R.FP: 16, _R.VEC: 24},
    memory_slots=64,
)

GPU_UNITS: Dict[ExecutionUnit, int] = {
    ExecutionUnit.ALU: 1,
    ExecutionUnit.MUL: 1,
    ExecutionUnit.DIV: 1,
    ExecutionUnit.FPU: 1,
    ExecutionUnit.FDIV: 1,
    ExecutionUnit.SIMD: 2,
    ExecutionUnit.LSU: 1,
    ExecutionUnit.BRANCH: 1,
}

GPU_PDN = PDNParameters(
    name="gpu-8cu",
    nominal_voltage=1.05,
    num_cores=8,
    c_die_base=119.48e-9,
    c_die_per_core=39.59e-9,
    r_die=0.35e-3,
    l_pkg=10.0e-12,
    r_pkg=0.25e-3,
    c_pkg=10.0e-6,
    esr_pkg=2.0e-3,
    esl_pkg=10.0e-12,
    l_pcb=0.5e-9,
    r_pcb=1.0e-3,
    c_pcb=1.0e-3,
    esr_pcb=15.0e-3,
    esl_pcb=2.0e-9,
    l_vrm=120.0e-9,
    r_vrm=1.0e-3,
)

GPU_SPEC = ClusterSpec(
    name="gpu-8cu",
    isa=GPU_ISA,
    num_cores=8,  # compute units
    microarchitecture="in-order SIMT",
    nominal_voltage=1.05,
    nominal_clock_hz=1.0e9,
    clock_step_hz=25.0e6,
    min_clock_hz=200.0e6,
    technology_nm=16,
    visibility=NoiseVisibility.NONE,
    has_scl=False,
    pdn_params=GPU_PDN,
    current_model=CurrentModel(
        base_current_a=0.4, amps_per_energy=0.12, frontend_energy=0.2
    ),
    uncore_current_a=0.8,
)


@dataclass
class GPUCard:
    """A discrete GPU card: one big cluster of compute units."""

    gpu: Cluster

    @property
    def clusters(self) -> Dict[str, Cluster]:
        return {"gpu-8cu": self.gpu}


def make_gpu_card() -> GPUCard:
    """Fresh GPU card model at its nominal operating point."""
    gpu = Cluster(
        GPU_SPEC,
        InOrderPipeline(width=2, unit_counts=GPU_UNITS, name="gpu-cu"),
    )
    return GPUCard(gpu=gpu)
