"""Power-delivery-network (PDN) circuit simulation substrate.

The paper models the PDN of a die/package/PCB system as a distributed RLC
network (Fig. 1a) and characterizes it with HSPICE plus physical
measurements.  This package provides the equivalent in pure Python:

- :mod:`repro.pdn.elements` / :mod:`repro.pdn.netlist` -- a small
  modified-nodal-analysis (MNA) circuit builder supporting R, L, C,
  voltage sources and (time-varying) current sources.
- :mod:`repro.pdn.impedance` -- complex AC analysis producing the input
  impedance :math:`Z(f)` seen by the die (Fig. 1b).
- :mod:`repro.pdn.transient` -- trapezoidal time-domain integration for
  step and pulsed current excitations (Figs. 1c and 2).
- :mod:`repro.pdn.steady_state` -- exact periodic steady-state solver
  (harmonic decomposition against the AC transfer functions) used as
  the fast path for GA fitness evaluation.
- :mod:`repro.pdn.models` -- per-platform PDN presets calibrated so that
  the first-order resonance frequencies match the paper's measurements.
"""

from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.pdn.netlist import Circuit, GROUND
from repro.pdn.impedance import ACAnalysis, input_impedance
from repro.pdn.transient import TransientResult, TransientSolver
from repro.pdn.steady_state import PeriodicResponse, SteadyStateSolver
from repro.pdn.models import PDNModel, PDNParameters, first_order_resonance_hz

__all__ = [
    "Resistor",
    "Inductor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Circuit",
    "GROUND",
    "ACAnalysis",
    "input_impedance",
    "TransientSolver",
    "TransientResult",
    "SteadyStateSolver",
    "PeriodicResponse",
    "PDNModel",
    "PDNParameters",
    "first_order_resonance_hz",
]
