"""repro: EM-driven CPU voltage-noise characterization.

A from-scratch reproduction of *"Leveraging CPU Electromagnetic
Emanations for Voltage Noise Characterization"* (MICRO 2018): a
non-intrusive methodology that senses CPU EM emanations with an antenna
and spectrum analyzer to (a) generate worst-case dI/dt stress tests
with a genetic algorithm and (b) measure the power-delivery network's
first-order resonance frequency.

Hardware is replaced by physics-grounded simulators (see DESIGN.md):
cycle-level CPU pipelines produce current traces, a linear RLC PDN
produces rail waveforms, and a radiation/antenna/analyzer chain
produces the EM spectrum the GA optimizes.

Quickstart::

    from repro import make_juno_board, EMCharacterizer, VirusGenerator
    from repro.ga import GAConfig

    juno = make_juno_board()
    gen = VirusGenerator(juno.a72, EMCharacterizer(),
                         config=GAConfig(population_size=50,
                                         generations=60))
    summary = gen.generate_em_virus()
    print(summary.dominant_frequency_hz / 1e6, "MHz")
"""

from repro.chain import (
    ChainItem,
    ChainRequest,
    ChainResult,
    OperatingPoint,
    SignalPath,
    SimulationSession,
)
from repro.core import (
    EMCharacterizer,
    EMMeasurement,
    GARunSummary,
    MultiDomainSpectrum,
    ResonanceSweep,
    VirusGenerator,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    load_fault_plan,
)
from repro.platforms import (
    JunoBoard,
    AMDDesktop,
    make_amd_desktop,
    make_juno_board,
)
from repro.ga import GAConfig

__version__ = "1.0.0"

__all__ = [
    "ChainItem",
    "ChainRequest",
    "ChainResult",
    "OperatingPoint",
    "SignalPath",
    "SimulationSession",
    "EMCharacterizer",
    "EMMeasurement",
    "GARunSummary",
    "MultiDomainSpectrum",
    "ResonanceSweep",
    "VirusGenerator",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "load_fault_plan",
    "JunoBoard",
    "AMDDesktop",
    "make_juno_board",
    "make_amd_desktop",
    "GAConfig",
    "__version__",
]
