"""Figure 15: simultaneous monitoring of multiple voltage domains.

Paper: running the A72 and A53 dI/dt viruses at the same time, one
spectrum-analyzer sweep shows both viruses' frequency signatures -- a
capability no single-rail probe offers.
"""

import numpy as np

from benchmarks.conftest import paper_characterizer, print_header


def test_fig15_simultaneous_domains(
    benchmark, juno_board, a72_em_virus, a53_em_virus
):
    juno_board.a72.reset()
    juno_board.a53.reset()
    char = paper_characterizer(55)

    def regenerate():
        run72 = juno_board.a72.run(a72_em_virus.virus)
        run53 = juno_board.a53.run(a53_em_virus.virus)
        return char.monitor_domains(
            {"cortex-a72": run72, "cortex-a53": run53}
        )

    md = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header(
        "Fig. 15: one antenna sweep over both Juno voltage domains"
    )
    floor = float(np.median(md.trace.power_dbm))
    print(f"  noise floor: {floor:.1f} dBm")
    for domain, (freq, dbm) in sorted(md.domain_peaks.items()):
        print(
            f"  {domain:12s} signature {freq / 1e6:6.1f} MHz at "
            f"{dbm:6.1f} dBm ({dbm - floor:+.1f} dB)"
        )
    visible = set(md.visible_domains(floor_margin_db=10.0))
    assert visible == {"cortex-a72", "cortex-a53"}
    # each signature is a strong spike, tens of dB over the floor
    for _, dbm in md.domain_peaks.values():
        assert dbm > floor + 20.0
