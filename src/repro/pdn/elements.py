"""Circuit element definitions for the MNA netlist builder.

Every element connects two nodes identified by strings.  The reserved node
name ``"0"`` (:data:`repro.pdn.netlist.GROUND`) is the reference node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

Waveform = Union[float, Callable[[float], float]]


@dataclass(frozen=True)
class Element:
    """Base class for two-terminal circuit elements."""

    name: str
    node_a: str
    node_b: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("element name must be non-empty")
        if self.node_a == self.node_b:
            raise ValueError(
                f"element {self.name!r} connects node {self.node_a!r} to itself"
            )


@dataclass(frozen=True)
class Resistor(Element):
    """Ideal resistor of ``resistance`` ohms between ``node_a`` and ``node_b``."""

    resistance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise ValueError(f"resistor {self.name!r} needs resistance > 0")


@dataclass(frozen=True)
class Capacitor(Element):
    """Ideal capacitor of ``capacitance`` farads."""

    capacitance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0.0:
            raise ValueError(f"capacitor {self.name!r} needs capacitance > 0")


@dataclass(frozen=True)
class Inductor(Element):
    """Ideal inductor of ``inductance`` henries.

    Inductors are group-2 elements in MNA: their branch current is an
    explicit unknown, which keeps DC analysis (where they are shorts)
    well-posed.
    """

    inductance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0.0:
            raise ValueError(f"inductor {self.name!r} needs inductance > 0")


@dataclass(frozen=True)
class VoltageSource(Element):
    """Ideal voltage source: ``V(node_a) - V(node_b) = voltage``."""

    voltage: float = 0.0


@dataclass(frozen=True)
class CurrentSource(Element):
    """Current source driving ``current`` amperes from ``node_a`` to ``node_b``.

    A positive value pulls current out of ``node_a`` and returns it into
    ``node_b`` (load convention: a CPU drawing current from the die node
    to ground is ``CurrentSource("iload", "die", "0", current=...)``).

    ``current`` may be a constant or a callable ``f(t_seconds) -> amps``
    for transient analysis.  AC and steady-state analyses treat current
    sources as stimulus injection points and ignore the waveform.
    """

    current: Waveform = 0.0
    label: Optional[str] = field(default=None, compare=False)

    def value_at(self, t: float) -> float:
        """Return the instantaneous source current at time ``t``."""
        if callable(self.current):
            return float(self.current(t))
        return float(self.current)
