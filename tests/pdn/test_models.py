"""Unit tests for the calibrated platform PDN presets."""

import numpy as np
import pytest

from repro.pdn.models import (
    AMD_ATHLON_PDN,
    CORTEX_A53_PDN,
    CORTEX_A72_PDN,
    PDNModel,
    PRESETS,
    first_order_resonance_hz,
    preset,
    scaled,
)


class TestPresets:
    def test_registry_contains_all_three_platforms(self):
        assert set(PRESETS) == {
            "cortex-a72",
            "cortex-a53",
            "amd-athlon-ii-x4-645",
        }

    def test_preset_lookup(self):
        assert preset("cortex-a72") is CORTEX_A72_PDN
        with pytest.raises(KeyError, match="unknown"):
            preset("pentium")

    def test_scaled_override(self):
        p = scaled(CORTEX_A72_PDN, r_die=5e-3)
        assert p.r_die == 5e-3
        assert p.l_pkg == CORTEX_A72_PDN.l_pkg


class TestDieCapacitance:
    def test_monotonic_in_powered_cores(self):
        caps = [
            CORTEX_A53_PDN.die_capacitance(n)
            for n in range(1, CORTEX_A53_PDN.num_cores + 1)
        ]
        assert all(b > a for a, b in zip(caps, caps[1:]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CORTEX_A72_PDN.die_capacitance(0)
        with pytest.raises(ValueError):
            CORTEX_A72_PDN.die_capacitance(3)


class TestCalibratedResonances:
    """The paper's measured first-order resonances (Figs. 8, 13, 16/17)."""

    def test_a72_two_cores_at_67mhz(self):
        m = PDNModel(CORTEX_A72_PDN)
        assert m.measured_resonance_hz(2) == pytest.approx(67e6, rel=0.02)

    def test_a72_one_core_at_83mhz(self):
        m = PDNModel(CORTEX_A72_PDN)
        assert m.measured_resonance_hz(1) == pytest.approx(83e6, rel=0.02)

    def test_a53_four_cores_at_76_5mhz(self):
        m = PDNModel(CORTEX_A53_PDN)
        assert m.measured_resonance_hz(4) == pytest.approx(76.5e6, rel=0.02)

    def test_a53_one_core_at_97mhz(self):
        m = PDNModel(CORTEX_A53_PDN)
        assert m.measured_resonance_hz(1) == pytest.approx(97e6, rel=0.02)

    def test_a53_resonance_monotonic_in_gating(self):
        """Power-gating cores shifts the resonance up (Section 6)."""
        m = PDNModel(CORTEX_A53_PDN)
        freqs = [m.measured_resonance_hz(n) for n in (4, 3, 2, 1)]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_amd_four_cores_at_78mhz(self):
        m = PDNModel(AMD_ATHLON_PDN)
        assert m.measured_resonance_hz(4) == pytest.approx(78e6, rel=0.02)

    def test_analytic_estimate_close_to_network(self):
        m = PDNModel(CORTEX_A72_PDN)
        analytic = m.analytic_resonance_hz(2)
        network = m.measured_resonance_hz(2)
        assert analytic == pytest.approx(network, rel=0.35)

    def test_all_resonances_inside_papers_range(self):
        """Section 8.1: first-order resonances live in 50-200 MHz."""
        for params in PRESETS.values():
            m = PDNModel(params)
            for n in range(1, params.num_cores + 1):
                f = m.measured_resonance_hz(n)
                assert 50e6 <= f <= 200e6


class TestImpedanceStructure:
    """Fig. 1(b): multiple resonance peaks, first-order the highest."""

    @pytest.fixture(scope="class")
    def z_curve(self):
        m = PDNModel(CORTEX_A72_PDN)
        freqs = np.logspace(3.5, 8.7, 500)
        analysis = m.impedance_analysis(freqs, 2)
        return freqs, analysis.impedance_magnitude("die")

    def test_first_order_peak_is_global_structure_peak(self, z_curve):
        freqs, mag = z_curve
        first = mag[(freqs > 50e6) & (freqs < 200e6)].max()
        below = mag[freqs < 20e6].max()
        assert first >= below

    def test_mid_frequency_peak_exists(self, z_curve):
        """A second-order peak in the ~MHz decade (local maximum)."""
        freqs, mag = z_curve
        band = (freqs > 2e5) & (freqs < 2e7)
        inner = mag[band]
        assert inner.max() > mag[(freqs > 2e7) & (freqs < 4e7)].min()

    def test_impedance_small_at_dc(self, z_curve):
        freqs, mag = z_curve
        assert mag[0] < 0.05


class TestSolverCache:
    def test_solver_is_cached_per_gating_state(self):
        m = PDNModel(CORTEX_A72_PDN)
        assert m.solver(2) is m.solver(2)
        assert m.solver(2) is not m.solver(1)
