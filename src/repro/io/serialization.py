"""JSON round-trips for loop programs and virus archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import Instruction, InstructionSet, RegisterFile
from repro.cpu.program import LoopProgram
from repro.cpu.x86 import X86_ISA
from repro.ga.templates import render_individual_source

_BASE_ISAS: Dict[str, InstructionSet] = {
    "armv8": ARM_ISA,
    "x86-64": X86_ISA,
}

FORMAT_VERSION = 1


class SerializationError(Exception):
    """Malformed or incompatible serialized data."""


def _base_isa_for(isa: InstructionSet) -> str:
    """Identify which base table an instruction set derives from."""
    for name, base in _BASE_ISAS.items():
        base_mnemonics = {s.mnemonic for s in base.specs}
        if all(s.mnemonic in base_mnemonics for s in isa.specs):
            return name
    raise SerializationError(
        f"instruction set {isa.name!r} does not derive from a known base"
    )


def program_to_dict(program: LoopProgram) -> dict:
    """Serializable representation of a loop program."""
    isa = program.isa
    return {
        "format_version": FORMAT_VERSION,
        "base_isa": _base_isa_for(isa),
        "isa_name": isa.name,
        "registers": {
            rf.value: count for rf, count in isa.registers.items()
        },
        "memory_slots": isa.memory_slots,
        "name": program.name,
        "body": [
            {
                "mnemonic": i.mnemonic,
                "dest": i.dest,
                "sources": list(i.sources),
                "address": i.address,
            }
            for i in program.body
        ],
    }


def program_from_dict(data: dict) -> LoopProgram:
    """Reconstruct a loop program from its serialized form."""
    try:
        version = data["format_version"]
        base_name = data["base_isa"]
        body_data = data["body"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"missing field: {exc}") from exc
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r}"
        )
    try:
        base = _BASE_ISAS[base_name]
    except KeyError:
        raise SerializationError(
            f"unknown base ISA {base_name!r}"
        ) from None
    registers = {
        RegisterFile(key): int(count)
        for key, count in data.get("registers", {}).items()
    } or dict(base.registers)
    isa = InstructionSet(
        name=data.get("isa_name", base.name),
        specs=base.specs,
        registers=registers,
        memory_slots=int(data.get("memory_slots", base.memory_slots)),
    )
    body = []
    for entry in body_data:
        try:
            spec = isa.spec(entry["mnemonic"])
        except KeyError as exc:
            raise SerializationError(str(exc)) from exc
        body.append(
            Instruction(
                spec=spec,
                dest=entry.get("dest"),
                sources=tuple(entry.get("sources", ())),
                address=entry.get("address"),
            )
        )
    return LoopProgram(
        isa=isa, body=tuple(body), name=data.get("name", "loaded")
    )


def save_program(
    program: LoopProgram, path: Union[str, Path]
) -> None:
    """Write a program to a JSON file."""
    Path(path).write_text(
        json.dumps(program_to_dict(program), indent=2), encoding="utf-8"
    )


def load_program(path: Union[str, Path]) -> LoopProgram:
    """Read a program back from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return program_from_dict(data)


def save_population(
    programs, path: Union[str, Path]
) -> None:
    """Persist a whole GA population (for resuming a search later).

    Section 3.1(a): the initial seed population "can be either a new
    random initial population or a population from a previous GA run".
    """
    data = {
        "format_version": FORMAT_VERSION,
        "individuals": [program_to_dict(p) for p in programs],
    }
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_population(path: Union[str, Path]):
    """Load a previously saved population."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError("unsupported population format")
    try:
        individuals = data["individuals"]
    except KeyError:
        raise SerializationError("missing individuals field") from None
    return [program_from_dict(entry) for entry in individuals]


def save_virus_archive(
    summary, directory: Union[str, Path], stem: Optional[str] = None
) -> Path:
    """Archive a GA run: program JSON, assembly text and metrics.

    Returns the path of the metadata file.  ``summary`` is a
    :class:`repro.core.results.GARunSummary`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or f"{summary.cluster_name}-{summary.metric}"

    save_program(summary.virus, directory / f"{stem}.json")
    (directory / f"{stem}.s").write_text(
        render_individual_source(summary.virus), encoding="utf-8"
    )
    metadata = {
        "format_version": FORMAT_VERSION,
        "cluster": summary.cluster_name,
        "metric": summary.metric,
        "generations": summary.generations,
        "dominant_frequency_hz": summary.dominant_frequency_hz,
        "max_droop_v": summary.max_droop_v,
        "peak_to_peak_v": summary.peak_to_peak_v,
        "ipc": summary.ipc,
        "loop_frequency_hz": summary.loop_frequency_hz,
        "loop_period_s": summary.loop_period_s,
        "program_file": f"{stem}.json",
        "assembly_file": f"{stem}.s",
    }
    meta_path = directory / f"{stem}.meta.json"
    meta_path.write_text(json.dumps(metadata, indent=2), encoding="utf-8")
    return meta_path


def load_virus_archive(meta_path: Union[str, Path]):
    """Load an archived virus: (program, metadata dict)."""
    meta_path = Path(meta_path)
    try:
        metadata = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    program = load_program(meta_path.parent / metadata["program_file"])
    return program, metadata
