"""Fast resonance-frequency detection (Section 5.3).

A fixed high/low-current loop (eight ADDs, one DIV) radiates an EM
spike at its loop frequency.  Sweeping the CPU clock modulates the
loop frequency; the spike's amplitude is maximized when the loop
frequency crosses the PDN's first-order resonance.  The whole sweep
takes ~15 minutes on hardware versus many hours for a GA run, and
is the tool that exposes the power-gating resonance shifts of
Figs. 11, 13 and 16.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.core.results import JsonResultMixin
from repro.obs.context import RunContext
from repro.obs.events import NULL_LOG
from repro.platforms.base import Cluster
from repro.workloads.loops import high_low_program


@dataclass
class SweepPoint:
    """One clock point of the sweep."""

    clock_hz: float
    loop_frequency_hz: float
    amplitude_w: float


@dataclass
class SweepResult(JsonResultMixin):
    """Outcome of a clock-modulated loop-frequency sweep."""

    cluster_name: str
    powered_cores: int
    points: List[SweepPoint]

    kind = "resonance-sweep"

    def resonance_hz(self) -> float:
        """Loop frequency with the maximum EM amplitude."""
        best = max(self.points, key=lambda p: p.amplitude_w)
        return best.loop_frequency_hz

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(loop_frequencies_hz, amplitudes) sorted by frequency."""
        pts = sorted(self.points, key=lambda p: p.loop_frequency_hz)
        return (
            np.array([p.loop_frequency_hz for p in pts]),
            np.array([p.amplitude_w for p in pts]),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "powered_cores": self.powered_cores,
            "points": [
                {
                    "clock_hz": p.clock_hz,
                    "loop_frequency_hz": p.loop_frequency_hz,
                    "amplitude_w": p.amplitude_w,
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        return cls(
            cluster_name=data["cluster_name"],
            powered_cores=int(data["powered_cores"]),
            points=[
                SweepPoint(
                    clock_hz=float(p["clock_hz"]),
                    loop_frequency_hz=float(p["loop_frequency_hz"]),
                    amplitude_w=float(p["amplitude_w"]),
                )
                for p in data["points"]
            ],
        )


class ResonanceSweep:
    """Drives the fast sweep against a cluster through an EM receive chain."""

    def __init__(
        self,
        characterizer: EMCharacterizer,
        samples_per_point: int = 5,
    ):
        self.characterizer = characterizer
        self.samples_per_point = samples_per_point

    def run(
        self,
        target: Union[RunContext, Cluster],
        clocks_hz: Optional[Sequence[float]] = None,
        active_cores: Optional[int] = None,
    ) -> SweepResult:
        """Sweep the cluster clock and record the EM spike amplitude.

        ``target`` is a :class:`repro.obs.context.RunContext`; the
        sweep runs against ``target.cluster`` and reports each point to
        ``target.event_log``.  Passing a bare :class:`Cluster` is the
        deprecated pre-context signature and still works.

        ``clocks_hz`` defaults to every multiplier-reachable point from
        nominal down (the paper steps the A72 from 1.2 GHz to 120 MHz
        in 20 MHz steps).  The cluster's clock is restored afterwards.
        """
        if isinstance(target, RunContext):
            cluster = target.cluster
            event_log = target.event_log
            if active_cores is None:
                active_cores = target.active_cores
        else:
            warnings.warn(
                "ResonanceSweep.run(cluster) is deprecated; pass a "
                "repro.obs.RunContext",
                DeprecationWarning,
                stacklevel=2,
            )
            cluster = target
            event_log = NULL_LOG
        program = high_low_program(cluster.spec.isa)
        clocks = (
            list(clocks_hz)
            if clocks_hz is not None
            else list(cluster.spec.allowed_clocks_hz())
        )
        event_log.emit(
            "sweep_start",
            cluster=cluster.name,
            points=len(clocks),
            powered_cores=cluster.powered_cores,
            samples_per_point=self.samples_per_point,
        )
        saved_clock = cluster.clock_hz
        points: List[SweepPoint] = []
        try:
            for clock in clocks:
                cluster.set_clock(clock)
                measurement = self.characterizer.measure(
                    cluster,
                    program,
                    active_cores=active_cores,
                    samples=self.samples_per_point,
                )
                points.append(
                    SweepPoint(
                        clock_hz=clock,
                        loop_frequency_hz=measurement.loop_frequency_hz,
                        amplitude_w=measurement.amplitude_w,
                    )
                )
                event_log.emit(
                    "sweep_point",
                    clock_hz=clock,
                    loop_frequency_hz=measurement.loop_frequency_hz,
                    amplitude_w=measurement.amplitude_w,
                )
        finally:
            cluster.set_clock(saved_clock)
        result = SweepResult(
            cluster_name=cluster.name,
            powered_cores=cluster.powered_cores,
            points=points,
        )
        event_log.emit(
            "sweep_end",
            cluster=cluster.name,
            resonance_hz=result.resonance_hz() if points else None,
        )
        return result

    def power_gating_study(
        self,
        target: Union[RunContext, Cluster],
        core_counts: Optional[Sequence[int]] = None,
        clocks_hz: Optional[Sequence[float]] = None,
    ) -> List[SweepResult]:
        """Sweep at several power-gating states (Figs. 8, 11, 13).

        Only the first core stays active in every state, so the load
        current is constant and amplitude differences isolate the PDN
        capacitance change -- the Section 6 experiment.
        """
        if isinstance(target, RunContext):
            ctx = target
        else:
            ctx = RunContext(cluster=target)
        cluster = ctx.cluster
        counts = (
            list(core_counts)
            if core_counts is not None
            else list(range(cluster.spec.num_cores, 0, -1))
        )
        saved = cluster.powered_cores
        results = []
        try:
            for count in counts:
                cluster.power_gate(count)
                results.append(
                    self.run(ctx, clocks_hz=clocks_hz, active_cores=1)
                )
        finally:
            cluster.power_gate(saved)
        return results
