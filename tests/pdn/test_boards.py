"""Unit tests for the detailed multi-bank board model."""

import numpy as np
import pytest

from repro.pdn.boards import (
    build_detailed_board_circuit,
    detailed_impedance_analysis,
    impedance_peaks,
)
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


@pytest.fixture(scope="module")
def detailed_z():
    freqs = np.logspace(3, 8.7, 1200)
    analysis = detailed_impedance_analysis(CORTEX_A72_PDN, 2, freqs)
    return freqs, analysis.impedance_magnitude("die")


class TestDetailedBoard:
    def test_first_order_tank_unchanged(self, detailed_z):
        """Package-and-up copies the preset: same 67 MHz peak height."""
        freqs, zm = detailed_z
        band = (freqs > 50e6) & (freqs < 200e6)
        f1 = freqs[band][np.argmax(zm[band])]
        z1 = zm[band].max()
        simple = PDNModel(CORTEX_A72_PDN)
        assert f1 == pytest.approx(
            simple.measured_resonance_hz(2), rel=0.01
        )
        sf = np.logspace(7.5, 8.5, 400)
        zs = simple.impedance_analysis(sf, 2).impedance_magnitude("die")
        assert z1 == pytest.approx(zs.max(), rel=0.05)

    def test_third_order_near_10khz(self, detailed_z):
        """Bulk/VRM tank lands in the paper's ~10 kHz decade."""
        freqs, zm = detailed_z
        peaks = impedance_peaks(freqs, zm)
        assert any(3e3 < f < 5e4 for f, _ in peaks)

    def test_second_order_in_1_to_10mhz(self, detailed_z):
        """Package-bank tank lands in the paper's 1-10 MHz decade."""
        freqs, zm = detailed_z
        peaks = impedance_peaks(freqs, zm)
        assert any(1e6 < f < 1e7 for f, _ in peaks)

    def test_at_least_three_resonance_peaks(self, detailed_z):
        freqs, zm = detailed_z
        peaks = impedance_peaks(freqs, zm)
        assert len(peaks) >= 3

    def test_mid_antiresonance_documented_hazard(self, detailed_z):
        """The mid/bulk anti-resonance (hundreds of kHz) exists -- the
        board-design hazard the module docstring warns about."""
        freqs, zm = detailed_z
        peaks = impedance_peaks(freqs, zm)
        assert any(1e5 < f < 1e6 for f, _ in peaks)

    def test_circuit_builds_for_every_gating_state(self):
        for n in (1, 2):
            circuit = build_detailed_board_circuit(CORTEX_A72_PDN, n)
            assert circuit.element("die_cap.c") is not None
