"""Unit tests for the EM spectrogram utility."""

import numpy as np
import pytest

from repro.analysis.spectrogram import (
    Spectrogram,
    band_power_timeline,
    em_spectrogram,
)
from repro.core.characterizer import EMCharacterizer
from repro.cpu.program import program_from_mnemonics
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload


@pytest.fixture
def characterizer():
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(9)),
        samples=3,
    )


@pytest.fixture
def resonant_virus(a72):
    program = program_from_mnemonics(
        a72.spec.isa, ["add"] * 20 + ["sdiv"] * 2, name="virus"
    )
    return ProgramWorkload("virus", program, jitter_seed=None)


class TestSpectrogram:
    def test_shape_and_labels(self, a72, characterizer, resonant_virus):
        schedule = [idle_workload(), resonant_virus]
        sg = em_spectrogram(characterizer, a72, schedule)
        assert sg.labels == ["idle", "virus"]
        assert sg.power_dbm.shape == (2, sg.frequencies_hz.size)

    def test_empty_schedule_rejected(self, a72, characterizer):
        with pytest.raises(ValueError):
            em_spectrogram(characterizer, a72, [])

    def test_virus_interval_peaks_at_resonance(
        self, a72, characterizer, resonant_virus
    ):
        sg = em_spectrogram(characterizer, a72, [resonant_virus])
        label, freq, dbm = sg.peak_per_interval()[0]
        assert label == "virus"
        assert freq == pytest.approx(66.7e6, abs=3e6)
        assert dbm > -60.0

    def test_timeline_flags_virus_interval(
        self, a72, characterizer, resonant_virus
    ):
        schedule = (
            [idle_workload()]
            + spec_suite(a72.spec.isa, ["gcc"])
            + [resonant_virus]
        )
        sg = em_spectrogram(characterizer, a72, schedule)
        timeline = band_power_timeline(sg, (50e6, 200e6))
        assert timeline.shape == (3,)
        assert np.argmax(timeline) == 2  # the virus interval
        assert timeline[2] > timeline[0] + 20.0

    def test_timeline_band_validation(self, a72, characterizer):
        sg = em_spectrogram(characterizer, a72, [idle_workload()])
        with pytest.raises(ValueError):
            band_power_timeline(sg, (1e9, 2e9))

    def test_ascii_rendering(self, a72, characterizer, resonant_virus):
        sg = em_spectrogram(
            characterizer, a72, [idle_workload(), resonant_virus]
        )
        art = sg.to_ascii(width=40)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("idle")
        # the virus row contains hotter cells than the idle row
        hot = set("%@#*")
        assert hot & set(lines[1])
