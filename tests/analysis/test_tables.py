"""Unit tests for paper-style table rendering."""

from repro.analysis.tables import VirusRow, render_virus_table
from repro.cpu.arm import ARM_ISA
from repro.cpu.program import program_from_mnemonics


def sample_row(name="a72em"):
    program = program_from_mnemonics(
        ARM_ISA, ["add"] * 4 + ["fadd"] * 3 + ["vmul"] * 2 + ["ldr"]
    )
    return VirusRow(
        name=name,
        program=program,
        ipc=0.74,
        loop_period_s=60e-9,
        loop_frequency_hz=16.67e6,
        dominant_frequency_hz=66.66e6,
        voltage_margin_v=0.150,
    )


class TestVirusTable:
    def test_row_mix_sums_to_one(self):
        mix = sample_row().mix()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_render_contains_headers_and_values(self):
        text = render_virus_table([sample_row()])
        assert "Virus" in text and "IPC" in text and "Margin" in text
        assert "a72em" in text
        assert "0.74" in text
        assert "150.0" in text  # margin in mV
        assert "66.66" in text  # dominant MHz

    def test_multiple_rows(self):
        text = render_virus_table(
            [sample_row("a72em"), sample_row("a53em")]
        )
        assert "a72em" in text and "a53em" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_mix_percentages_rendered(self):
        text = render_virus_table([sample_row()])
        assert "40%" in text  # 4/10 adds
