"""Typed clients for the measurement service.

:class:`InprocClient` wraps a live :class:`MeasurementService` in the
same process -- the zero-copy path tests use, raising the service's
own typed exceptions.  :class:`HttpClient` speaks the wire protocol of
:mod:`repro.service.http` over stdlib asyncio streams (one request per
connection) and *re-raises the same exception types*: an HTTP 429 with
``"type": "RateLimited"`` comes back as
:class:`~repro.service.jobs.RateLimited`, so client code is identical
against either transport.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.service.core import MeasurementService
from repro.service.jobs import (
    BadRequest,
    Job,
    JobCancelled,
    JobTimeout,
    QueueFull,
    RateLimited,
    ServiceClosed,
    ServiceError,
    UnknownJob,
)

#: Wire ``type`` field -> exception class, for HTTP error rehydration.
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        BadRequest,
        UnknownJob,
        RateLimited,
        QueueFull,
        JobTimeout,
        JobCancelled,
        ServiceClosed,
        ServiceError,
    )
}


class InprocClient:
    """Direct in-process client: typed submit/wait/cancel."""

    def __init__(self, service: MeasurementService):
        self.service = service

    def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        timeout_s: Optional[float] = None,
    ) -> Job:
        return self.service.submit(
            kind, params, tenant=tenant, timeout_s=timeout_s
        )

    async def run(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and await the result payload in one call."""
        job = self.submit(
            kind, params, tenant=tenant, timeout_s=timeout_s
        )
        return await job.wait()

    def view(self, job_id: str) -> Dict[str, Any]:
        return self.service.job_view(job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.service.cancel(job_id).view()

    def stats(self) -> Dict[str, Any]:
        return self.service.stats()


class HttpClient:
    """Minimal asyncio HTTP/1.1 client for the service wire protocol."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One request/response exchange; returns (status, payload)."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8")
                if body is not None
                else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            status_line = (
                (await reader.readline()).decode("latin-1").strip()
            )
            status = int(status_line.split(" ", 2)[1])
            content_length = 0
            while True:
                line = (
                    (await reader.readline()).decode("latin-1").strip()
                )
                if not line:
                    break
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            raw = (
                await reader.readexactly(content_length)
                if content_length
                else b"{}"
            )
            return status, json.loads(raw)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _raise_for(self, status: int, payload: Dict[str, Any]) -> None:
        if status < 400:
            return
        message = payload.get("error", f"HTTP {status}")
        cls = _ERROR_TYPES.get(payload.get("type", ""), ServiceError)
        if cls is RateLimited:
            raise RateLimited(
                "unknown", float(payload.get("retry_after_s", 0.0))
            )
        exc = cls(message)
        exc.http_status = status
        raise exc

    # ------------------------------------------------------------------
    async def healthz(self) -> Dict[str, Any]:
        status, payload = await self.request("GET", "/healthz")
        self._raise_for(status, payload)
        return payload

    async def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "kind": kind,
            "params": params,
            "tenant": tenant,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        status, payload = await self.request("POST", "/v1/jobs", body)
        self._raise_for(status, payload)
        return payload

    async def view(self, job_id: str) -> Dict[str, Any]:
        status, payload = await self.request(
            "GET", f"/v1/jobs/{job_id}"
        )
        self._raise_for(status, payload)
        return payload

    async def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Long-poll until the job is terminal (202 = still running:
        poll again)."""
        while True:
            path = f"/v1/jobs/{job_id}/wait"
            if timeout_s is not None:
                path += f"?timeout_s={timeout_s}"
            status, payload = await self.request("GET", path)
            self._raise_for(status, payload)
            if status != 202:
                return payload

    async def events(self, job_id: str) -> Dict[str, Any]:
        status, payload = await self.request(
            "GET", f"/v1/jobs/{job_id}/events"
        )
        self._raise_for(status, payload)
        return payload

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        status, payload = await self.request(
            "POST", f"/v1/jobs/{job_id}/cancel"
        )
        self._raise_for(status, payload)
        return payload

    async def stats(self) -> Dict[str, Any]:
        status, payload = await self.request("GET", "/v1/stats")
        self._raise_for(status, payload)
        return payload
