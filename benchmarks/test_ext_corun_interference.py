"""Extension: does co-scheduled work mask or worsen the virus?

The paper's V_MIN protocol runs one virus instance per core -- the
worst case.  Production cores rarely all run the stressor, so how bad
is a *partial* occupancy?  Using the heterogeneous-mix execution path,
the A72 virus runs on one core while the sibling runs idle-ish code, a
SPEC benchmark, or a second virus copy.

Result shape: noise grows monotonically with how virus-like the
sibling's activity is -- a co-running benchmark neither cancels the
virus (its current is incoherent with the resonance) nor matches the
aligned two-copy worst case.  This is why margining uses the
all-cores-virus configuration.
"""

from repro.cpu.program import program_from_mnemonics
from repro.workloads.spec import spec_workload

from benchmarks.conftest import print_header


def test_ext_corun_interference(benchmark, juno_board, a72_em_virus):
    a72 = juno_board.a72
    a72.reset()
    virus = a72_em_virus.virus
    quiet = program_from_mnemonics(
        a72.spec.isa, ["mov"] * 10, name="quiet"
    )
    gcc = spec_workload(a72.spec.isa, "gcc").program

    def run_cases():
        cases = {
            "virus alone (1 core)": a72.run_mixed([virus]),
            "virus + quiet loop": a72.run_mixed([virus, quiet]),
            "virus + gcc": a72.run_mixed([virus, gcc]),
            "virus + virus": a72.run_mixed([virus, virus]),
        }
        return {
            name: (resp.peak_to_peak, resp.max_droop)
            for name, resp in cases.items()
        }

    results = benchmark.pedantic(run_cases, rounds=1, iterations=1)
    print_header(
        "Extension: the A72 virus under different sibling-core loads"
    )
    print(f"{'configuration':<24} {'p2p':>10} {'droop':>10}")
    for name, (p2p, droop) in results.items():
        print(
            f"{name:<24} {p2p * 1e3:>7.1f} mV {droop * 1e3:>7.1f} mV"
        )

    p2p = {k: v[0] for k, v in results.items()}
    droop = {k: v[1] for k, v in results.items()}
    # two aligned copies are the worst case by a clear margin
    assert p2p["virus + virus"] > 1.5 * p2p["virus + gcc"]
    # a co-running benchmark does not cancel the virus
    assert p2p["virus + gcc"] > 0.5 * p2p["virus alone (1 core)"]
    # droop grows with sibling power (IR adds even when incoherent)
    assert droop["virus + gcc"] > droop["virus + quiet loop"]
    assert droop["virus + virus"] >= droop["virus + gcc"]
