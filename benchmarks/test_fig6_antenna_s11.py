"""Figure 6: measured |S11| of the square loop antenna.

Paper: flat response from DC to 1.2 GHz (poorly matched, |S11| ~ 0 dB)
with a self-resonance dip at 2.95 GHz -- confirming the antenna does
not modulate the 50-200 MHz band of interest.
"""

import numpy as np

from repro.em.antenna import SquareLoopAntenna

from benchmarks.conftest import print_header


def regenerate():
    antenna = SquareLoopAntenna()
    freqs = np.linspace(50e6, 5e9, 2000)
    return antenna, freqs, antenna.s11_db(freqs)


def test_fig6_antenna_s11(benchmark):
    antenna, freqs, s11_db = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    print_header("Fig. 6: |S11| of the 3 cm square loop antenna")
    for f in (0.05e9, 0.2e9, 0.5e9, 1.2e9, 2.0e9, 2.95e9, 4.0e9, 5.0e9):
        idx = int(np.argmin(np.abs(freqs - f)))
        print(f"  {f / 1e9:5.2f} GHz   |S11| = {s11_db[idx]:7.2f} dB")
    dip_freq = freqs[np.argmin(s11_db)]
    dip_depth = s11_db.min()
    print(
        f"  self-resonance dip: {dip_freq / 1e9:.2f} GHz at "
        f"{dip_depth:.1f} dB (paper: 2.95 GHz)"
    )

    # dip at 2.95 GHz
    assert dip_freq == np.clip(dip_freq, 2.8e9, 3.1e9)
    assert dip_depth < -8.0
    # flat and unmatched through 1.2 GHz
    band = freqs <= 1.2e9
    assert s11_db[band].min() > -3.0
    # receive response flat across 50-200 MHz
    meas_band = np.linspace(50e6, 200e6, 100)
    gain = antenna.response(meas_band)
    assert 20 * np.log10(gain.max() / gain.min()) < 1.0
