"""Loop-template rendering (Section 3.3).

Individuals are loop bodies dropped into a user-specified template with
pre-initialized registers.  This module renders the full assembly
source a workstation would ship to the target: register initialization
from deterministic seed values, the loop label, the evolved body and
the back-edge.  The text form is also what gets archived alongside a
generated virus.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cpu.isa import RegisterFile
from repro.cpu.program import LoopProgram

_REG_PREFIX = {
    RegisterFile.INT: "r",
    RegisterFile.FP: "f",
    RegisterFile.VEC: "v",
}

_INIT_VALUE = {
    RegisterFile.INT: lambda i: str(0x1234 + 17 * i),
    RegisterFile.FP: lambda i: f"{1.5 + 0.25 * i:.4f}",
    RegisterFile.VEC: lambda i: f"{{{i}, {i + 1}, {i + 2}, {i + 3}}}",
}


def used_registers(program: LoopProgram) -> Dict[RegisterFile, List[int]]:
    """Registers each file actually referenced by the loop body."""
    used: Dict[RegisterFile, set] = {rf: set() for rf in RegisterFile}
    for instr in program.body:
        rf = instr.spec.regfile
        if instr.spec.has_dest:
            used[rf].add(instr.dest)
        used[rf].update(instr.sources)
    return {rf: sorted(regs) for rf, regs in used.items()}


def render_individual_source(
    program: LoopProgram, label: str = "virus_loop"
) -> str:
    """Full assembly-like source for one individual.

    Layout: a data section reserving the L1-resident buffer, register
    pre-initialization (every referenced register gets a deterministic
    seed value so arithmetic never traps), the loop label, the body and
    an unconditional back-edge.
    """
    lines = [
        f"// auto-generated individual: {program.name}",
        f"// isa: {program.isa.name}, loop length: {len(program)}",
        ".data",
        f"buffer: .skip {program.isa.memory_slots * 8}",
        ".text",
        ".global _start",
        "_start:",
    ]
    for rf, regs in used_registers(program).items():
        for reg in regs:
            prefix = _REG_PREFIX[rf]
            lines.append(
                f"    init {prefix}{reg}, {_INIT_VALUE[rf](reg)}"
            )
    lines.append(f"{label}:")
    lines.extend(f"    {instr.assembly()}" for instr in program.body)
    lines.append(f"    b {label}")
    return "\n".join(lines) + "\n"
