"""RetryPolicy backoff math and call_with_retry semantics."""

import random

import pytest

from repro.faults import (
    CorruptArtifact,
    RetryPolicy,
    TransientFault,
    call_with_retry,
)
from repro.obs.events import EventLog, MemorySink


class TestRetryPolicy:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, backoff=2.0, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(k, rng) for k in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_shrinks_within_bounds(self):
        policy = RetryPolicy(
            base_delay_s=0.2, backoff=1.0, max_delay_s=1.0, jitter=0.5
        )
        rng = random.Random(3)
        for k in range(20):
            delay = policy.delay_s(k, rng)
            assert 0.1 <= delay <= 0.2

    def test_jitter_stream_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25, seed=5)
        a = [policy.delay_s(k, policy.jitter_rng()) for k in range(3)]
        b = [policy.delay_s(k, policy.jitter_rng()) for k in range(3)]
        assert a == b


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, exc=TransientFault):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}", site="test.site")
        return "ok"


class TestCallWithRetry:
    POLICY = RetryPolicy(max_retries=2, base_delay_s=0.0)

    def test_retries_to_success(self):
        flaky = Flaky(2)
        assert call_with_retry(flaky, self.POLICY) == "ok"
        assert flaky.calls == 3

    def test_exhausted_budget_reraises(self):
        flaky = Flaky(5)
        with pytest.raises(TransientFault, match="boom 3"):
            call_with_retry(flaky, self.POLICY)
        assert flaky.calls == 3

    def test_non_retryable_fault_propagates_immediately(self):
        flaky = Flaky(1, exc=CorruptArtifact)
        with pytest.raises(CorruptArtifact):
            call_with_retry(flaky, self.POLICY)
        assert flaky.calls == 1

    def test_non_fault_exception_propagates(self):
        def broken():
            raise KeyError("not a fault")

        with pytest.raises(KeyError):
            call_with_retry(broken, self.POLICY)

    def test_emits_fault_and_retry_events(self):
        sink = MemorySink()
        log = EventLog([sink])
        call_with_retry(
            Flaky(1), self.POLICY, event_log=log, scope="unit"
        )
        faults = sink.events("fault_injected")
        retries = sink.events("retry_attempt")
        assert len(faults) == 1
        assert faults[0]["site"] == "test.site"
        assert faults[0]["scope"] == "unit"
        assert len(retries) == 1
        assert retries[0]["attempt"] == 1
        assert retries[0]["max_retries"] == 2

    def test_state_restored_before_each_attempt_and_reraise(self):
        state = {"counter": 0}
        snapshots = []

        def capture():
            return dict(state)

        def restore(saved):
            snapshots.append(dict(state))
            state.clear()
            state.update(saved)

        def consume_then_fail():
            state["counter"] += 10
            raise TransientFault("always", site="s")

        with pytest.raises(TransientFault):
            call_with_retry(
                consume_then_fail,
                self.POLICY,
                capture_state=capture,
                restore_state=restore,
            )
        # Restored after every failed attempt (2 retries + final), and
        # the caller-visible state is exactly the pre-call state.
        assert len(snapshots) == 3
        assert state == {"counter": 0}

    def test_sleep_called_with_policy_delays(self):
        slept = []
        policy = RetryPolicy(
            max_retries=2, base_delay_s=0.1, backoff=2.0,
            max_delay_s=1.0, jitter=0.0,
        )
        call_with_retry(Flaky(2), policy, sleep=slept.append)
        assert slept == [0.1, 0.2]
