"""Coalescer batching rules: contiguous prefix runs only."""

from repro.service.coalescer import Coalescer, CompatKey
from repro.service.jobs import Job, MeasureSpec


def _key(samples=10, state_version=0):
    return CompatKey(
        platform="a53",
        state_version=state_version,
        analyzer_key=("sa", 1.0),
        band=(50e6, 200e6),
        samples=samples,
    )


def _job(n):
    return Job(
        id=f"job-{n}",
        tenant="t",
        spec=MeasureSpec(platform="a53"),
        seq=n,
    )


def test_compatible_run_batches_together():
    c = Coalescer(max_pending_jobs=10, max_batch_items=10)
    for n in range(3):
        c.push(_job(n), _key(), 1)
    batch = c.take_batch()
    assert [j.id for j in batch] == ["job-0", "job-1", "job-2"]
    assert len(c) == 0


def test_incompatible_head_blocks_coalescing_across_it():
    # 0 and 2 share a key but 1 sits between them: batching them
    # together would reorder the analyzer RNG stream, so the run
    # stops at the incompatible job.
    c = Coalescer(max_pending_jobs=10, max_batch_items=10)
    c.push(_job(0), _key(), 1)
    c.push(_job(1), _key(samples=99), 1)
    c.push(_job(2), _key(), 1)
    assert [j.id for j in c.take_batch()] == ["job-0"]
    assert [j.id for j in c.take_batch()] == ["job-1"]
    assert [j.id for j in c.take_batch()] == ["job-2"]


def test_exclusive_jobs_come_out_alone():
    c = Coalescer(max_pending_jobs=10, max_batch_items=10)
    c.push(_job(0), None, 1)
    c.push(_job(1), None, 1)
    assert [j.id for j in c.take_batch()] == ["job-0"]
    assert [j.id for j in c.take_batch()] == ["job-1"]


def test_item_budget_caps_batch_size():
    c = Coalescer(max_pending_jobs=10, max_batch_items=5)
    for n in range(3):
        c.push(_job(n), _key(), 2)
    assert [j.id for j in c.take_batch()] == ["job-0", "job-1"]
    assert [j.id for j in c.take_batch()] == ["job-2"]


def test_state_version_change_splits_batches():
    c = Coalescer(max_pending_jobs=10, max_batch_items=10)
    c.push(_job(0), _key(state_version=0), 1)
    c.push(_job(1), _key(state_version=1), 1)
    assert len(c.take_batch()) == 1
    assert len(c.take_batch()) == 1


def test_remove_drops_queued_job():
    c = Coalescer(max_pending_jobs=10, max_batch_items=10)
    c.push(_job(0), _key(), 1)
    c.push(_job(1), _key(), 1)
    assert c.remove("job-0").id == "job-0"
    assert c.remove("job-0") is None
    assert [j.id for j in c.take_batch()] == ["job-1"]


def test_full_property():
    c = Coalescer(max_pending_jobs=2, max_batch_items=10)
    assert not c.full
    c.push(_job(0), _key(), 1)
    c.push(_job(1), _key(), 1)
    assert c.full


def test_empty_take_returns_empty_list():
    c = Coalescer(max_pending_jobs=2, max_batch_items=10)
    assert c.take_batch() == []
