"""Checkpoint/resume: a killed campaign continues bit-identically.

The contract pinned here is the paper-reproduction guarantee: a GA run
interrupted after generation k and resumed from its checkpoint must
produce exactly the same per-generation score/droop series and the
same champion genome as the same-seed uninterrupted run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation
from repro.io.serialization import load_checkpoint, save_checkpoint


class GenomeHashFitness:
    """Deterministic, instrument-free fitness for engine-level tests."""

    def __call__(self, program) -> FitnessEvaluation:
        score = (hash(program.genome()) % 10_000) / 10_000.0
        return FitnessEvaluation(
            score=score,
            dominant_frequency_hz=1e8 * score,
            max_droop_v=0.05 * score,
            peak_to_peak_v=0.1 * score,
            ipc=1.0,
            loop_frequency_hz=1e7,
        )


class NoisyFitness(GenomeHashFitness):
    """Adds instrument noise from its own RNG, like the EM chain."""

    def __init__(self, seed: int = 5):
        self.rng = np.random.default_rng(seed)

    def __call__(self, program) -> FitnessEvaluation:
        base = super().__call__(program)
        noisy = base.score * (1.0 + 0.01 * self.rng.standard_normal())
        return FitnessEvaluation(
            score=noisy,
            dominant_frequency_hz=base.dominant_frequency_hz,
            max_droop_v=base.max_droop_v,
            peak_to_peak_v=base.peak_to_peak_v,
            ipc=base.ipc,
            loop_frequency_hz=base.loop_frequency_hz,
        )

    def fitness_state(self) -> dict:
        return {"rng": self.rng.bit_generator.state}

    def restore_fitness_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng"]


CONFIG = GAConfig(
    population_size=8, generations=6, loop_length=5, seed=42
)


def _isa():
    from repro.platforms.juno import make_juno_board

    return make_juno_board().a53.spec.isa


@pytest.fixture(scope="module")
def isa():
    return _isa()


def _assert_identical(resumed, uninterrupted):
    np.testing.assert_array_equal(
        resumed.score_series(), uninterrupted.score_series()
    )
    np.testing.assert_array_equal(
        resumed.droop_series(), uninterrupted.droop_series()
    )
    assert (
        resumed.best_program.genome()
        == uninterrupted.best_program.genome()
    )
    assert resumed.best.generation == uninterrupted.best.generation
    assert resumed.evaluations == uninterrupted.evaluations


class TestResumeBitIdentical:
    def test_kill_after_k_then_resume(self, isa, tmp_path):
        ckpt = tmp_path / "ga.ckpt.json"
        full = GAEngine(GenomeHashFitness(), config=CONFIG).run(isa)

        # "Kill" after generation 2 by running a truncated campaign
        # that checkpoints every generation...
        truncated = GAEngine(
            GenomeHashFitness(),
            config=replace(CONFIG, generations=3),
        )
        truncated.run(isa, checkpoint_path=ckpt, checkpoint_every=1)

        # ...then resume to the full horizon from the saved file.
        resume = load_checkpoint(ckpt)
        resumed = GAEngine(GenomeHashFitness(), config=CONFIG).run(
            isa, resume=resume
        )
        _assert_identical(resumed, full)

    def test_resume_with_noisy_measurement_chain(self, isa, tmp_path):
        """fitness_state must carry the instrument RNG across the kill."""
        ckpt = tmp_path / "ga.ckpt.json"
        full = GAEngine(NoisyFitness(), config=CONFIG).run(isa)

        truncated = GAEngine(
            NoisyFitness(),
            config=replace(CONFIG, generations=3),
        )
        truncated.run(isa, checkpoint_path=ckpt, checkpoint_every=1)

        resumed = GAEngine(NoisyFitness(), config=CONFIG).run(
            isa, resume=load_checkpoint(ckpt)
        )
        _assert_identical(resumed, full)

    def test_resume_from_every_checkpoint_cadence(self, isa, tmp_path):
        full = GAEngine(GenomeHashFitness(), config=CONFIG).run(isa)
        for every in (1, 2):
            ckpt = tmp_path / f"every{every}.json"
            GAEngine(
                GenomeHashFitness(),
                config=replace(CONFIG, generations=4),
            ).run(isa, checkpoint_path=ckpt, checkpoint_every=every)
            resumed = GAEngine(
                GenomeHashFitness(), config=CONFIG
            ).run(isa, resume=load_checkpoint(ckpt))
            _assert_identical(resumed, full)


class TestCheckpointFile:
    def test_round_trip_preserves_state(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        engine = GAEngine(NoisyFitness(), config=CONFIG)
        engine.run(isa, checkpoint_path=ckpt, checkpoint_every=2)
        loaded = load_checkpoint(ckpt)
        assert loaded.config == CONFIG
        assert loaded.generation >= 1
        assert len(loaded.population) == CONFIG.population_size
        assert loaded.history[0].generation == 0
        assert loaded.evaluations > 0
        assert loaded.fitness_state is not None
        # saving the loaded checkpoint again is byte-stable
        second = tmp_path / "c2.json"
        save_checkpoint(loaded, second)
        assert second.read_text() == ckpt.read_text()

    def test_atomic_write_leaves_no_staging_files(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        GAEngine(GenomeHashFitness(), config=CONFIG).run(
            isa, checkpoint_path=ckpt, checkpoint_every=1
        )
        # The primary plus up to two rotated generations -- and never a
        # leftover .tmp staging file.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["c.json", "c.json.1", "c.json.2"]
        assert not any(n.endswith(".tmp") for n in names)

    def test_rotated_copies_are_older_generations(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        GAEngine(GenomeHashFitness(), config=CONFIG).run(
            isa, checkpoint_path=ckpt, checkpoint_every=1
        )
        generations = [
            load_checkpoint(p).generation
            for p in (ckpt, tmp_path / "c.json.1", tmp_path / "c.json.2")
        ]
        assert generations == sorted(generations, reverse=True)

    def test_resume_rejects_mismatched_config(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        GAEngine(GenomeHashFitness(), config=CONFIG).run(
            isa, checkpoint_path=ckpt, checkpoint_every=1
        )
        other = replace(CONFIG, mutation_rate=0.5)
        with pytest.raises(ValueError, match="does not match"):
            GAEngine(GenomeHashFitness(), config=other).run(
                isa, resume=load_checkpoint(ckpt)
            )

    def test_resume_excludes_initial_population(self, isa, tmp_path):
        ckpt = tmp_path / "c.json"
        engine = GAEngine(GenomeHashFitness(), config=CONFIG)
        engine.run(isa, checkpoint_path=ckpt, checkpoint_every=1)
        resume = load_checkpoint(ckpt)
        with pytest.raises(ValueError, match="not both"):
            GAEngine(GenomeHashFitness(), config=CONFIG).run(
                isa,
                initial_population=resume.population,
                resume=resume,
            )


class TestEMChainResume:
    """End-to-end: the real EM measurement chain resumes identically."""

    def test_em_virus_resume_identical(self, a53, tmp_path):
        from repro.core.characterizer import EMCharacterizer
        from repro.core.virusgen import VirusGenerator
        from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

        config = GAConfig(
            population_size=6, generations=4, loop_length=5, seed=7
        )

        def make_generator(generations, **kwargs):
            characterizer = EMCharacterizer(
                analyzer=SpectrumAnalyzer(
                    rng=np.random.default_rng(1234)
                ),
                samples=3,
            )
            cfg = replace(config, generations=generations)
            return VirusGenerator(
                a53, characterizer, config=cfg, **kwargs
            )

        full = make_generator(4).generate_em_virus()

        ckpt = tmp_path / "em.ckpt.json"
        make_generator(
            2, checkpoint_path=ckpt, checkpoint_every=1
        ).generate_em_virus()
        resumed = make_generator(4).generate_em_virus(
            resume=load_checkpoint(ckpt)
        )

        _assert_identical(resumed.ga_result, full.ga_result)
        assert resumed.virus.genome() == full.virus.genome()
        assert resumed.max_droop_v == full.max_droop_v
        assert resumed.dominant_frequency_hz == full.dominant_frequency_hz
