"""Unit tests for the workstation/target orchestration (Section 3.2)."""

import pytest

from repro.cpu.program import program_from_mnemonics
from repro.cpu.x86 import X86_ISA
from repro.platforms.target import (
    SimulatedTarget,
    TargetError,
    Workstation,
)


@pytest.fixture
def target(a72):
    return SimulatedTarget(a72)


@pytest.fixture
def arm_loop(a72):
    return program_from_mnemonics(a72.spec.isa, ["add"] * 8 + ["sdiv"])


class TestCompile:
    def test_compile_assigns_unique_ids(self, target, arm_loop):
        b1 = target.compile(arm_loop)
        b2 = target.compile(arm_loop)
        assert b1.binary_id != b2.binary_id

    def test_wrong_isa_fails_compilation(self, target):
        x86_loop = program_from_mnemonics(
            X86_ISA, ["add_rr"] * 4 + ["idiv_rr"]
        )
        with pytest.raises(TargetError, match="targets"):
            target.compile(x86_loop)


class TestRunKill:
    def test_run_and_kill_lifecycle(self, target, arm_loop):
        binary = target.compile(arm_loop)
        run = target.run(binary)
        assert target.running_count == 1
        assert run.max_droop > 0.0
        target.kill(binary)
        assert target.running_count == 0

    def test_kill_is_idempotent(self, target, arm_loop):
        binary = target.compile(arm_loop)
        target.run(binary)
        target.kill(binary)
        target.kill(binary)
        assert target.running_count == 0


class TestWorkstation:
    def test_evaluate_full_sequence(self, target, arm_loop):
        log = []
        station = Workstation(
            target=target,
            measure=lambda run: run.max_droop,
            log=log.append,
        )
        score = station.evaluate(arm_loop)
        assert score > 0.0
        assert target.running_count == 0  # killed after measuring
        assert len(log) == 1

    def test_evaluate_kills_on_measurement_error(self, target, arm_loop):
        def broken(run):
            raise RuntimeError("instrument timeout")

        station = Workstation(target=target, measure=broken)
        with pytest.raises(RuntimeError):
            station.evaluate(arm_loop)
        assert target.running_count == 0


class TestWorkstationRetries:
    def test_transient_failure_retried(self, target, arm_loop):
        from repro.platforms.target import MeasurementError

        attempts = {"count": 0}

        def flaky(run):
            attempts["count"] += 1
            if attempts["count"] < 3:
                raise MeasurementError("GPIB timeout")
            return run.max_droop

        station = Workstation(target=target, measure=flaky, retries=3)
        score = station.evaluate(arm_loop)
        assert score > 0.0
        assert attempts["count"] == 3
        assert target.running_count == 0

    def test_exhausted_retries_raise(self, target, arm_loop):
        from repro.platforms.target import MeasurementError

        def always_fails(run):
            raise MeasurementError("antenna unplugged")

        station = Workstation(
            target=target, measure=always_fails, retries=1
        )
        with pytest.raises(MeasurementError, match="2 attempts"):
            station.evaluate(arm_loop)
        assert target.running_count == 0

    def test_programming_errors_not_retried(self, target, arm_loop):
        attempts = {"count": 0}

        def broken(run):
            attempts["count"] += 1
            raise TypeError("bad handler")

        station = Workstation(target=target, measure=broken, retries=5)
        with pytest.raises(TypeError):
            station.evaluate(arm_loop)
        assert attempts["count"] == 1
