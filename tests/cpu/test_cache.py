"""Unit tests for the cache-miss model and nondeterministic execution."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.cache import CacheModel
from repro.cpu.current import CurrentModel
from repro.cpu.isa import InstructionSet
from repro.cpu.pipeline import InOrderPipeline
from repro.cpu.program import program_from_mnemonics, random_program

WIDE_MEM_ISA = InstructionSet(
    name="armv8-wide-mem",
    specs=ARM_ISA.specs,
    registers=dict(ARM_ISA.registers),
    memory_slots=256,  # 4x the L1-resident window: 75 % misses
)


def missy_program(seed=0):
    rng = np.random.default_rng(seed)
    return random_program(
        WIDE_MEM_ISA,
        30,
        rng,
        pool=(WIDE_MEM_ISA.spec("ldr"), WIDE_MEM_ISA.spec("add")),
    )


class TestCacheModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(l1_slots=0)
        with pytest.raises(ValueError):
            CacheModel(miss_penalty=0)
        with pytest.raises(ValueError):
            CacheModel(miss_penalty=10, penalty_jitter=20)

    def test_hits_are_free(self):
        cache = CacheModel(l1_slots=64)
        rng = np.random.default_rng(0)
        assert cache.extra_latency(0, rng) == 0
        assert cache.extra_latency(63, rng) == 0

    def test_misses_cost_penalty_with_jitter(self):
        cache = CacheModel(l1_slots=64, miss_penalty=60, penalty_jitter=16)
        rng = np.random.default_rng(1)
        extras = [cache.extra_latency(100, rng) for _ in range(200)]
        assert min(extras) >= 60 - 16
        assert max(extras) <= 60 + 16
        assert len(set(extras)) > 1  # the nondeterminism

    def test_zero_jitter_is_deterministic(self):
        cache = CacheModel(l1_slots=64, miss_penalty=40, penalty_jitter=0)
        rng = np.random.default_rng(2)
        assert all(
            cache.extra_latency(90, rng) == 40 for _ in range(10)
        )


class TestNondeterministicPipeline:
    def test_cache_requires_rng(self):
        program = program_from_mnemonics(ARM_ISA, ["ldr", "add"])
        with pytest.raises(ValueError, match="memory_rng"):
            InOrderPipeline().execute(program, cache=CacheModel())

    def test_misses_slow_execution(self):
        program = missy_program()
        pipe = InOrderPipeline(width=2)
        clean = pipe.windowed_schedule(program, iterations=8)
        missy = pipe.windowed_schedule(
            program,
            iterations=8,
            cache=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(3),
        )
        assert missy.cycles > clean.cycles

    def test_misses_introduce_period_jitter(self):
        """Section 3.3's point: misses make the loop period jitter."""
        program = missy_program()
        pipe = InOrderPipeline(width=2)
        clean = pipe.windowed_schedule(program, iterations=10)
        missy = pipe.windowed_schedule(
            program,
            iterations=10,
            cache=CacheModel(l1_slots=64, penalty_jitter=16),
            memory_rng=np.random.default_rng(4),
        )
        assert clean.iteration_jitter_cycles() == pytest.approx(0.0)
        assert missy.iteration_jitter_cycles() > 1.0

    def test_hits_only_program_unaffected(self):
        """Programs confined to the L1 window run identically."""
        program = program_from_mnemonics(
            ARM_ISA, ["ldr", "add", "str", "mul"]
        )
        pipe = InOrderPipeline(width=2)
        clean = pipe.windowed_schedule(program, iterations=8)
        cached = pipe.windowed_schedule(
            program,
            iterations=8,
            cache=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(5),
        )
        assert np.array_equal(clean.issue, cached.issue)

    def test_window_trace_shape_and_energy(self):
        program = missy_program()
        pipe = InOrderPipeline(width=2)
        window = pipe.windowed_schedule(
            program,
            iterations=6,
            cache=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(6),
        )
        model = CurrentModel(
            base_current_a=0.2, amps_per_energy=1.0, frontend_energy=0.1,
            smoothing_cycles=1,
        )
        trace = model.window_trace(window)
        assert trace.size == window.cycles
        charge = float(np.sum(trace - 0.2))
        expected = 6 * sum(i.spec.energy + 0.1 for i in program.body)
        assert charge == pytest.approx(expected, rel=1e-6)


class TestClusterNondeterministicRun:
    def test_runs_differ_between_calls(self, a72):
        program = missy_program()
        rng = np.random.default_rng(7)
        cache = CacheModel(l1_slots=64)
        r1 = a72.run_nondeterministic(program, cache, rng)
        r2 = a72.run_nondeterministic(program, cache, rng)
        assert r1.max_droop != pytest.approx(r2.max_droop, rel=1e-9)
        assert r1.timing_jitter_cycles > 0.0

    def test_metrics_available(self, a72):
        program = missy_program()
        run = a72.run_nondeterministic(
            program, CacheModel(l1_slots=64), np.random.default_rng(8)
        )
        assert run.ipc > 0.0
        assert run.loop_frequency_hz > 0.0
        assert run.peak_to_peak > 0.0
