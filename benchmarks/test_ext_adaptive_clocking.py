"""Extension: adaptive clocking vs power gating (Section 6's warning).

Paper: *"Power-gating not only reduces the available useful capacitance
... but also makes the frequency of voltage-noise oscillations higher.
This has detrimental implications on voltage-noise mitigation
mechanisms such as adaptive-clocking, that are extremely sensitive to
response-latency."*

A closed-loop adaptive-clocking controller (trip threshold, response
latency, clock-stretch throttle) runs against a resonant burst on the
A72 rail.  Sweeping the controller's response latency per power-gating
state locates the *critical latency* where mitigation collapses -- and
it is smaller with fewer powered cores, quantifying the paper's
warning.
"""

import numpy as np

from repro.mitigation import (
    AdaptiveClock,
    AdaptiveClockConfig,
    resonant_burst,
)
from repro.pdn.models import PDNModel, CORTEX_A72_PDN

from benchmarks.conftest import print_header

LATENCIES = [0.0, 3e-9, 6e-9, 9e-9, 12e-9, 15e-9, 18e-9, 21e-9, 24e-9]


def controller(pdn, cores, latency):
    return AdaptiveClock(
        pdn,
        cores,
        AdaptiveClockConfig(
            trip_threshold_v=0.02,
            response_latency_s=latency,
            throttle_factor=0.5,
            hold_s=60e-9,
        ),
    )


def test_ext_adaptive_clocking_vs_gating(benchmark):
    pdn = PDNModel(CORTEX_A72_PDN)

    def run_study():
        table = {}
        for cores in (2, 1):
            f_res = pdn.measured_resonance_hz(cores)
            burst = resonant_burst(
                pdn, cores, base_a=1.0, swing_a=2.5,
                start_s=50e-9, duration_s=3.0 / f_res,
            )
            improvements = [
                controller(pdn, cores, lat).improvement_v(burst, 220e-9)
                for lat in LATENCIES
            ]
            table[cores] = (f_res, improvements)
        return table

    table = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print_header(
        "Extension: adaptive-clocking droop reduction vs response latency"
    )
    header = "latency:" + "".join(
        f" {lat * 1e9:5.0f}ns" for lat in LATENCIES
    )
    print(" " * 22 + header)
    crit = {}
    for cores, (f_res, improvements) in table.items():
        label = f"{cores} cores ({f_res / 1e6:.0f} MHz)"
        print(
            f"{label:<22} gain:  "
            + " ".join(f"{i * 1e3:5.1f}" for i in improvements)
        )
        ref = improvements[0]
        kept = [
            lat
            for lat, imp in zip(LATENCIES, improvements)
            if imp >= 0.5 * ref
        ]
        crit[cores] = max(kept) if kept else 0.0
    print(
        f"  critical latency: {crit[2] * 1e9:.0f} ns with 2 cores "
        f"powered vs {crit[1] * 1e9:.0f} ns with 1 -- power gating "
        f"shrinks the mitigation's latency budget"
    )

    # mitigation works at zero latency for both states
    for cores, (_, improvements) in table.items():
        assert improvements[0] > 0.015
    # and its latency budget shrinks when cores are gated off
    assert crit[1] < crit[2]
