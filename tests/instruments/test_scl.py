"""Unit tests for the synthetic current load (SCL) block."""

import numpy as np
import pytest

from repro.instruments.scl import (
    SCLSweepResult,
    SyntheticCurrentLoad,
    square_wave_current,
)
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


@pytest.fixture(scope="module")
def pdn():
    return PDNModel(CORTEX_A72_PDN)


class TestSquareWave:
    def test_duty_cycle(self):
        wave = square_wave_current(1.0, samples_per_period=100, duty=0.25)
        assert np.sum(wave > 0.5) == 25

    def test_baseline_offset(self):
        wave = square_wave_current(
            1.0, samples_per_period=64, baseline_a=0.5
        )
        assert wave.min() == pytest.approx(0.5)
        assert wave.max() == pytest.approx(1.5)

    def test_invalid_duty_rejected(self):
        with pytest.raises(ValueError):
            square_wave_current(1.0, duty=0.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            square_wave_current(1.0, samples_per_period=4)


class TestSCLSweep:
    def test_sweep_finds_resonance(self, pdn):
        """Fig. 8: SCL sweep peaks at the first-order resonance."""
        scl = SyntheticCurrentLoad(amplitude_a=1.0)
        freqs = np.arange(50e6, 101e6, 1e6)
        result = scl.sweep(pdn.solver(2), freqs)
        assert result.resonance_hz() == pytest.approx(67e6, abs=3e6)

    def test_single_core_resonance_higher(self, pdn):
        """Fig. 8: one powered core moves the peak to 80-86 MHz."""
        scl = SyntheticCurrentLoad(amplitude_a=1.0)
        freqs = np.arange(50e6, 121e6, 1e6)
        two = scl.sweep(pdn.solver(2), freqs).resonance_hz()
        one = scl.sweep(pdn.solver(1), freqs).resonance_hz()
        assert one > two
        assert 78e6 < one < 90e6

    def test_amplitude_scales_response(self, pdn):
        small = SyntheticCurrentLoad(amplitude_a=0.5)
        large = SyntheticCurrentLoad(amplitude_a=1.0)
        r_small = small.response_at(pdn.solver(2), 67e6)
        r_large = large.response_at(pdn.solver(2), 67e6)
        assert r_large.peak_to_peak == pytest.approx(
            2 * r_small.peak_to_peak, rel=1e-6
        )

    def test_invalid_frequency_rejected(self, pdn):
        with pytest.raises(ValueError):
            SyntheticCurrentLoad().response_at(pdn.solver(2), 0.0)

    def test_rows_export(self, pdn):
        scl = SyntheticCurrentLoad()
        result = scl.sweep(pdn.solver(2), [60e6, 67e6])
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0][0] == 60e6
