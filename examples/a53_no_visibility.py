#!/usr/bin/env python3
"""The paper's motivating scenario: a CPU with NO voltage visibility.

The Cortex-A53 cluster on the Juno board has no OC-DSO, no Kelvin pads,
no measurement points at all -- direct dI/dt virus generation is
impossible there.  This example shows the EM methodology working around
that (Section 6):

1. Generate a dI/dt virus for the A53 purely from antenna readings.
2. Compare its V_MIN against SPEC-like benchmarks: the virus fails
   ~tens of mV above everything else (Fig. 14).
3. Study power-gating: gating cores off removes die capacitance, so
   the resonance climbs from ~76.5 MHz (4 cores) to ~97 MHz (1 core)
   and the noise amplitude grows (Fig. 13).

Run:  python examples/a53_no_visibility.py
"""

import numpy as np

from repro import EMCharacterizer, ResonanceSweep, VirusGenerator
from repro import make_juno_board
from repro.ga import GAConfig
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.platforms.base import NoiseVisibility
from repro.stability import VminTester, failure_model_for
from repro.workloads import idle_workload, spec_suite
from repro.workloads.base import ProgramWorkload


def main() -> None:
    juno = make_juno_board()
    a53 = juno.a53
    assert a53.spec.visibility is NoiseVisibility.NONE
    print(
        f"Target: {a53.name} ({a53.spec.num_cores} cores, "
        f"{a53.clock_hz / 1e6:.0f} MHz, voltage visibility: "
        f"{a53.spec.visibility.value})"
    )

    characterizer = EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(7)),
        samples=10,
    )

    # ------------------------------------------------------------------
    # 1. EM-driven virus generation -- the only option on this cluster.
    # ------------------------------------------------------------------
    print("\n== GA run driven purely by EM amplitude (Fig. 12) ==")
    generator = VirusGenerator(
        a53,
        characterizer,
        config=GAConfig(
            population_size=30, generations=30, loop_length=50, seed=2
        ),
    )
    summary = generator.generate_em_virus()
    print(
        f"  converged: dominant {summary.dominant_frequency_hz / 1e6:.1f} "
        f"MHz (paper: 75 MHz), IPC {summary.ipc:.2f}, loop period "
        f"{summary.loop_period_s * 1e9:.1f} ns"
    )

    # ------------------------------------------------------------------
    # 2. V_MIN comparison (Fig. 14).
    # ------------------------------------------------------------------
    print("\n== V_MIN tests at 950 MHz, four active cores (Fig. 14) ==")
    tester = VminTester(a53, failure_model_for("cortex-a53"), seed=11)
    virus = ProgramWorkload("em-virus", summary.virus, jitter_seed=None)
    workloads = (
        [idle_workload()]
        + spec_suite(a53.spec.isa, ["gcc", "mcf", "milc", "namd", "lbm"])
        + [virus]
    )
    results = tester.compare(
        workloads,
        virus_repeats=10,
        benchmark_repeats=2,
        virus_names=("em-virus",),
    )
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(
            f"  {name:10s}  Vmin {res.vmin:.3f} V   "
            f"droop@nominal {res.max_droop_at_nominal * 1e3:5.1f} mV"
        )
    best_bench = max(
        v.vmin for k, v in results.items() if k != "em-virus"
    )
    print(
        f"  EM virus stands {1e3 * (results['em-virus'].vmin - best_bench):.0f}"
        f" mV above the best benchmark (paper: ~50 mV)"
    )

    # ------------------------------------------------------------------
    # 3. Power-gating study (Fig. 13).
    # ------------------------------------------------------------------
    print("\n== Resonance vs powered cores (Fig. 13) ==")
    sweep = ResonanceSweep(characterizer, samples_per_point=5)
    clocks = [950e6 - k * 25e6 for k in range(0, 34)]
    for result in sweep.power_gating_study(a53, clocks_hz=clocks):
        label = "C0" + "".join(
            f"C{i}" for i in range(1, result.powered_cores)
        )
        amps = max(p.amplitude_w for p in result.points)
        print(
            f"  {label:10s} resonance {result.resonance_hz() / 1e6:5.1f} "
            f"MHz, peak amplitude {amps:.2e} W"
        )
    print(
        "  -> fewer powered cores: less die capacitance, higher resonance"
        " frequency, larger noise (Section 6)."
    )


if __name__ == "__main__":
    main()
