"""Fitness functions: what the GA maximizes.

The paper's key move is replacing direct voltage feedback with the
spectrum analyzer's EM amplitude (RMS of 30 sweeps of the band maximum,
Section 3.1b).  The voltage-feedback variants (maximum droop and
peak-to-peak as seen by the OC-DSO or a bench probe) are kept for
validation and the ``a72OC-DSO`` / ``amdOsc`` baselines of Table 2.

Every fitness callable returns a :class:`FitnessEvaluation` carrying
side measurements (dominant frequency, droop, IPC, loop frequency) that
the per-generation records of Figs. 7/12/17 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cpu.program import LoopProgram
from repro.em.radiation import DieRadiator
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.probes import DifferentialProbe
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.platforms.base import Cluster, ClusterRun


@dataclass
class FitnessEvaluation:
    """Score plus the side measurements recorded per individual."""

    score: float
    dominant_frequency_hz: float
    max_droop_v: float
    peak_to_peak_v: float
    ipc: float
    loop_frequency_hz: float

    def __float__(self) -> float:
        return self.score


def _common_metrics(
    run: ClusterRun, band: Tuple[float, float]
) -> Tuple[float, float, float, float]:
    try:
        dominant = run.response.dominant_frequency_hz(band)
    except ValueError:
        dominant = 0.0
    return (
        dominant,
        run.max_droop,
        run.peak_to_peak,
        run.ipc,
    )


@dataclass
class ClusterFitness:
    """Bind a ``(cluster, program)`` fitness to one cluster.

    The GA engine expects a single-argument ``program -> evaluation``
    callable.  Using this dataclass instead of a lambda keeps the bound
    fitness picklable, so ``GAConfig.workers > 1`` can ship it to
    worker processes.
    """

    fitness: Callable[[Cluster, LoopProgram], "FitnessEvaluation"]
    cluster: Cluster

    def __call__(self, program: LoopProgram) -> "FitnessEvaluation":
        return self.fitness(self.cluster, program)

    def evaluate_batch(
        self, programs: Sequence[LoopProgram]
    ) -> List["FitnessEvaluation"]:
        """Evaluate a batch, in order.

        Delegates to the wrapped fitness's batched path (one chain call
        for the whole shard) when it has one; falls back to a plain
        loop otherwise.
        """
        batch = getattr(self.fitness, "evaluate_batch", None)
        if batch is not None:
            return list(batch(self.cluster, programs))
        return [self.fitness(self.cluster, p) for p in programs]

    # Checkpoint protocol: delegate measurement-chain RNG state to the
    # wrapped fitness so GA checkpoints capture it (see GACheckpoint).
    def fitness_state(self) -> Optional[dict]:
        capture = getattr(self.fitness, "fitness_state", None)
        return capture() if capture is not None else None

    def restore_fitness_state(self, state: Optional[dict]) -> None:
        restore = getattr(self.fitness, "restore_fitness_state", None)
        if restore is not None:
            restore(state)

    # Warm-cache protocol: persistent GA workers (repro.ga.workers)
    # call warm_up() once at pool start and session_stats() after each
    # shard; delegate both, binding this fitness's cluster so the
    # session can prime its operating-state snapshot.
    def warm_up(self) -> Optional[dict]:
        warm = getattr(self.fitness, "warm_up", None)
        return warm(cluster=self.cluster) if warm is not None else None

    def session_stats(self) -> Optional[dict]:
        stats = getattr(self.fitness, "session_stats", None)
        return stats() if stats is not None else None


@dataclass
class EMAmplitudeFitness:
    """Maximize the spectrum analyzer's banded EM amplitude.

    The measurement chain is: run the individual on the cluster,
    radiate the die-current harmonics, receive through antenna +
    coupling, and score the RMS-of-30-sweeps band maximum.
    """

    analyzer: SpectrumAnalyzer
    radiator: DieRadiator = None
    band: Tuple[float, float] = (50.0e6, 200.0e6)
    samples: int = 30
    active_cores: Optional[int] = None
    # Optional cache-miss nondeterminism (the Section 3.3 ablation):
    # with a cache model attached, every evaluation of the same
    # individual produces a different noisy score.
    cache_model: object = None
    memory_rng: object = None
    # Optional shared repro.chain.SimulationSession; None builds a
    # private one lazily.  Sessions are process-local: pickling for
    # worker dispatch drops it so each worker warms its own.
    session: object = None
    # Optional repro.faults.FaultInjector armed at the chain's stage
    # boundaries.  Unlike the session it survives pickling, so worker
    # processes inherit the fault plan (with fresh visit counters).
    fault_injector: object = None

    def __post_init__(self) -> None:
        if self.radiator is None:
            self.radiator = DieRadiator()
        if self.cache_model is not None and self.memory_rng is None:
            raise ValueError("cache_model requires a memory_rng")

    def _chain_path(self):
        path = getattr(self, "_path", None)
        if path is None:
            from repro.chain import SignalPath

            path = SignalPath.em_chain(
                self.radiator,
                self.analyzer,
                session=self.session,
                injector=self.fault_injector,
            )
            self._path = path
        return path

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_path", None)
        state["session"] = None
        return state

    def warm_up(self, cluster: object = None) -> Optional[dict]:
        """Build the chain and prime its session caches, once.

        Persistent GA workers call this at pool start: the
        :class:`~repro.chain.session.SimulationSession` (created here
        if the pickling round-trip dropped it), the stage pipeline,
        and -- given a ``cluster`` -- the operating-state snapshot and
        analyzer band mask are all derived before the first shard
        arrives, so no generation pays cold-start costs.  Everything
        warmed is a pure RNG-free derivation; the analyzer's noise
        stream is untouched (bit-identity contract).  Returns the
        session's stats snapshot for the ``worker_warmup`` event.
        """
        if self.session is None:
            from repro.chain import SimulationSession

            self.session = SimulationSession()
        self._chain_path()
        self.session.band_mask(self.analyzer, self.band)
        return self.session.warm_up(cluster=cluster)

    def session_stats(self) -> Optional[dict]:
        """Current session cache counters (None before any session).

        Reads through the built chain when one exists: with
        ``session=None`` the :class:`SignalPath` owns a private
        session, and that is the one doing the caching.
        """
        path = getattr(self, "_path", None)
        if path is not None:
            return path.session.stats.snapshot()
        if self.session is None:
            return None
        return self.session.stats.snapshot()

    # Checkpoint protocol: the spectrum analyzer's noise RNG advances
    # with every fresh measurement, so bit-identical resume requires
    # carrying its state across the checkpoint boundary.
    def fitness_state(self) -> dict:
        state = {"analyzer_rng": self.analyzer.rng.bit_generator.state}
        if self.memory_rng is not None:
            state["memory_rng"] = self.memory_rng.bit_generator.state
        return state

    def restore_fitness_state(self, state: Optional[dict]) -> None:
        if not state:
            return
        if "analyzer_rng" in state:
            self.analyzer.rng.bit_generator.state = state["analyzer_rng"]
        if "memory_rng" in state and self.memory_rng is not None:
            self.memory_rng.bit_generator.state = state["memory_rng"]

    def __call__(
        self, cluster: Cluster, program: LoopProgram
    ) -> FitnessEvaluation:
        return self.evaluate_batch(cluster, [program])[0]

    def evaluate_batch(
        self, cluster: Cluster, programs: Sequence[LoopProgram]
    ) -> List[FitnessEvaluation]:
        """Score a batch of programs with one chain call.

        Results (and RNG stream consumption, per generator) are
        bit-identical to evaluating the programs one at a time: the
        execute stage draws only from ``memory_rng`` and the receive
        stage only from the analyzer RNG, each in batch order.
        """
        from repro.chain import ChainItem, ChainRequest

        request = ChainRequest(
            cluster=cluster,
            items=[
                ChainItem(
                    program=p,
                    active_cores=self.active_cores,
                    cache_model=self.cache_model,
                    memory_rng=self.memory_rng,
                )
                for p in programs
            ],
            band=self.band,
            samples=self.samples,
            want_amplitude=True,
            want_trace=False,
        )
        result = self._chain_path().run(request)
        return [self._from_chain_item(item) for item in result.items]

    def _from_chain_item(self, item) -> FitnessEvaluation:
        try:
            dominant = item.response.dominant_frequency_hz(self.band)
        except ValueError:
            dominant = 0.0
        # The paper reports the GA's dominant frequency from the SA peak
        # (the chain's banded emission peak when no trace was swept).
        peak_freq = item.peak_frequency_hz or 0.0
        return FitnessEvaluation(
            score=item.amplitude_w,
            dominant_frequency_hz=peak_freq or dominant,
            max_droop_v=item.max_droop,
            peak_to_peak_v=item.peak_to_peak,
            ipc=item.ipc,
            loop_frequency_hz=item.loop_frequency_hz,
        )


@dataclass
class MaxDroopFitness:
    """Maximize the scope-measured maximum voltage droop (OC-DSO path)."""

    oscilloscope: Oscilloscope
    band: Tuple[float, float] = (50.0e6, 200.0e6)
    active_cores: Optional[int] = None
    capture_s: float = 2.0e-6

    def __call__(
        self, cluster: Cluster, program: LoopProgram
    ) -> FitnessEvaluation:
        run = cluster.run(program, active_cores=self.active_cores)
        capture = self.oscilloscope.capture(run.response, self.capture_s)
        dominant, droop, p2p, ipc = _common_metrics(run, self.band)
        return FitnessEvaluation(
            score=capture.max_droop(),
            dominant_frequency_hz=dominant,
            max_droop_v=droop,
            peak_to_peak_v=p2p,
            ipc=ipc,
            loop_frequency_hz=run.loop_frequency_hz,
        )


@dataclass
class PeakToPeakFitness:
    """Maximize probe-measured peak-to-peak amplitude (Kelvin-pad path)."""

    probe: DifferentialProbe
    band: Tuple[float, float] = (50.0e6, 200.0e6)
    active_cores: Optional[int] = None
    capture_s: float = 2.0e-6

    def __call__(
        self, cluster: Cluster, program: LoopProgram
    ) -> FitnessEvaluation:
        run = cluster.run(program, active_cores=self.active_cores)
        capture = self.probe.capture(run.response, self.capture_s)
        dominant, droop, p2p, ipc = _common_metrics(run, self.band)
        return FitnessEvaluation(
            score=capture.peak_to_peak(),
            dominant_frequency_hz=dominant,
            max_droop_v=droop,
            peak_to_peak_v=p2p,
            ipc=ipc,
            loop_frequency_hz=run.loop_frequency_hz,
        )
