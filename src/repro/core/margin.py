"""EM-based voltage-margin prediction (the paper's future work (c)).

Section 10 proposes *"voltage margin prediction based on EM emanations
during conventional workload execution"*: instead of undervolting a
production system to find each workload's V_MIN, listen to its EM
signature while it runs at nominal voltage and predict how much margin
it needs.

The predictor is calibrated with a handful of (EM amplitude, measured
V_MIN) pairs -- e.g. from a one-off characterization of a reference
unit -- and then predicts V_MIN for unseen workloads from a single
non-intrusive EM measurement.  The model is linear in the *amplitude*
domain (square root of banded EM power): droop is proportional to the
resonant current amplitude, which is what the antenna measures, so
``V_MIN ~ a + b * sqrt(P_em)`` captures the physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.platforms.base import Cluster
from repro.workloads.base import Workload


@dataclass
class MarginCalibrationPoint:
    """One calibration observation."""

    workload_name: str
    em_amplitude_w: float
    vmin: float


@dataclass
class MarginPrediction:
    """Predicted stability point for one workload."""

    workload_name: str
    em_amplitude_w: float
    predicted_vmin: float

    def predicted_margin(self, nominal_voltage: float) -> float:
        return nominal_voltage - self.predicted_vmin


class EMMarginPredictor:
    """Predict per-workload V_MIN from nominal-voltage EM readings."""

    def __init__(self, characterizer: Optional[EMCharacterizer] = None):
        self.characterizer = characterizer or EMCharacterizer()
        self._coeffs: Optional[Tuple[float, float]] = None
        self._points: List[MarginCalibrationPoint] = []

    # ------------------------------------------------------------------
    def measure_amplitude(
        self, cluster: Cluster, workload: Workload
    ) -> float:
        """Banded EM amplitude of a workload running at nominal voltage.

        Purely passive: the workload runs untouched, the antenna
        listens.  Uses the analyzer's RMS-of-N metric on the emission
        of the steady execution.
        """
        run = workload.run(cluster)
        emission = self.characterizer.radiator.emission(run.response)
        return self.characterizer.analyzer.max_amplitude(
            emission,
            band=self.characterizer.band,
            samples=self.characterizer.samples,
        )

    # ------------------------------------------------------------------
    def fit(
        self, points: Sequence[MarginCalibrationPoint]
    ) -> Tuple[float, float]:
        """Least-squares fit of ``vmin = a + b * sqrt(amplitude)``."""
        if len(points) < 2:
            raise ValueError("need at least two calibration points")
        self._points = list(points)
        x = np.sqrt([p.em_amplitude_w for p in points])
        y = np.array([p.vmin for p in points])
        b, a = np.polyfit(x, y, 1)
        self._coeffs = (float(a), float(b))
        return self._coeffs

    @property
    def is_fitted(self) -> bool:
        return self._coeffs is not None

    @property
    def coefficients(self) -> Tuple[float, float]:
        if self._coeffs is None:
            raise RuntimeError("predictor is not fitted")
        return self._coeffs

    def calibration_residual_v(self) -> float:
        """RMS V_MIN error over the calibration set."""
        a, b = self.coefficients
        errors = [
            p.vmin - (a + b * np.sqrt(p.em_amplitude_w))
            for p in self._points
        ]
        return float(np.sqrt(np.mean(np.square(errors))))

    # ------------------------------------------------------------------
    def predict(
        self, workload_name: str, em_amplitude_w: float
    ) -> MarginPrediction:
        """V_MIN prediction from a single EM amplitude reading."""
        a, b = self.coefficients
        if em_amplitude_w < 0.0:
            raise ValueError("EM amplitude must be non-negative")
        vmin = a + b * float(np.sqrt(em_amplitude_w))
        return MarginPrediction(
            workload_name=workload_name,
            em_amplitude_w=em_amplitude_w,
            predicted_vmin=vmin,
        )

    def predict_workload(
        self, cluster: Cluster, workload: Workload
    ) -> MarginPrediction:
        """Measure the workload's EM signature and predict its V_MIN."""
        amplitude = self.measure_amplitude(cluster, workload)
        return self.predict(workload.name, amplitude)
