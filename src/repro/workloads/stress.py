"""Stress/stability tests: Prime95-like, AMD stability test, idle.

Prime95's torture test and AMD Overdrive's stability test are
*power* viruses: they saturate the FP/SIMD units with steady dataflow.
Sustained high current produces a large IR drop but almost no dI/dt --
there is no alternation between high- and low-current phases, so the
resonance never rings.  The paper's Fig. 18 punchline (both pass for 24
hours at voltages where the EM virus crashes instantly) follows from
exactly that structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cpu.isa import InstructionClass, InstructionSet
from repro.cpu.program import LoopProgram, random_instruction
from repro.workloads.base import IdleWorkload, ProgramWorkload


def _saturating_program(
    isa: InstructionSet,
    name: str,
    classes: tuple,
    length: int,
    seed: int,
) -> LoopProgram:
    """A loop of mostly-independent pipelined instructions.

    Destinations rotate through the register file so consecutive
    instructions rarely depend on each other: the pipeline stays full
    and the current stays flat and high.
    """
    rng = np.random.default_rng(seed)
    specs = []
    for cls in classes:
        specs.extend(
            s
            for s in isa.by_class(cls)
            # Exclude non-pipelined long-latency ops: a stress test keeps
            # the units busy, it does not stall them.
            if s.recip_throughput == 1
        )
    if not specs:
        raise ValueError(f"{name}: no pipelined specs in requested classes")
    body = []
    for i in range(length):
        spec = specs[int(rng.integers(len(specs)))]
        instr = random_instruction(spec, isa, rng)
        n_regs = isa.registers[spec.regfile]
        if spec.has_dest:
            # Rotate destinations; read from distant registers.
            instr = type(instr)(
                spec=spec,
                dest=i % n_regs,
                sources=tuple(
                    (i + 3 + 5 * k) % n_regs
                    for k in range(spec.num_sources)
                ),
                address=instr.address,
            )
        body.append(instr)
    return LoopProgram(isa=isa, body=tuple(body), name=name)


def prime95_like(isa: InstructionSet, length: int = 192) -> ProgramWorkload:
    """Prime95 torture test: saturated SIMD/FP FFT-like kernels."""
    return ProgramWorkload(
        "prime95",
        _saturating_program(
            isa,
            "prime95",
            (InstructionClass.SIMD, InstructionClass.FLOAT),
            length,
            seed=9521,
        ),
    )


def amd_stability_test(
    isa: InstructionSet, length: int = 224
) -> ProgramWorkload:
    """AMD Overdrive's built-in stability test: mixed sustained load."""
    return ProgramWorkload(
        "amd-stability",
        _saturating_program(
            isa,
            "amd-stability",
            (
                InstructionClass.SIMD,
                InstructionClass.FLOAT,
                InstructionClass.INT_SHORT,
            ),
            length,
            seed=2501,
        ),
    )


def idle_workload(seed: int = 123) -> IdleWorkload:
    """CPU idle baseline (leftmost bar of Figs. 10/14)."""
    return IdleWorkload(seed=seed)
