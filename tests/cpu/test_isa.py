"""Unit tests for the instruction-set model."""

import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import (
    ExecutionUnit,
    Instruction,
    InstructionClass,
    InstructionSet,
    InstructionSpec,
    RegisterFile,
)
from repro.cpu.x86 import X86_ISA


class TestInstructionSpec:
    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError, match="latency"):
            InstructionSpec(
                mnemonic="bad",
                iclass=InstructionClass.INT_SHORT,
                unit=ExecutionUnit.ALU,
                latency=0,
                recip_throughput=1,
                energy=1.0,
            )

    def test_throughput_bounded_by_latency(self):
        with pytest.raises(ValueError, match="recip_throughput"):
            InstructionSpec(
                mnemonic="bad",
                iclass=InstructionClass.INT_SHORT,
                unit=ExecutionUnit.ALU,
                latency=2,
                recip_throughput=3,
                energy=1.0,
            )

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError, match="energy"):
            InstructionSpec(
                mnemonic="bad",
                iclass=InstructionClass.INT_SHORT,
                unit=ExecutionUnit.ALU,
                latency=1,
                recip_throughput=1,
                energy=-1.0,
            )


class TestInstruction:
    def test_requires_dest_when_spec_has_one(self):
        spec = ARM_ISA.spec("add")
        with pytest.raises(ValueError, match="dest"):
            Instruction(spec=spec, dest=None, sources=(1, 2))

    def test_source_count_enforced(self):
        spec = ARM_ISA.spec("add")
        with pytest.raises(ValueError, match="sources"):
            Instruction(spec=spec, dest=0, sources=(1,))

    def test_memory_ops_need_address(self):
        spec = ARM_ISA.spec("ldr")
        with pytest.raises(ValueError, match="address"):
            Instruction(spec=spec, dest=0, sources=())

    def test_assembly_rendering(self):
        add = Instruction(spec=ARM_ISA.spec("add"), dest=1, sources=(2, 3))
        assert add.assembly() == "add r1, r2, r3"
        ldr = Instruction(
            spec=ARM_ISA.spec("ldr"), dest=4, sources=(), address=7
        )
        assert "[mem+7]" in ldr.assembly()
        fadd = Instruction(spec=ARM_ISA.spec("fadd"), dest=0, sources=(1, 2))
        assert fadd.assembly().startswith("fadd f0")


class TestInstructionSet:
    def test_duplicate_mnemonics_rejected(self):
        spec = ARM_ISA.spec("add")
        with pytest.raises(ValueError, match="duplicate"):
            InstructionSet(name="dup", specs=(spec, spec))

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            ARM_ISA.spec("vmax")

    def test_by_class_partitions_specs(self):
        total = sum(
            len(ARM_ISA.by_class(cls)) for cls in InstructionClass
        )
        assert total == len(ARM_ISA.specs)

    def test_subset_restricts_pool(self):
        sub = ARM_ISA.subset(["add", "mul"])
        assert [s.mnemonic for s in sub.specs] == ["add", "mul"]
        assert sub.registers == ARM_ISA.registers


class TestISATables:
    """Section 3.3's diversity requirements on both pools."""

    @pytest.mark.parametrize("isa", [ARM_ISA, X86_ISA], ids=["arm", "x86"])
    def test_pool_has_short_and_long_latency(self, isa):
        latencies = [s.latency for s in isa.specs]
        assert min(latencies) == 1
        assert max(latencies) >= 8

    @pytest.mark.parametrize("isa", [ARM_ISA, X86_ISA], ids=["arm", "x86"])
    def test_pool_has_float_and_simd(self, isa):
        assert isa.by_class(InstructionClass.FLOAT)
        assert isa.by_class(InstructionClass.SIMD)

    def test_arm_has_explicit_memory_ops(self):
        assert ARM_ISA.by_class(InstructionClass.MEM)
        assert not ARM_ISA.by_class(InstructionClass.INT_SHORT_MEM)

    def test_x86_uses_memory_operand_forms(self):
        assert X86_ISA.by_class(InstructionClass.INT_SHORT_MEM)
        assert not X86_ISA.by_class(InstructionClass.MEM)

    @pytest.mark.parametrize("isa", [ARM_ISA, X86_ISA], ids=["arm", "x86"])
    def test_branches_are_dummy_unconditional(self, isa):
        for spec in isa.by_class(InstructionClass.BRANCH):
            assert not spec.has_dest
            assert spec.num_sources == 0

    @pytest.mark.parametrize("isa", [ARM_ISA, X86_ISA], ids=["arm", "x86"])
    def test_nonpipelined_ops_create_stalls(self, isa):
        """DIV/SQRT must block their unit (low-current windows)."""
        stalling = [
            s for s in isa.specs if s.recip_throughput == s.latency > 1
        ]
        assert stalling, "pool needs at least one non-pipelined op"

    def test_fsqrt_present_for_stalling(self):
        """Section 8.3: viruses use FSQRT to stall FP units."""
        assert ARM_ISA.spec("fsqrt").recip_throughput > 8
