"""Figure 7: EM-driven GA run on the Cortex-A72.

Paper: peak EM amplitude of the best individual grows generation over
generation; the re-measured OC-DSO droop grows with it; the dominant
frequency locks onto 67 MHz (the resonance) from the early generations.
"""

import numpy as np

from repro.instruments.spectrum_analyzer import watts_to_dbm

from benchmarks.conftest import print_header


def test_fig7_ga_convergence(benchmark, juno_board, a72_em_virus):
    summary = benchmark.pedantic(
        lambda: a72_em_virus, rounds=1, iterations=1
    )
    print_header(
        "Fig. 7: EM-driven GA on Cortex-A72 "
        f"({summary.generations} generations)"
    )
    print(
        f"{'gen':>4} {'EM amplitude':>14} {'droop':>10} "
        f"{'dominant':>12}"
    )
    history = summary.ga_result.history
    for rec in history[:: max(1, len(history) // 10)]:
        dbm = float(watts_to_dbm(np.array(rec.best.score)))
        print(
            f"{rec.generation:>4} {dbm:>10.1f} dBm "
            f"{rec.best.max_droop_v * 1e3:>7.1f} mV "
            f"{rec.best.dominant_frequency_hz / 1e6:>9.1f} MHz"
        )
    scores = summary.ga_result.score_series()
    droops = summary.ga_result.droop_series()
    doms = summary.ga_result.dominant_frequency_series()

    print(
        f"  final: dominant {summary.dominant_frequency_hz / 1e6:.1f} MHz"
        f" (paper: 67 MHz), droop {summary.max_droop_v * 1e3:.1f} mV"
    )

    # amplitude grows substantially over the run
    assert scores[-1] > 2.0 * scores[0]
    # droop tracks the EM metric (the central correlation claim)
    assert np.corrcoef(scores, droops)[0, 1] > 0.6
    assert droops[-1] > droops[0]
    # dominant frequency converges onto the resonance and stays there
    late = doms[len(doms) // 2:]
    assert np.all(np.abs(late - 67e6) < 8e6)
    assert abs(summary.dominant_frequency_hz - 67e6) < 6e6
