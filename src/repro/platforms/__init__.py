"""Experimental platform models (Table 1 of the paper).

- :mod:`repro.platforms.base` -- the :class:`Cluster` abstraction: a
  group of identical cores on one voltage domain with clock, voltage
  and power-gating controls, wired to its PDN model.
- :mod:`repro.platforms.juno` -- ARM Juno R2: Cortex-A72 (dual core,
  OC-DSO + SCL) and Cortex-A53 (quad core, no voltage visibility)
  clusters behind an SCP-style control interface.
- :mod:`repro.platforms.amd` -- AMD Athlon II X4 645 desktop with
  Overdrive-style voltage/frequency control and Kelvin sense pads.
- :mod:`repro.platforms.registry` -- the Table 1 platform matrix.
- :mod:`repro.platforms.target` -- the workstation/target split of
  Section 3.2 (compile/run/kill protocol over a transport).
"""

from repro.platforms.base import (
    Cluster,
    ClusterRun,
    ClusterSpec,
    NoiseVisibility,
)
from repro.platforms.gpu import GPUCard, make_gpu_card
from repro.platforms.juno import JunoBoard, make_juno_board
from repro.platforms.amd import AMDDesktop, make_amd_desktop
from repro.platforms.registry import PLATFORM_TABLE, PlatformInfo
from repro.platforms.target import SimulatedTarget, Workstation

__all__ = [
    "Cluster",
    "ClusterRun",
    "ClusterSpec",
    "NoiseVisibility",
    "JunoBoard",
    "make_juno_board",
    "GPUCard",
    "make_gpu_card",
    "AMDDesktop",
    "make_amd_desktop",
    "PLATFORM_TABLE",
    "PlatformInfo",
    "SimulatedTarget",
    "Workstation",
]
