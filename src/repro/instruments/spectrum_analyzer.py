"""Swept spectrum analyzer model.

Models the essentials the methodology depends on: a start/stop span
divided into RBW-wide bins, emission lines landing in bins through a
Gaussian resolution filter, a noise floor with sweep-to-sweep spread,
power readout in dBm, peak markers, and the paper's fitness metric --
the root-mean-square of the band maximum over 30 sweeps (Section 3.1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.em.antenna import SquareLoopAntenna
from repro.em.propagation import AmbientEnvironment, NearFieldCoupling
from repro.em.radiation import EmissionSpectrum

_PORT_OHMS = 50.0


def watts_to_dbm(power_w: np.ndarray) -> np.ndarray:
    """Convert watts to dBm, clamping to a -200 dBm floor."""
    return 10.0 * np.log10(np.maximum(power_w, 1e-23) / 1.0e-3)


def dbm_to_watts(dbm: float) -> float:
    return 1.0e-3 * 10.0 ** (dbm / 10.0)


@dataclass
class SpectrumTrace:
    """One displayed sweep: bin centers and per-bin power."""

    frequencies_hz: np.ndarray
    power_dbm: np.ndarray

    def peak(
        self, band: Optional[Sequence[float]] = None
    ) -> Tuple[float, float]:
        """(frequency_hz, dbm) of the peak marker, optionally banded."""
        freqs, dbm = self.frequencies_hz, self.power_dbm
        if band is not None:
            mask = (freqs >= band[0]) & (freqs <= band[1])
            if not mask.any():
                raise ValueError(f"no bins inside band {band}")
            freqs, dbm = freqs[mask], dbm[mask]
        idx = int(np.argmax(dbm))
        return float(freqs[idx]), float(dbm[idx])

    def power_at(self, frequency_hz: float) -> float:
        """Displayed power (dBm) of the bin containing ``frequency_hz``.

        Raises :class:`ValueError` when ``frequency_hz`` falls outside
        the trace's bin range (beyond half a bin past the outer
        centers): the nearest-bin readout would otherwise silently
        report an unrelated frequency.
        """
        freqs = self.frequencies_hz
        if freqs.size == 0:
            raise ValueError("empty trace has no bins")
        half_step = (
            (freqs[-1] - freqs[0]) / (2.0 * (freqs.size - 1))
            if freqs.size > 1
            else 0.0
        )
        if not (
            freqs[0] - half_step <= frequency_hz <= freqs[-1] + half_step
        ):
            raise ValueError(
                f"frequency {frequency_hz / 1e6:.3f} MHz outside trace "
                f"span {freqs[0] / 1e6:.3f}-{freqs[-1] / 1e6:.3f} MHz"
            )
        idx = int(np.argmin(np.abs(freqs - frequency_hz)))
        return float(self.power_dbm[idx])


@dataclass
class SpectrumAnalyzer:
    """Swept analyzer receiving through an antenna at some distance.

    Parameters mirror front-panel settings: span via ``start_hz`` /
    ``stop_hz`` and ``rbw_hz``.  The receive chain is
    ``emission -> near-field coupling -> antenna response -> 50-ohm
    port power``.
    """

    start_hz: float = 50.0e6
    stop_hz: float = 200.0e6
    rbw_hz: float = 100.0e3
    dwell_s_per_bin: float = 4.0e-4
    antenna: SquareLoopAntenna = field(default_factory=SquareLoopAntenna)
    coupling: NearFieldCoupling = field(default_factory=NearFieldCoupling)
    environment: AmbientEnvironment = field(
        default_factory=AmbientEnvironment
    )
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def __post_init__(self) -> None:
        if self.stop_hz <= self.start_hz:
            raise ValueError("stop frequency must exceed start frequency")
        if self.rbw_hz <= 0.0:
            raise ValueError("RBW must be positive")
        # Accumulated (simulated) measurement wall time.  The paper's
        # GA is bound by instrument latency (~18 s per 30-sample
        # measurement over the full 150 MHz span), which is why
        # Section 5.3(b) proposes narrowing the measured band.
        self.total_measurement_time_s = 0.0
        self._bin_cache: dict = {}

    def _settings_key(self) -> Tuple[float, float, float]:
        return (self.start_hz, self.stop_hz, self.rbw_hz)

    def bin_centers(self) -> np.ndarray:
        """Bin-center grid for the present span settings (memoized)."""
        key = self._settings_key()
        centers = self._bin_cache.get(key)
        if centers is None:
            n = max(
                2, int(round((self.stop_hz - self.start_hz) / self.rbw_hz))
            )
            centers = self.start_hz + (np.arange(n) + 0.5) * (
                (self.stop_hz - self.start_hz) / n
            )
            self._bin_cache[key] = centers
        return centers

    # ------------------------------------------------------------------
    def banded_lines(self, emission: EmissionSpectrum) -> EmissionSpectrum:
        """Emission lines close enough to the span to land in a bin."""
        return emission.band(
            self.start_hz - 4.0 * self.rbw_hz,
            self.stop_hz + 4.0 * self.rbw_hz,
        )

    def line_gains(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Coupling x antenna amplitude gain per emission line.

        Exposed separately so a :class:`repro.chain.SimulationSession`
        can cache the propagation scaling per harmonic grid.
        """
        return self.coupling.gain() * self.antenna.response(frequencies_hz)

    def received_power_w(
        self,
        emission: EmissionSpectrum,
        gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Noiseless per-bin signal power for an emission spectrum.

        ``gains`` optionally supplies precomputed :meth:`line_gains` for
        ``banded_lines(emission)`` (must align with those lines).
        """
        centers = self.bin_centers()
        power = np.zeros_like(centers)
        lines = self.banded_lines(emission)
        if lines.frequencies_hz.size == 0:
            return power
        gain = gains if gains is not None else self.line_gains(
            lines.frequencies_hz
        )
        v_rx = lines.amplitudes * gain
        p_lines = v_rx * v_rx / (2.0 * _PORT_OHMS)
        # Gaussian RBW filter: each line spreads into nearby bins.
        sigma = self.rbw_hz / 2.355  # FWHM = RBW
        for f, p in zip(lines.frequencies_hz, p_lines):
            w = np.exp(-0.5 * ((centers - f) / sigma) ** 2)
            total = w.sum()
            if total > 0.0:
                power += p * w / total
        return power

    def sweep_time_s(
        self, band: Optional[Sequence[float]] = None
    ) -> float:
        """Wall time of one sweep over ``band`` (default: full span)."""
        centers = self.bin_centers()
        if band is not None:
            mask = (centers >= band[0]) & (centers <= band[1])
            bins = int(mask.sum())
        else:
            bins = centers.size
        return bins * self.dwell_s_per_bin

    def trace_from_power(self, signal_w: np.ndarray) -> SpectrumTrace:
        """One displayed sweep from precomputed per-bin signal power.

        Adds a fresh noise-floor realization (advancing the analyzer
        RNG exactly as :meth:`sweep` would) and accounts the sweep's
        dwell time.
        """
        centers = self.bin_centers()
        noise = self.environment.sample_noise_w(centers.shape, self.rng)
        self.total_measurement_time_s += self.sweep_time_s()
        return SpectrumTrace(centers, watts_to_dbm(signal_w + noise))

    def sweep(self, emission: EmissionSpectrum) -> SpectrumTrace:
        """One sweep: signal power plus a fresh noise-floor realization."""
        return self.trace_from_power(self.received_power_w(emission))

    def max_amplitude_from_power(
        self,
        signal_w: np.ndarray,
        band: Optional[Sequence[float]] = None,
        samples: int = 30,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """RMS-of-``samples`` band maximum from precomputed signal power.

        The noise draws and time accounting are identical to
        :meth:`max_amplitude`; splitting the deterministic propagation
        (:meth:`received_power_w`) from the noisy readout lets the chain
        layer compute the signal once per item and reuse it for both
        the amplitude metric and the displayed trace.  ``mask``
        optionally supplies the precomputed boolean bin mask for
        ``band`` (must match what :meth:`bin_centers` would produce).
        """
        band = band or (self.start_hz, self.stop_hz)
        if mask is None:
            centers = self.bin_centers()
            mask = (centers >= band[0]) & (centers <= band[1])
        if not mask.any():
            raise ValueError(f"no bins inside band {band}")
        signal = signal_w[mask]
        maxima = np.empty(samples)
        for i in range(samples):
            noise = self.environment.sample_noise_w(signal.shape, self.rng)
            maxima[i] = np.max(signal + noise)
        # A banded measurement only dwells on the requested bins.
        self.total_measurement_time_s += samples * self.sweep_time_s(band)
        return float(np.sqrt(np.mean(maxima**2)))

    def max_amplitude(
        self,
        emission: EmissionSpectrum,
        band: Optional[Sequence[float]] = None,
        samples: int = 30,
    ) -> float:
        """The paper's GA metric: RMS over ``samples`` sweeps of the band max.

        Returned in linear power units (watts); use
        :func:`watts_to_dbm` for display.  The RMS-of-30 averaging is
        what makes the metric stable enough to drive the GA.
        """
        return self.max_amplitude_from_power(
            self.received_power_w(emission), band=band, samples=samples
        )

    def max_amplitude_dbm(
        self,
        emission: EmissionSpectrum,
        band: Optional[Sequence[float]] = None,
        samples: int = 30,
    ) -> float:
        return float(
            watts_to_dbm(np.array(self.max_amplitude(emission, band, samples)))
        )
