"""Figure 14: V_MIN measurements on the Cortex-A53.

Paper: with four active cores at 950 MHz, the EM virus's V_MIN stands
~50 mV above every SPEC2006 benchmark -- on a cluster where no direct
voltage feedback exists to generate a virus any other way.
"""

from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload

from benchmarks.conftest import print_header

SPEC_SLICE = [
    "perlbench", "bzip2", "gcc", "mcf", "milc", "namd", "gobmk",
    "soplex", "povray", "hmmer", "sjeng", "libquantum", "h264ref",
    "lbm", "omnetpp", "astar", "sphinx3", "xalancbmk",
]


def test_fig14_vmin_a53(benchmark, juno_board, a53_em_virus):
    a53 = juno_board.a53
    a53.reset()
    tester = VminTester(a53, failure_model_for("cortex-a53"), seed=14)
    workloads = (
        [idle_workload()]
        + spec_suite(a53.spec.isa, SPEC_SLICE)
        + [ProgramWorkload("a53em", a53_em_virus.virus, jitter_seed=None)]
    )

    def regenerate():
        return tester.compare(
            workloads,
            virus_repeats=30,
            benchmark_repeats=2,
            virus_names=("a53em",),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 14: V_MIN on Cortex-A53, 4 cores at 950 MHz")
    print(f"{'workload':<12} {'Vmin':>8}")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(f"{name:<12} {res.vmin:>6.3f} V")

    virus = results["a53em"]
    best_bench = max(
        v.vmin for k, v in results.items() if k != "a53em"
    )
    gap = virus.vmin - best_bench
    print(
        f"  EM virus V_MIN gap over best benchmark: {gap * 1e3:.0f} mV "
        f"(paper: ~50 mV)"
    )
    # the virus clearly stands out
    assert gap >= 0.02
    # ~150 mV margin from the 1.0 V nominal (Table 2)
    margin = 1.0 - virus.vmin
    print(f"  a53em margin: {margin * 1e3:.0f} mV (paper: 150 mV)")
    assert 0.10 <= margin <= 0.20
