"""Figure 17: EM-amplitude-driven GA on the AMD CPU.

Paper: the GA's EM amplitude climbs generation over generation and the
dominant frequency converges to 77 MHz, in excellent agreement with the
78 MHz sweep result -- establishing cross-ISA generality.
"""

import numpy as np

from repro.instruments.spectrum_analyzer import watts_to_dbm

from benchmarks.conftest import print_header


def test_fig17_ga_amd(benchmark, amd_em_virus):
    summary = benchmark.pedantic(
        lambda: amd_em_virus, rounds=1, iterations=1
    )
    print_header("Fig. 17: EM-driven GA on the Athlon II X4 645")
    print(f"{'gen':>4} {'EM amplitude':>14} {'dominant':>12}")
    history = summary.ga_result.history
    for rec in history[:: max(1, len(history) // 10)]:
        dbm = float(watts_to_dbm(np.array(rec.best.score)))
        print(
            f"{rec.generation:>4} {dbm:>10.1f} dBm "
            f"{rec.best.dominant_frequency_hz / 1e6:>9.1f} MHz"
        )
    scores = summary.ga_result.score_series()
    print(
        f"  final dominant: {summary.dominant_frequency_hz / 1e6:.1f} MHz"
        f" (paper: 77 MHz; sweep: 78 MHz)"
    )
    # same trend as the Juno GAs: amplitude grows until convergence
    assert scores[-1] > 2.0 * scores[0]
    assert abs(summary.dominant_frequency_hz - 78e6) < 9e6
    # Section 8.2: at 3.1 GHz, dominant and loop frequency coincide
    assert summary.loop_frequency_hz > 0.0
    ratio = summary.dominant_frequency_hz / summary.loop_frequency_hz
    assert ratio == round(ratio) or ratio < 1.2
