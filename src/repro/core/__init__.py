"""The paper's contribution: EM-driven PDN characterization.

:class:`~repro.core.characterizer.EMCharacterizer` wires a platform's
clusters to the antenna + spectrum analyzer receive chain and exposes
the paper's four capabilities:

1. monitor large-amplitude periodic voltage noise non-intrusively,
2. generate dI/dt stress tests with an EM-amplitude-driven GA
   (:class:`~repro.core.virusgen.VirusGenerator`),
3. measure the first-order PDN resonance quickly with the
   clock-modulated loop sweep (:mod:`repro.core.resonance`), and
4. detect resonance shifts from power-gating and monitor several
   voltage domains at once.
"""

from repro.core.characterizer import EMCharacterizer, EMMeasurement
from repro.core.resonance import ResonanceSweep, SweepPoint, SweepResult
from repro.core.virusgen import VirusGenerator
from repro.core.results import GARunSummary, MultiDomainSpectrum
from repro.core.margin import (
    EMMarginPredictor,
    MarginCalibrationPoint,
    MarginPrediction,
)
from repro.core.tamper import (
    ResonanceSignature,
    TamperDetector,
    TamperVerdict,
)
from repro.core.monitor import EmergencyMonitor, MonitorLog, MonitorSample

__all__ = [
    "EMCharacterizer",
    "EMMeasurement",
    "ResonanceSweep",
    "SweepPoint",
    "SweepResult",
    "VirusGenerator",
    "GARunSummary",
    "MultiDomainSpectrum",
    "EMMarginPredictor",
    "MarginCalibrationPoint",
    "MarginPrediction",
    "ResonanceSignature",
    "TamperDetector",
    "TamperVerdict",
    "EmergencyMonitor",
    "MonitorLog",
    "MonitorSample",
]
