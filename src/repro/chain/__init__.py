"""Batch-first measurement chain (CPU -> PDN -> EM -> analyzer).

The paper's methodology is one fixed signal path -- instruction loop ->
load current -> PDN response -> radiated EM -> analyzer amplitude.
This package reifies it once as a composable, batch-first pipeline:

- :class:`Stage` implementations for each physical step, composed into
  a :class:`SignalPath`;
- batch types (:class:`ChainRequest` carrying N programs x M cluster
  operating points, :class:`ChainResult` with per-item responses /
  emissions / amplitudes) so a whole resonance sweep or GA generation
  is one chain call;
- a :class:`SimulationSession` owning cross-call caches keyed by the
  cluster state version (clock, voltage, powered cores).

The high-level entry points (``EMCharacterizer.measure``,
``ResonanceSweep.run``, the GA fitness evaluators, ``VirusGenerator``)
are thin shims over this layer, pinned bit-identical to the historical
per-call implementations by ``tests/chain/test_equivalence.py``.
"""

from repro.chain.path import SignalPath
from repro.chain.session import SessionStats, SimulationSession
from repro.chain.stages import (
    ChainBatch,
    CurrentStage,
    ExecuteStage,
    PDNStage,
    PropagateStage,
    RadiateStage,
    ReceiveStage,
    Stage,
    resolve_request,
)
from repro.chain.types import (
    ChainItem,
    ChainItemResult,
    ChainRequest,
    ChainResult,
    OperatingPoint,
)

__all__ = [
    "ChainBatch",
    "ChainItem",
    "ChainItemResult",
    "ChainRequest",
    "ChainResult",
    "CurrentStage",
    "ExecuteStage",
    "OperatingPoint",
    "PDNStage",
    "PropagateStage",
    "RadiateStage",
    "ReceiveStage",
    "SessionStats",
    "SignalPath",
    "SimulationSession",
    "Stage",
    "resolve_request",
]
