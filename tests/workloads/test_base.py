"""Unit tests for the workload protocol implementations."""

import numpy as np
import pytest

from repro.cpu.program import program_from_mnemonics
from repro.workloads.base import IdleWorkload, ProgramWorkload


class TestIdleWorkload:
    def test_idle_noise_is_tiny(self, a72):
        run = IdleWorkload().run(a72)
        assert run.max_droop < 0.01
        assert run.peak_to_peak < 0.005

    def test_idle_scales_with_powered_cores(self, a53):
        four = IdleWorkload().run(a53)
        a53.power_gate(1)
        one = IdleWorkload().run(a53)
        # fewer powered cores -> less quiescent current -> less IR droop
        assert one.max_droop < four.max_droop

    def test_idle_deterministic(self, a72):
        a = IdleWorkload(seed=5).run(a72)
        b = IdleWorkload(seed=5).run(a72)
        assert a.max_droop == pytest.approx(b.max_droop)


class TestProgramWorkload:
    @pytest.fixture
    def hilo_program(self, a72):
        return program_from_mnemonics(a72.spec.isa, ["add"] * 8 + ["sdiv"])

    def test_deterministic_virus_mode(self, a72, hilo_program):
        """jitter_seed=None reproduces the raw periodic response."""
        wl = ProgramWorkload("virus", hilo_program, jitter_seed=None)
        direct = a72.run(hilo_program)
        via_wl = wl.run(a72)
        assert via_wl.max_droop == pytest.approx(direct.max_droop)
        assert via_wl.peak_to_peak == pytest.approx(direct.peak_to_peak)

    def test_jitter_reduces_resonant_buildup(self, a72, hilo_program):
        """A jittered (benchmark-like) run of the same loop rings less.

        The effect only shows when the loop is tuned to the resonance:
        at 540 MHz clock the 8-cycle loop lands on 67.5 MHz.
        """
        a72.set_clock(540e6)
        virus = ProgramWorkload("v", hilo_program, jitter_seed=None)
        bench = ProgramWorkload("b", hilo_program, jitter_seed=7)
        assert bench.run(a72).peak_to_peak < virus.run(a72).peak_to_peak

    def test_jitter_is_deterministic_per_seed(self, a72, hilo_program):
        w = ProgramWorkload("b", hilo_program, jitter_seed=7)
        assert w.run(a72).max_droop == pytest.approx(
            w.run(a72).max_droop
        )

    def test_compression_limits_swing(self, a72, hilo_program):
        tight = ProgramWorkload(
            "t", hilo_program, jitter_seed=7, activity_compression=0.2
        )
        loose = ProgramWorkload(
            "l", hilo_program, jitter_seed=7, activity_compression=1.0
        )
        assert tight.run(a72).peak_to_peak < loose.run(a72).peak_to_peak

    def test_repr_contains_name(self, hilo_program):
        assert "hi" in repr(ProgramWorkload("hi", hilo_program))
