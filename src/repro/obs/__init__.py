"""Run-harness observability: structured telemetry and provenance.

The paper's GA campaigns run for days against real instruments; the
simulated equivalents here are likewise the dominant wall-clock cost.
This package gives every long-running path the observability of a
training stack:

- :mod:`repro.obs.events` -- :class:`EventLog`, a timestamped JSONL
  event stream with pluggable sinks (file, stderr, in-memory).
- :mod:`repro.obs.timing` -- lightweight per-kernel wall-time
  accumulation (scheduler, current model, transient solver) that the
  GA engine folds into its per-generation events.
- :mod:`repro.obs.manifest` -- :class:`RunManifest`, the
  machine-readable provenance record written next to every artifact.
- :mod:`repro.obs.context` -- :class:`RunContext`, the shared
  experiment context (cluster, seed, event log, workers) accepted by
  every ``.run()`` entry point.
"""

from repro.obs.context import RunContext
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    JsonlFileSink,
    MemorySink,
    StderrSink,
)
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest
from repro.obs.timing import (
    KernelTimings,
    collect_kernel_timings,
    kernel_section,
    timed_kernel,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "JsonlFileSink",
    "MemorySink",
    "StderrSink",
    "KernelTimings",
    "collect_kernel_timings",
    "kernel_section",
    "timed_kernel",
    "MANIFEST_FILENAME",
    "RunManifest",
    "RunContext",
]
