"""Convert issue schedules into per-cycle supply-current traces.

The current model assigns every instruction a charge packet: pipelined
instructions dump their switching energy in the ``recip_throughput``
cycles after issue (a one-cycle burst for simple ALU ops), while
non-pipelined long-latency instructions (DIV, SQRT) spread a similar
total charge across their whole latency -- so a DIV *shadow* is a
low-current window.  A constant per-core background covers clock tree
and leakage, and each issued instruction adds a small front-end
(fetch/decode) packet at its issue cycle.

The trace covers exactly one steady-state loop iteration and wraps
charge that spills past the iteration boundary back to the start, so
tiling the trace reproduces the true periodic waveform.

The production :meth:`CurrentModel.trace` / ``window_trace`` deposit
every charge packet with a single ``np.add.at`` scatter over the packed
per-program arrays (:meth:`repro.cpu.program.LoopProgram.static_arrays`)
and smooth with a circular convolution; the ``*_reference`` variants
keep the per-instruction formulation as the golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cpu.pipeline import Schedule
from repro.obs.timing import timed_kernel


@dataclass(frozen=True)
class CurrentModel:
    """Charge-to-current conversion constants for one core.

    Attributes
    ----------
    base_current_a:
        Quiescent per-core current (clock tree, leakage) in amperes.
    amps_per_energy:
        Conversion from an instruction-spec energy unit (delivered over
        one cycle) to amperes.
    frontend_energy:
        Extra energy charged at the issue cycle of every instruction
        (fetch/decode/rename activity).
    """

    base_current_a: float = 0.25
    amps_per_energy: float = 0.6
    frontend_energy: float = 0.25
    smoothing_cycles: int = 4

    @timed_kernel("cpu.current.trace")
    def trace(self, schedule: Schedule) -> np.ndarray:
        """Per-cycle current (amperes) over one steady loop iteration."""
        cycles = schedule.cycles
        st = schedule.program.static_arrays()
        k = self.amps_per_energy
        t0 = np.asarray(schedule.issue_offsets, dtype=np.int64)
        trace = np.full(cycles, self.base_current_a, dtype=float)
        # Energy packets: every instruction deposits energy/duration
        # over its `recip_throughput` cycles, wrapped into the period.
        idx = (np.repeat(t0, st.recip_arr) + st.deposit_offsets) % cycles
        np.add.at(trace, idx, np.repeat(st.per_cycle_energy, st.recip_arr) * k)
        # Front-end packet at each issue cycle.
        np.add.at(
            trace,
            t0 % cycles,
            np.full(t0.size, self.frontend_energy * k),
        )
        return self._smooth(trace)

    def trace_reference(self, schedule: Schedule) -> np.ndarray:
        """Per-instruction formulation of :meth:`trace` (golden reference)."""
        cycles = schedule.cycles
        trace = np.full(cycles, self.base_current_a, dtype=float)
        k = self.amps_per_energy
        for instr, t0 in zip(
            schedule.program.body, schedule.issue_offsets
        ):
            spec = instr.spec
            duration = spec.recip_throughput
            per_cycle = spec.energy / duration * k
            for c in range(duration):
                trace[(t0 + c) % cycles] += per_cycle
            trace[t0 % cycles] += self.frontend_energy * k
        return self._smooth_reference(trace)

    def _smooth(self, trace: np.ndarray) -> np.ndarray:
        """Charge smoothing over a few cycles (pipeline overlap + local
        decoupling): single-cycle spikes are averaged away while
        multi-cycle high/low alternation -- the structure a dI/dt virus
        is built from -- passes through nearly unattenuated."""
        w = self.smoothing_cycles
        if w <= 1 or trace.size < 2:
            return trace
        # Circular moving average via one valid-mode convolution over a
        # wrap-padded copy; `np.take(..., mode="wrap")` keeps traces
        # shorter than the window correct.
        pad = np.take(trace, np.arange(-(w - 1), trace.size), mode="wrap")
        return np.convolve(pad, np.ones(w), mode="valid") / w

    def _smooth_reference(self, trace: np.ndarray) -> np.ndarray:
        """Index-matrix gather formulation of :meth:`_smooth`."""
        w = self.smoothing_cycles
        if w <= 1 or trace.size < 2:
            return trace
        n = trace.size
        # True circular moving average (robust for traces shorter than
        # the window): element i averages samples i-w+1 .. i mod n.
        idx = (np.arange(n)[:, None] - np.arange(w)[None, :]) % n
        return trace[idx].mean(axis=1)

    def mean_current(self, schedule: Schedule) -> float:
        return float(np.mean(self.trace(schedule)))

    @timed_kernel("cpu.current.window_trace")
    def window_trace(self, windowed) -> np.ndarray:
        """Per-cycle current over a full multi-iteration window.

        Used with :class:`repro.cpu.pipeline.WindowedSchedule` when
        cache-miss nondeterminism makes single-period extraction
        impossible.  Charge deposits land at absolute cycles; nothing
        wraps (the window is long enough by construction), and deposits
        that would overrun the window end are truncated.
        """
        cycles = windowed.cycles
        st = windowed.program.static_arrays()
        k = self.amps_per_energy
        iterations = windowed.iterations
        t0 = windowed.issue.reshape(-1).astype(np.int64)
        reps = np.tile(st.recip_arr, iterations)
        idx = np.repeat(t0, reps) + np.tile(st.deposit_offsets, iterations)
        vals = np.tile(np.repeat(st.per_cycle_energy, st.recip_arr) * k,
                       iterations)
        keep = idx < cycles
        trace = np.full(cycles, self.base_current_a, dtype=float)
        np.add.at(trace, idx[keep], vals[keep])
        np.add.at(
            trace, t0, np.full(t0.size, self.frontend_energy * k)
        )
        return self._smooth(trace)

    def window_trace_reference(self, windowed) -> np.ndarray:
        """Per-instruction formulation of :meth:`window_trace`."""
        trace = np.full(windowed.cycles, self.base_current_a, dtype=float)
        k = self.amps_per_energy
        body = windowed.program.body
        for it in range(windowed.iterations):
            for j, instr in enumerate(body):
                spec = instr.spec
                t0 = int(windowed.issue[it, j])
                duration = spec.recip_throughput
                per_cycle = spec.energy / duration * k
                end = min(t0 + duration, windowed.cycles)
                trace[t0:end] += per_cycle
                trace[t0] += self.frontend_energy * k
        return self._smooth_reference(trace)


def loop_current_trace(
    schedule: Schedule,
    model: Optional[CurrentModel] = None,
) -> np.ndarray:
    """Convenience wrapper: current trace with a default model."""
    return (model or CurrentModel()).trace(schedule)
