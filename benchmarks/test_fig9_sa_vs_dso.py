"""Figure 9: spectrum analyzer vs FFT of OC-DSO voltage samples.

Paper: while the EM dI/dt virus runs, both instruments show their
dominant spike at exactly 67 MHz and agree on secondary spikes such as
the virus's loop-frequency line.
"""

import numpy as np

from repro.analysis.spectra import spikes_agree
from benchmarks.conftest import paper_characterizer, print_header


def test_fig9_instrument_agreement(benchmark, juno_board, a72_em_virus):
    a72 = juno_board.a72
    a72.reset()
    char = paper_characterizer(99)

    def regenerate():
        run = a72.run(a72_em_virus.virus)
        capture = juno_board.oc_dso.capture(run.response, 6e-6)
        return run, capture, char.spectrum_vs_scope_fft(
            run, capture, spike_count=4
        )

    run, capture, spikes = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    print_header(
        "Fig. 9: spectrum analyzer vs OC-DSO FFT during the EM virus"
    )
    print("  spectrum analyzer spikes:")
    for f, dbm in spikes["spectrum_analyzer"]:
        print(f"    {f / 1e6:7.2f} MHz  {dbm:7.1f} dBm")
    print("  OC-DSO FFT spikes:")
    for f, amp in spikes["oc_dso_fft"]:
        print(f"    {f / 1e6:7.2f} MHz  {amp * 1e3:7.2f} mV")

    sa_dom = max(spikes["spectrum_analyzer"], key=lambda p: p[1])[0]
    dso_dom = max(spikes["oc_dso_fft"], key=lambda p: p[1])[0]
    print(
        f"  dominant: SA {sa_dom / 1e6:.2f} MHz vs "
        f"DSO {dso_dom / 1e6:.2f} MHz"
    )
    # exactly aligned dominant spikes (within bin/RBW resolution)
    assert abs(sa_dom - dso_dom) < 1.5e6
    # secondary agreement: at least two common spikes
    assert spikes_agree(
        spikes["spectrum_analyzer"],
        spikes["oc_dso_fft"],
        tolerance_hz=2e6,
        require=2,
    )
    # the virus's loop-frequency line is among the DSO spikes
    loop_f = run.loop_frequency_hz
    dso_freqs = [f for f, _ in spikes["oc_dso_fft"]]
    harmonics = [abs(f - k * loop_f) for f in dso_freqs for k in (1, 2, 3, 4, 5, 6)]
    assert min(harmonics) < 2e6
