"""Waveform and margin metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def max_droop(voltages: np.ndarray, nominal: float) -> float:
    """Largest dip below nominal, in volts."""
    v = np.asarray(voltages, dtype=float)
    if v.size == 0:
        raise ValueError("empty waveform")
    return float(nominal - v.min())


def peak_to_peak(voltages: np.ndarray) -> float:
    v = np.asarray(voltages, dtype=float)
    if v.size == 0:
        raise ValueError("empty waveform")
    return float(v.max() - v.min())


def rms(values: np.ndarray) -> float:
    """Root mean square (the paper's 30-sample EM metric core)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty sample set")
    return float(np.sqrt(np.mean(v * v)))


def dominant_frequency(
    samples: np.ndarray,
    sample_rate_hz: float,
    band: Optional[Tuple[float, float]] = None,
) -> float:
    """Frequency of the largest FFT bin of the AC component."""
    v = np.asarray(samples, dtype=float)
    if v.size < 4:
        raise ValueError("waveform too short for FFT")
    spectrum = np.abs(np.fft.rfft(v - v.mean()))
    freqs = np.fft.rfftfreq(v.size, d=1.0 / sample_rate_hz)
    mask = freqs > 0.0
    if band is not None:
        mask &= (freqs >= band[0]) & (freqs <= band[1])
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        raise ValueError("no FFT bins in requested band")
    return float(freqs[idx[np.argmax(spectrum[idx])]])


def voltage_margin(nominal_v: float, vmin: float) -> float:
    """Table 2's voltage margin: nominal minus virus V_MIN."""
    return nominal_v - vmin
