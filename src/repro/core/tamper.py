"""PDN tamper detection via resonance-signature drift (Section 10 (a)).

The paper suggests on-the-fly PDN characterization for tampering
detection: hardware implants, interposers or swapped decoupling
capacitors change the board's electrical signature, and the first-order
resonance frequency is a sensitive, non-intrusively measurable
fingerprint of it.

:class:`ResonanceSignature` records the resonance per power-gating
state on a known-good unit; :class:`TamperDetector` re-measures a unit
under test with the fast EM sweep and flags frequency drift beyond the
enrollment tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.resonance import ResonanceSweep
from repro.platforms.base import Cluster


@dataclass(frozen=True)
class ResonanceSignature:
    """Golden resonance fingerprint: powered cores -> frequency (Hz)."""

    cluster_name: str
    resonances_hz: Dict[int, float]

    def states(self) -> Sequence[int]:
        return tuple(sorted(self.resonances_hz))


@dataclass
class TamperVerdict:
    """Outcome of one tamper check."""

    tampered: bool
    worst_drift_fraction: float
    drifts: Dict[int, float]  # powered cores -> fractional drift

    def __bool__(self) -> bool:
        return self.tampered


class TamperDetector:
    """Enroll a golden unit, then screen units by resonance drift.

    ``tolerance`` is the fractional frequency drift allowed before a
    unit is flagged (the fast sweep's own granularity is a few percent,
    so the default tolerance is set above that).
    """

    def __init__(
        self,
        sweep: ResonanceSweep,
        tolerance: float = 0.06,
        core_counts: Optional[Sequence[int]] = None,
    ):
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.sweep = sweep
        self.tolerance = tolerance
        self.core_counts = core_counts

    def _measure(
        self, cluster: Cluster, clocks_hz: Optional[Sequence[float]]
    ) -> Dict[int, float]:
        counts = (
            list(self.core_counts)
            if self.core_counts is not None
            else [cluster.spec.num_cores, 1]
        )
        results = self.sweep.power_gating_study(
            cluster, core_counts=counts, clocks_hz=clocks_hz
        )
        return {r.powered_cores: r.resonance_hz() for r in results}

    def enroll(
        self,
        cluster: Cluster,
        clocks_hz: Optional[Sequence[float]] = None,
    ) -> ResonanceSignature:
        """Record the golden unit's resonance fingerprint."""
        return ResonanceSignature(
            cluster_name=cluster.name,
            resonances_hz=self._measure(cluster, clocks_hz),
        )

    def check(
        self,
        cluster: Cluster,
        signature: ResonanceSignature,
        clocks_hz: Optional[Sequence[float]] = None,
    ) -> TamperVerdict:
        """Screen a unit against an enrolled signature."""
        if cluster.name != signature.cluster_name:
            raise ValueError(
                f"signature is for {signature.cluster_name!r}, "
                f"unit is {cluster.name!r}"
            )
        measured = self._measure(cluster, clocks_hz)
        drifts: Dict[int, float] = {}
        for state, golden in signature.resonances_hz.items():
            if state not in measured:
                continue
            drifts[state] = abs(measured[state] - golden) / golden
        worst = max(drifts.values()) if drifts else 0.0
        return TamperVerdict(
            tampered=worst > self.tolerance,
            worst_drift_fraction=worst,
            drifts=drifts,
        )
