"""Unit tests for the EM-based margin predictor (future work (c))."""

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.core.margin import (
    EMMarginPredictor,
    MarginCalibrationPoint,
)
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload


def make_predictor(seed=3):
    return EMMarginPredictor(
        EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
            samples=6,
        )
    )


class TestFitting:
    def test_requires_two_points(self):
        predictor = make_predictor()
        with pytest.raises(ValueError):
            predictor.fit([MarginCalibrationPoint("x", 1e-9, 0.8)])

    def test_unfitted_predict_raises(self):
        predictor = make_predictor()
        with pytest.raises(RuntimeError):
            predictor.predict("x", 1e-9)
        assert not predictor.is_fitted

    def test_exact_fit_on_two_points(self):
        predictor = make_predictor()
        points = [
            MarginCalibrationPoint("a", 1e-10, 0.78),
            MarginCalibrationPoint("b", 4e-10, 0.82),
        ]
        predictor.fit(points)
        assert predictor.is_fitted
        assert predictor.calibration_residual_v() < 1e-12
        assert predictor.predict("a", 1e-10).predicted_vmin == (
            pytest.approx(0.78)
        )

    def test_monotonic_prediction(self):
        predictor = make_predictor()
        predictor.fit(
            [
                MarginCalibrationPoint("a", 1e-10, 0.78),
                MarginCalibrationPoint("b", 4e-10, 0.82),
            ]
        )
        lo = predictor.predict("lo", 1e-10).predicted_vmin
        hi = predictor.predict("hi", 9e-10).predicted_vmin
        assert hi > lo

    def test_negative_amplitude_rejected(self):
        predictor = make_predictor()
        predictor.fit(
            [
                MarginCalibrationPoint("a", 1e-10, 0.78),
                MarginCalibrationPoint("b", 4e-10, 0.82),
            ]
        )
        with pytest.raises(ValueError):
            predictor.predict("x", -1.0)


class TestEndToEndPrediction:
    @pytest.mark.slow
    def test_predicts_holdout_workload_vmin(self, a72):
        """Calibrate on a few workloads, predict an unseen one within
        a couple of undervolting steps."""
        predictor = make_predictor()
        tester = VminTester(
            a72, failure_model_for("cortex-a72"), seed=5
        )
        calibration_wls = [idle_workload()] + spec_suite(
            a72.spec.isa, ["gcc", "namd", "lbm"]
        )
        holdout = spec_suite(a72.spec.isa, ["sphinx3"])[0]

        points = []
        for wl in calibration_wls:
            amp = predictor.measure_amplitude(a72, wl)
            vmin = tester.run(wl, repeats=2).vmin
            points.append(
                MarginCalibrationPoint(wl.name, amp, vmin)
            )
        predictor.fit(points)

        prediction = predictor.predict_workload(a72, holdout)
        actual = tester.run(holdout, repeats=2).vmin
        assert prediction.predicted_vmin == pytest.approx(
            actual, abs=0.025
        )
        assert prediction.predicted_margin(1.0) == pytest.approx(
            1.0 - actual, abs=0.025
        )
