"""Unit tests for near-field coupling and the ambient environment."""

import numpy as np
import pytest

from repro.em.propagation import AmbientEnvironment, NearFieldCoupling


class TestNearFieldCoupling:
    def test_reference_distance_is_unity_gain(self):
        c = NearFieldCoupling(distance_m=0.07, reference_distance_m=0.07)
        assert c.gain() == pytest.approx(1.0)

    def test_gain_falls_with_distance(self):
        near = NearFieldCoupling(distance_m=0.05)
        far = NearFieldCoupling(distance_m=0.10)
        assert near.gain() > far.gain()

    def test_cubic_law(self):
        a = NearFieldCoupling(distance_m=0.07)
        b = NearFieldCoupling(distance_m=0.14)
        assert a.gain() / b.gain() == pytest.approx(8.0)

    def test_board_side_gain(self):
        """The paper prefers the lower PCB side (closer to the die)."""
        lower = NearFieldCoupling(board_side_gain=1.0)
        upper = NearFieldCoupling(board_side_gain=0.6)
        assert lower.gain() > upper.gain()

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            NearFieldCoupling(distance_m=0.0).gain()


class TestAmbientEnvironment:
    def test_noise_power_matches_floor(self):
        env = AmbientEnvironment(noise_floor_dbm=-90.0)
        assert env.noise_power_w() == pytest.approx(1e-12)

    def test_sample_noise_spread(self):
        env = AmbientEnvironment(noise_floor_dbm=-95.0, noise_sigma_db=1.0)
        rng = np.random.default_rng(0)
        samples = env.sample_noise_w((10000,), rng)
        db = 10 * np.log10(samples / 1e-3)
        assert np.mean(db) == pytest.approx(-95.0, abs=0.1)
        assert np.std(db) == pytest.approx(1.0, abs=0.05)

    def test_sample_noise_deterministic_under_seed(self):
        env = AmbientEnvironment()
        a = env.sample_noise_w((5,), np.random.default_rng(7))
        b = env.sample_noise_w((5,), np.random.default_rng(7))
        assert np.allclose(a, b)
