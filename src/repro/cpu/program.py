"""Loop programs: the unit of work the GA evolves and CPUs execute.

A :class:`LoopProgram` is a fixed-length loop body of concrete
instructions (the paper uses 50) plus the implicit loop back-edge.  The
surrounding template (pre-initialized registers, steering code) is
abstracted away: registers are assumed initialized, and memory operands
always hit L1 (Section 3.3 -- cache misses are deliberately avoided for
determinism).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.isa import (
    Instruction,
    InstructionClass,
    InstructionSet,
    InstructionSpec,
    RegisterFile,
)


@dataclass(frozen=True)
class LoopProgram:
    """An instruction loop bound to the instruction set it draws from."""

    isa: InstructionSet
    body: Tuple[Instruction, ...]
    name: str = "loop"

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("loop body must contain at least one instruction")
        for i, instr in enumerate(self.body):
            limit = self.isa.registers[instr.spec.regfile]
            regs = list(instr.sources)
            if instr.spec.has_dest:
                regs.append(instr.dest)
            for r in regs:
                if not 0 <= r < limit:
                    raise ValueError(
                        f"instruction {i} ({instr.mnemonic}) uses register "
                        f"{r} outside 0..{limit - 1}"
                    )
            if instr.spec.touches_memory and not (
                0 <= instr.address < self.isa.memory_slots
            ):
                raise ValueError(
                    f"instruction {i} ({instr.mnemonic}) uses memory slot "
                    f"{instr.address} outside 0..{self.isa.memory_slots - 1}"
                )

    def __len__(self) -> int:
        return len(self.body)

    def instruction_mix(self) -> Dict[InstructionClass, float]:
        """Fraction of the loop body in each instruction class (Table 2)."""
        counts = Counter(instr.spec.iclass for instr in self.body)
        n = len(self.body)
        return {cls: counts.get(cls, 0) / n for cls in InstructionClass}

    def assembly(self) -> str:
        """Readable assembly listing of the loop body."""
        lines = [f"{self.name}:"]
        lines.extend(f"    {instr.assembly()}" for instr in self.body)
        lines.append(f"    b {self.name}")
        return "\n".join(lines)

    def genome(self) -> Tuple[Tuple, ...]:
        """Hashable representation for fitness memoization.

        The tuple is computed once and cached on the (immutable)
        instance, so the GA's per-generation cache lookups are O(1)
        instead of re-walking the loop body every call.
        """
        cached = self.__dict__.get("_genome")
        if cached is None:
            cached = tuple(
                (i.mnemonic, i.dest, i.sources, i.address)
                for i in self.body
            )
            object.__setattr__(self, "_genome", cached)
        return cached

    def static_arrays(self) -> "ProgramStatics":
        """Packed per-instruction arrays for the evaluation kernels.

        Walks the loop body once and caches the result on the instance;
        the schedulers and the current model index these flat arrays
        instead of doing per-dynamic-instruction attribute lookups.
        """
        cached = self.__dict__.get("_statics")
        if cached is None:
            cached = ProgramStatics(self)
            object.__setattr__(self, "_statics", cached)
        return cached


class ProgramStatics:
    """Per-program static arrays consumed by the evaluation kernels.

    Registers are packed into one dense namespace (INT, then FP, then
    VEC) so the scheduler scoreboard is a flat list instead of a dict
    keyed by ``(regfile, reg)``.  The charge-deposit helpers
    (``per_cycle_energy``, ``deposit_offsets``) let the current model
    scatter every instruction's charge packet with one ``np.add.at``.
    """

    __slots__ = (
        "units",
        "latency",
        "recip",
        "sources",
        "dest",
        "touches_memory",
        "address",
        "num_registers",
        "energy",
        "recip_arr",
        "per_cycle_energy",
        "deposit_offsets",
    )

    def __init__(self, program: "LoopProgram"):
        body = program.body
        offsets: Dict[RegisterFile, int] = {}
        total = 0
        for rf in RegisterFile:
            offsets[rf] = total
            total += program.isa.registers.get(rf, 0)
        self.num_registers = total

        self.units = tuple(i.spec.unit for i in body)
        self.latency = [i.spec.latency for i in body]
        self.recip = [i.spec.recip_throughput for i in body]
        self.sources = tuple(
            tuple(offsets[i.spec.regfile] + s for s in i.sources)
            for i in body
        )
        self.dest = [
            offsets[i.spec.regfile] + i.dest if i.spec.has_dest else -1
            for i in body
        ]
        self.touches_memory = tuple(i.spec.touches_memory for i in body)
        self.address = [
            i.address if i.spec.touches_memory else -1 for i in body
        ]

        self.energy = np.array([i.spec.energy for i in body], dtype=float)
        self.recip_arr = np.array(self.recip, dtype=np.int64)
        self.per_cycle_energy = self.energy / self.recip_arr
        # Concatenated [0..d) ranges, one per instruction: adding these
        # to np.repeat(issue_offsets, recip_arr) yields every cycle each
        # charge packet covers.
        ends = np.cumsum(self.recip_arr)
        self.deposit_offsets = np.arange(ends[-1]) - np.repeat(
            ends - self.recip_arr, self.recip_arr
        )


def random_instruction(
    spec: InstructionSpec,
    isa: InstructionSet,
    rng: np.random.Generator,
) -> Instruction:
    """Draw random (valid) operands for ``spec`` from the ISA's resources."""
    n_regs = isa.registers[spec.regfile]
    dest = int(rng.integers(n_regs)) if spec.has_dest else None
    sources = tuple(int(rng.integers(n_regs)) for _ in range(spec.num_sources))
    address = (
        int(rng.integers(isa.memory_slots)) if spec.touches_memory else None
    )
    return Instruction(spec=spec, dest=dest, sources=sources, address=address)


def random_program(
    isa: InstructionSet,
    length: int,
    rng: np.random.Generator,
    name: str = "random",
    pool: Optional[Sequence[InstructionSpec]] = None,
) -> LoopProgram:
    """A uniformly random loop program (the GA's initial individuals)."""
    specs = tuple(pool) if pool is not None else isa.specs
    body = tuple(
        random_instruction(specs[int(rng.integers(len(specs)))], isa, rng)
        for _ in range(length)
    )
    return LoopProgram(isa=isa, body=body, name=name)


def program_from_mnemonics(
    isa: InstructionSet,
    mnemonics: Sequence[str],
    rng: Optional[np.random.Generator] = None,
    name: str = "manual",
) -> LoopProgram:
    """Build a loop from mnemonics with simple sequential operand choice.

    Operands default to a rotating register assignment (deterministic
    when no ``rng`` is given), which is convenient for hand-written
    loops like the high/low-current sweep loop of Section 5.3.
    """
    body = []
    counters: Dict[RegisterFile, int] = {rf: 0 for rf in RegisterFile}
    mem_counter = 0
    for m in mnemonics:
        spec = isa.spec(m)
        n_regs = isa.registers[spec.regfile]
        if rng is None:
            base = counters[spec.regfile]
            dest = base % n_regs if spec.has_dest else None
            sources = tuple(
                (base + 1 + k) % n_regs for k in range(spec.num_sources)
            )
            counters[spec.regfile] = (base + 1) % n_regs
            address = (
                mem_counter % isa.memory_slots if spec.touches_memory else None
            )
            if spec.touches_memory:
                mem_counter += 1
            body.append(
                Instruction(
                    spec=spec, dest=dest, sources=sources, address=address
                )
            )
        else:
            body.append(random_instruction(spec, isa, rng))
    return LoopProgram(isa=isa, body=tuple(body), name=name)
