"""Cycle-level CPU models that turn instruction loops into current traces.

The paper's methodology only consumes one property of the CPU under
test: the *shape of the supply-current waveform* that a given
instruction loop produces.  This package provides that substrate:

- :mod:`repro.cpu.isa` -- instruction/operand model with per-class
  latency, execution-unit and switching-energy attributes.
- :mod:`repro.cpu.arm` / :mod:`repro.cpu.x86` -- concrete instruction
  tables following Section 3.3's instruction-mix recipe (short/long
  latency integer, float, SIMD, memory, dummy branches; x86 memory
  operands instead of explicit loads/stores).
- :mod:`repro.cpu.pipeline` -- in-order dual-issue (Cortex-A53-like)
  and out-of-order (Cortex-A72 / Athlon-like) issue models.
- :mod:`repro.cpu.program` -- loop programs: the payload the GA evolves.
- :mod:`repro.cpu.current` -- issue schedule -> per-cycle current trace.
- :mod:`repro.cpu.multicore` -- cluster-level trace composition.
"""

from repro.cpu.isa import (
    Instruction,
    InstructionClass,
    InstructionSpec,
    InstructionSet,
    RegisterFile,
)
from repro.cpu.arm import ARM_ISA
from repro.cpu.x86 import X86_ISA
from repro.cpu.pipeline import (
    InOrderPipeline,
    OutOfOrderPipeline,
    Pipeline,
    Schedule,
)
from repro.cpu.program import LoopProgram
from repro.cpu.current import CurrentModel, loop_current_trace
from repro.cpu.multicore import ClusterExecution, CoreModel

__all__ = [
    "Instruction",
    "InstructionClass",
    "InstructionSpec",
    "InstructionSet",
    "RegisterFile",
    "ARM_ISA",
    "X86_ISA",
    "Pipeline",
    "InOrderPipeline",
    "OutOfOrderPipeline",
    "Schedule",
    "LoopProgram",
    "CurrentModel",
    "loop_current_trace",
    "CoreModel",
    "ClusterExecution",
]
