"""The V_MIN test harness (Section 5.2).

Each experiment starts at a high supply voltage and lowers it in fixed
steps (10 mV on the ARM platforms).  At every step the workload runs to
completion and its output is checked against a golden reference taken
at nominal voltage; the harness records the highest voltage at which
*any* deviation -- SDC, application crash or system crash -- appears,
and stops at the system crash.  For statistical confidence the paper
repeats the test 30 times per virus and twice per benchmark; the
reported V_MIN is the highest deviation voltage seen across repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.platforms.base import Cluster
from repro.stability.failure import CriticalVoltageModel, Outcome
from repro.workloads.base import Workload


@dataclass
class VminResult:
    """Outcome of the repeated progressive-undervolting experiment."""

    workload_name: str
    vmin: float
    crash_voltage: float
    max_droop_at_nominal: float
    peak_to_peak_at_nominal: float
    outcomes: List[List[Tuple[float, Outcome]]] = field(default_factory=list)

    @property
    def repeats(self) -> int:
        return len(self.outcomes)

    def margin_from(self, nominal_voltage: float) -> float:
        """Voltage margin = nominal - V_MIN (Table 2's last column)."""
        return nominal_voltage - self.vmin


class VminTester:
    """Runs V_MIN experiments on a cluster with a failure model."""

    def __init__(
        self,
        cluster: Cluster,
        failure_model: CriticalVoltageModel,
        step_v: float = 0.010,
        seed: int = 0,
    ):
        if step_v <= 0.0:
            raise ValueError("voltage step must be positive")
        self.cluster = cluster
        self.failure_model = failure_model
        self.step_v = step_v
        self._rng = np.random.default_rng(seed)

    def _single_descent(
        self,
        workload: Workload,
        start_v: float,
        floor_v: float,
        active_cores: Optional[int],
    ) -> List[Tuple[float, Outcome]]:
        """One descent: lower V until system crash (or the floor)."""
        log: List[Tuple[float, Outcome]] = []
        voltage = start_v
        while voltage >= floor_v:
            self.cluster.set_voltage(voltage)
            run = workload.run(self.cluster, active_cores=active_cores)
            outcome = self.failure_model.classify(
                run.min_voltage, self.cluster.clock_hz, self._rng
            )
            log.append((voltage, outcome))
            if outcome is Outcome.SYSTEM_CRASH:
                break
            voltage = round(voltage - self.step_v, 6)
        return log

    def run(
        self,
        workload: Workload,
        repeats: int = 2,
        start_v: Optional[float] = None,
        floor_v: float = 0.5,
        active_cores: Optional[int] = None,
    ) -> VminResult:
        """Full experiment: ``repeats`` descents, worst-case V_MIN.

        Restores the cluster's previous voltage afterwards.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        saved_voltage = self.cluster.voltage
        start = start_v if start_v is not None else (
            self.cluster.spec.nominal_voltage
        )
        try:
            # Reference measurement at nominal voltage.
            self.cluster.set_voltage(self.cluster.spec.nominal_voltage)
            nominal_run = workload.run(
                self.cluster, active_cores=active_cores
            )
            droop = nominal_run.max_droop
            p2p = nominal_run.peak_to_peak

            all_logs = []
            deviations: List[float] = []
            crashes: List[float] = []
            for _ in range(repeats):
                log = self._single_descent(
                    workload, start, floor_v, active_cores
                )
                all_logs.append(log)
                for v, outcome in log:
                    if outcome.is_deviation:
                        deviations.append(v)
                    if outcome is Outcome.SYSTEM_CRASH:
                        crashes.append(v)
            vmin = max(deviations) if deviations else float("nan")
            crash_v = max(crashes) if crashes else float("nan")
        finally:
            self.cluster.set_voltage(saved_voltage)
        return VminResult(
            workload_name=workload.name,
            vmin=vmin,
            crash_voltage=crash_v,
            max_droop_at_nominal=droop,
            peak_to_peak_at_nominal=p2p,
            outcomes=all_logs,
        )

    def compare(
        self,
        workloads: List[Workload],
        virus_repeats: int = 30,
        benchmark_repeats: int = 2,
        virus_names: Tuple[str, ...] = (),
        active_cores: Optional[int] = None,
    ) -> Dict[str, VminResult]:
        """V_MIN for a workload set (the Fig. 10/14/18 experiments).

        Viruses get more repeats than benchmarks, mirroring the paper's
        30-vs-2 protocol.
        """
        results: Dict[str, VminResult] = {}
        for workload in workloads:
            repeats = (
                virus_repeats
                if workload.name in virus_names
                else benchmark_repeats
            )
            results[workload.name] = self.run(
                workload, repeats=repeats, active_cores=active_cores
            )
        return results
