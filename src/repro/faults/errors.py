"""Typed faults for the injection and resilience layer.

Every fault the :class:`repro.faults.FaultInjector` can raise (and
every failure the resilient execution paths know how to handle) is a
subclass of :class:`FaultError`, carrying the *site* where it fired
(``chain.receive``, ``worker.shard``, ``checkpoint.save`` ...) so
handlers can report it in ``fault_injected`` events without parsing
messages.

The taxonomy mirrors what a long campaign against a physical
spectrum analyzer actually sees:

``TransientFault``
    A flaky-but-recoverable error (instrument glitch, dropped VISA
    reply).  Retrying the same operation is expected to succeed.
``WorkerCrash``
    A fitness-evaluation worker process died (or simulated dying).
    The shard it held must be re-dispatched or evaluated serially.
``CorruptArtifact``
    A persisted artifact (checkpoint, archive) failed validation:
    truncated file, checksum mismatch, torn write.
``StageTimeout``
    A chain stage or worker dispatch exceeded its wall-clock budget.

Exceptions cross the ``ProcessPoolExecutor`` boundary by pickling, so
``__reduce__`` preserves the ``site`` attribute.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type


class FaultError(Exception):
    """Base class for injected or detected measurement-chain faults."""

    #: Short machine-readable fault kind; mirrored by FaultSpec.kind.
    kind = "fault"

    def __init__(self, message: str = "", site: Optional[str] = None):
        super().__init__(message or self.kind)
        self.site = site

    def __reduce__(self) -> Tuple:
        return (self.__class__, (str(self), self.site))


class TransientFault(FaultError):
    """Recoverable one-off failure: retry the operation."""

    kind = "transient"


class WorkerCrash(FaultError):
    """A worker process died mid-shard (or simulated dying)."""

    kind = "worker_crash"


class CorruptArtifact(FaultError):
    """A persisted artifact failed integrity validation."""

    kind = "corrupt_artifact"


class StageTimeout(FaultError):
    """A stage or dispatch exceeded its wall-clock budget."""

    kind = "stage_timeout"


#: Faults that retrying the same operation may clear.  WorkerCrash is
#: deliberately absent: it is handled by the shard re-dispatch /
#: degrade-to-serial logic, not by blind in-place retries.
RETRYABLE_FAULTS: Tuple[Type[FaultError], ...] = (
    TransientFault,
    StageTimeout,
)

#: kind string -> exception class, for FaultSpec validation/raising.
FAULT_KINDS: Dict[str, Type[FaultError]] = {
    cls.kind: cls
    for cls in (TransientFault, WorkerCrash, CorruptArtifact, StageTimeout)
}
