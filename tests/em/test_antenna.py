"""Unit tests for the square-loop antenna model (Fig. 6)."""

import numpy as np
import pytest

from repro.em.antenna import SquareLoopAntenna


@pytest.fixture(scope="module")
def antenna():
    return SquareLoopAntenna()


class TestGeometry:
    def test_loop_inductance_reasonable(self, antenna):
        """A 3 cm loop is a few tens of nanohenries."""
        assert 20e-9 < antenna.loop_inductance_h < 200e-9

    def test_capacitance_places_self_resonance(self, antenna):
        l = antenna.loop_inductance_h
        c = antenna.shunt_capacitance_f
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        assert f0 == pytest.approx(antenna.self_resonance_hz, rel=1e-6)


class TestS11:
    def test_self_resonance_shows_s11_dip(self, antenna):
        """|S11| has a clear minimum near 2.95 GHz (the Fig. 6 dip)."""
        freqs = np.linspace(0.1e9, 5e9, 2000)
        s11_db = antenna.s11_db(freqs)
        dip_freq = freqs[np.argmin(s11_db)]
        assert dip_freq == pytest.approx(2.95e9, rel=0.05)

    def test_poorly_matched_in_measurement_band(self, antenna):
        """The paper's antenna is NOT matched at 50-200 MHz: |S11| ~ 0 dB."""
        freqs = np.linspace(50e6, 200e6, 50)
        s11_db = antenna.s11_db(freqs)
        assert (s11_db > -3.0).all()

    def test_s11_magnitude_bounded(self, antenna):
        freqs = np.logspace(6, 10, 200)
        assert (np.abs(antenna.s11(freqs)) <= 1.0 + 1e-9).all()


class TestResponse:
    def test_flat_in_first_order_band(self, antenna):
        """Response varies by <1 dB across 50-200 MHz: the antenna does
        not modulate the band where the PDN resonance lives."""
        freqs = np.linspace(50e6, 200e6, 100)
        gain = antenna.response(freqs)
        ripple_db = 20 * np.log10(gain.max() / gain.min())
        assert ripple_db < 1.0

    def test_flat_until_1_2ghz(self, antenna):
        """Fig. 6: relatively flat response from DC until 1.2 GHz."""
        freqs = np.linspace(10e6, 1.2e9, 200)
        gain = antenna.response(freqs)
        ripple_db = 20 * np.log10(gain.max() / gain.min())
        assert ripple_db < 6.0

    def test_peaks_at_self_resonance(self, antenna):
        freqs = np.linspace(1e9, 5e9, 2000)
        gain = antenna.response(freqs)
        assert freqs[np.argmax(gain)] == pytest.approx(2.95e9, rel=0.05)
