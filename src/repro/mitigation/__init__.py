"""Droop-mitigation models: what the viruses are used to evaluate.

The paper's related work (Section 9) surveys mitigation mechanisms --
adaptive clocking chief among them -- and Section 6 warns that power
gating raises the resonance frequency, which *"has detrimental
implications on voltage-noise mitigation mechanisms such as
adaptive-clocking, that are extremely sensitive to response-latency."*

This package implements a closed-loop adaptive-clocking model against
the simulated PDN so that claim (and the value of representative dI/dt
stress tests for mitigation tuning) can be evaluated quantitatively.
"""

from repro.mitigation.adaptive_clock import (
    AdaptiveClock,
    AdaptiveClockConfig,
    ClosedLoopResult,
    resonant_burst,
)

__all__ = [
    "AdaptiveClock",
    "AdaptiveClockConfig",
    "ClosedLoopResult",
    "resonant_burst",
]
