"""Unit tests for the pipeline issue-schedulers."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import ExecutionUnit
from repro.cpu.pipeline import (
    InOrderPipeline,
    OutOfOrderPipeline,
    PipelineConfig,
)
from repro.cpu.program import program_from_mnemonics


def make_loop(*mnemonics, isa=ARM_ISA):
    return program_from_mnemonics(isa, list(mnemonics))


class TestConfigValidation:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            PipelineConfig(name="x", width=0, unit_counts={})

    def test_ooo_needs_window(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                name="x", width=2, unit_counts={}, out_of_order=True,
                window=0,
            )


class TestInOrderScheduling:
    def test_independent_adds_dual_issue(self):
        """Dual-issue in-order sustains 2 IPC on independent ADDs."""
        # program_from_mnemonics rotates registers: add r0,r1,r2 then
        # add r1,r2,r3 -- dependent!  Build independent ones explicitly.
        from repro.cpu.isa import Instruction

        spec = ARM_ISA.spec("add")
        body = tuple(
            Instruction(spec=spec, dest=i, sources=(i + 8, i + 8))
            for i in range(8)
        )
        from repro.cpu.program import LoopProgram

        program = LoopProgram(isa=ARM_ISA, body=body)
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        assert schedule.ipc == pytest.approx(2.0)

    def test_dependent_chain_serializes(self):
        """A loop-carried circular add chain issues one per cycle."""
        from repro.cpu.isa import Instruction
        from repro.cpu.program import LoopProgram

        spec = ARM_ISA.spec("add")
        body = tuple(
            Instruction(spec=spec, dest=(i + 1) % 6, sources=(i, i))
            for i in range(6)
        )
        program = LoopProgram(isa=ARM_ISA, body=body)
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        assert schedule.ipc <= 1.01

    def test_nonpipelined_div_gates_loop_period(self):
        """8 adds + sdiv: the DIV unit's occupancy sets the period."""
        program = make_loop(*(["add"] * 8 + ["sdiv"]))
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        sdiv = ARM_ISA.spec("sdiv")
        assert schedule.cycles >= sdiv.recip_throughput

    def test_issue_offsets_in_program_order(self):
        program = make_loop("add", "mul", "fadd", "ldr")
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        offsets = schedule.issue_offsets
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))


class TestOutOfOrderScheduling:
    def test_ooo_hides_long_latency(self):
        """OoO overlaps independent work with a DIV shadow; in-order
        can't pass the stalled head."""
        from repro.cpu.isa import Instruction
        from repro.cpu.program import LoopProgram

        sdiv = ARM_ISA.spec("sdiv")
        add = ARM_ISA.spec("add")
        body = [Instruction(spec=sdiv, dest=15, sources=(14, 14))]
        # dependent chain on the div result -- stalls in-order issue
        body.append(Instruction(spec=add, dest=13, sources=(15, 15)))
        # independent adds that OoO can hoist
        body.extend(
            Instruction(spec=add, dest=i, sources=(i + 6, i + 6))
            for i in range(4)
        )
        program = LoopProgram(isa=ARM_ISA, body=tuple(body))
        in_order = InOrderPipeline(width=2).steady_schedule(program)
        ooo = OutOfOrderPipeline(width=2).steady_schedule(program)
        assert ooo.cycles <= in_order.cycles

    def test_window_limits_reordering(self):
        """A tiny window degenerates toward in-order behaviour."""
        program = make_loop(*(["sdiv"] + ["add"] * 10))
        narrow = OutOfOrderPipeline(width=2, window=1).steady_schedule(
            program
        )
        wide = OutOfOrderPipeline(width=2, window=40).steady_schedule(
            program
        )
        assert wide.cycles <= narrow.cycles

    def test_unit_contention_blocks(self):
        """Two back-to-back sdivs serialize on the single DIV unit."""
        program = make_loop("sdiv", "sdiv")
        schedule = OutOfOrderPipeline(width=3).steady_schedule(program)
        sdiv = ARM_ISA.spec("sdiv")
        assert schedule.cycles >= 2 * sdiv.recip_throughput


class TestSteadyState:
    def test_steady_schedule_is_periodic(self):
        """Period of the last iterations stabilizes."""
        program = make_loop(*(["add", "mul", "fadd", "ldr"] * 4))
        pipe = InOrderPipeline(width=2)
        issue = pipe.execute(program, iterations=12)
        starts = issue[:, 0]
        deltas = np.diff(starts)
        assert deltas[-1] == deltas[-2] == deltas[-3]

    def test_requires_two_iterations(self):
        program = make_loop("add")
        with pytest.raises(ValueError):
            InOrderPipeline().execute(program, iterations=1)

    def test_ipc_definition(self):
        program = make_loop(*(["add"] * 10))
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        assert schedule.ipc == pytest.approx(
            len(program) / schedule.cycles
        )

    def test_loop_frequency_scales_with_clock(self):
        program = make_loop(*(["add"] * 8 + ["sdiv"]))
        schedule = InOrderPipeline(width=2).steady_schedule(program)
        f1 = schedule.loop_frequency_hz(1.2e9)
        f2 = schedule.loop_frequency_hz(0.6e9)
        assert f1 == pytest.approx(2.0 * f2)

    def test_paper_hilo_loop_is_150mhz_at_1200mhz(self):
        """Section 5.3: the 8-add/1-div loop spans 8 ns at 1.2 GHz."""
        program = make_loop(*(["add"] * 8 + ["sdiv"]))
        schedule = OutOfOrderPipeline(width=3).steady_schedule(program)
        assert schedule.loop_frequency_hz(1.2e9) == pytest.approx(150e6)

    def test_odd_super_period_is_detected(self):
        """Regression: a 5-iteration super-period must be extracted.

        The search used to try only super-periods {1, 2, 3, 4, 6}, so a
        pattern of iteration lengths repeating every 5 iterations
        collapsed to a wrong 1-iteration period.  Synthesize such a
        schedule by stubbing ``execute``.
        """
        pattern = [3, 1, 1, 1, 2]  # iteration lengths, super-period 5
        program = make_loop("add")

        class FivePeriodic(InOrderPipeline):
            def execute(self, prog, iterations, cache=None,
                        memory_rng=None):
                starts = np.cumsum(
                    [0] + [pattern[i % 5] for i in range(iterations - 1)]
                )
                return starts.reshape(-1, 1).astype(np.int64)

        schedule = FivePeriodic().steady_schedule(program, iterations=16)
        # One electrical period covers the 5-iteration pattern.
        assert schedule.cycles == sum(pattern)
        assert len(schedule.program.body) == 5 * len(program.body)
