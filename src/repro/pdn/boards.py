"""Detailed multi-bank board model (opt-in).

The platform presets in :mod:`repro.pdn.models` use a single package
bank and a single bulk bank -- enough for every evaluated experiment,
but it compresses the second/third-order impedance peaks toward
0.5-0.8 MHz (EXPERIMENTS.md, deviation 3).  This module builds a
richer board for studies that care about the low-frequency decades:

- the package bank (low-ESL ceramics) exactly as in the preset, so the
  **first-order tank is bit-identical** to the calibrated model;
- a mid-frequency ceramic bank (4.7 uF) behind the socket trace,
  forming the second-order tank in the paper's 1-10 MHz decade;
- a bulk electrolytic (1500 uF, 25 mOhm ESR) behind the power planes
  and a realistic VRM output inductance, putting the third-order tank
  at ~10 kHz as in Fig. 1(b).

The richer board also exposes a classic board-design hazard the simple
model hides: the anti-resonance between the mid bank and the bulk bank
(a few hundred kHz) can peak *above* the first-order tank -- one more
reason real PDN sign-off sweeps the whole spectrum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.pdn.elements import VoltageSource
from repro.pdn.impedance import ACAnalysis, analyze_ac
from repro.pdn.models import DIE_NODE, PDNParameters
from repro.pdn.netlist import Circuit

MID_NODE = "mid"
BULK_NODE = "bulk"


def build_detailed_board_circuit(
    params: PDNParameters,
    powered_cores: int,
    mid_c: float = 4.7e-6,
    mid_esr: float = 10.0e-3,
    mid_esl: float = 2.0e-9,
    bulk_c: float = 1500.0e-6,
    bulk_esr: float = 15.0e-3,
    bulk_esl: float = 5.0e-9,
    l_vrm: float = 400.0e-9,
    plane_r: float = 0.5e-3,
    plane_l: float = 2.0e-9,
) -> Circuit:
    """Assemble the detailed die/package/board netlist.

    Everything from the package node to the die copies the calibrated
    preset verbatim; only the board side is elaborated.
    """
    p = params
    c = Circuit(f"{p.name}-detailed-{powered_cores}c")
    c.add(VoltageSource("vdd", "vrm", "0", voltage=p.nominal_voltage))
    c.add_series_rlc(
        "vrm_out", "vrm", BULK_NODE, resistance=0.5e-3, inductance=l_vrm
    )
    c.add_series_rlc(
        "bulk_cap",
        BULK_NODE,
        "0",
        resistance=bulk_esr,
        inductance=bulk_esl,
        capacitance=bulk_c,
    )
    c.add_series_rlc(
        "plane", BULK_NODE, MID_NODE, resistance=plane_r, inductance=plane_l
    )
    c.add_series_rlc(
        "mid_cap",
        MID_NODE,
        "0",
        resistance=mid_esr,
        inductance=mid_esl,
        capacitance=mid_c,
    )
    c.add_series_rlc(
        "pcb_trace", MID_NODE, "pkg", resistance=4.0e-3, inductance=1.0e-9
    )
    # Package-and-up: identical to the calibrated preset.
    c.add_series_rlc(
        "pkg_cap",
        "pkg",
        "0",
        resistance=p.esr_pkg,
        inductance=p.esl_pkg,
        capacitance=p.c_pkg,
    )
    c.add_series_rlc(
        "pkg_trace", "pkg", DIE_NODE, resistance=p.r_pkg, inductance=p.l_pkg
    )
    c.add_series_rlc(
        "die_cap",
        DIE_NODE,
        "0",
        resistance=p.r_die,
        capacitance=p.die_capacitance(powered_cores),
    )
    return c


def detailed_impedance_analysis(
    params: PDNParameters,
    powered_cores: int,
    frequencies_hz: Sequence[float],
    **board_kwargs,
) -> ACAnalysis:
    """AC analysis of the detailed board, seen from the die."""
    circuit = build_detailed_board_circuit(
        params, powered_cores, **board_kwargs
    )
    return analyze_ac(circuit, DIE_NODE, frequencies_hz)


def impedance_peaks(
    frequencies_hz: np.ndarray, magnitude: np.ndarray
) -> list:
    """(frequency, |Z|) of every local impedance maximum, ascending."""
    f = np.asarray(frequencies_hz, dtype=float)
    z = np.asarray(magnitude, dtype=float)
    peaks = [
        (float(f[i]), float(z[i]))
        for i in range(1, z.size - 1)
        if z[i] > z[i - 1] and z[i] > z[i + 1]
    ]
    return sorted(peaks)
