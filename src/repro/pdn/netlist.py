"""Netlist container and modified-nodal-analysis (MNA) matrix assembly.

The :class:`Circuit` collects elements and assigns MNA indices:

- one unknown per non-ground node (its voltage), and
- one unknown per *branch element* (inductors and voltage sources),
  whose current is solved explicitly.

The same index layout is shared by the AC, transient and steady-state
solvers so that results can be cross-referenced by element name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)

GROUND = "0"


@dataclass(frozen=True)
class MNALayout:
    """Index assignment for the MNA unknown vector.

    The unknown vector is ``[node_voltages..., branch_currents...]``:
    node ``n`` is at index ``node_index[n]`` and branch element ``e`` is
    at ``num_nodes + branch_index[e.name]``.
    """

    node_index: Dict[str, int]
    branch_index: Dict[str, int]

    @property
    def num_nodes(self) -> int:
        return len(self.node_index)

    @property
    def num_branches(self) -> int:
        return len(self.branch_index)

    @property
    def size(self) -> int:
        return self.num_nodes + self.num_branches

    def node(self, name: str) -> int:
        """Index of node ``name`` in the unknown vector (-1 for ground)."""
        if name == GROUND:
            return -1
        return self.node_index[name]

    def branch(self, element_name: str) -> int:
        """Index of a branch element's current in the unknown vector."""
        return self.num_nodes + self.branch_index[element_name]


class Circuit:
    """A linear RLC circuit assembled incrementally.

    >>> c = Circuit("tank")
    >>> c.add(Resistor("r1", "in", "0", resistance=1.0))
    >>> c.add(Capacitor("c1", "in", "0", capacitance=1e-9))
    >>> sorted(c.nodes)
    ['in']
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: List[Element] = []
        self._names: set = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add ``element``; element names must be unique within a circuit."""
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    def add_series_rlc(
        self,
        prefix: str,
        node_a: str,
        node_b: str,
        resistance: float = 0.0,
        inductance: float = 0.0,
        capacitance: float = 0.0,
    ) -> None:
        """Add a series R-L-C chain between ``node_a`` and ``node_b``.

        Elements with a zero value are omitted; internal nodes are named
        ``<prefix>.n1``, ``<prefix>.n2``.  At least one element must be
        present.  This models a real decoupling capacitor (C + ESR + ESL)
        or a power trace (R + L) in one call.
        """
        stages: List[Tuple[str, float]] = []
        if resistance > 0.0:
            stages.append(("r", resistance))
        if inductance > 0.0:
            stages.append(("l", inductance))
        if capacitance > 0.0:
            stages.append(("c", capacitance))
        if not stages:
            raise ValueError(f"series chain {prefix!r} has no nonzero elements")

        nodes = [node_a]
        nodes.extend(f"{prefix}.n{i}" for i in range(1, len(stages)))
        nodes.append(node_b)
        for (kind, value), a, b in zip(stages, nodes[:-1], nodes[1:]):
            name = f"{prefix}.{kind}"
            if kind == "r":
                self.add(Resistor(name, a, b, resistance=value))
            elif kind == "l":
                self.add(Inductor(name, a, b, inductance=value))
            else:
                self.add(Capacitor(name, a, b, capacitance=value))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def elements(self) -> Tuple[Element, ...]:
        return tuple(self._elements)

    @property
    def nodes(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for e in self._elements:
            for n in (e.node_a, e.node_b):
                if n != GROUND:
                    seen.setdefault(n)
        return tuple(seen)

    def element(self, name: str) -> Element:
        for e in self._elements:
            if e.name == name:
                return e
        raise KeyError(f"no element named {name!r} in circuit {self.name!r}")

    def current_sources(self) -> Tuple[CurrentSource, ...]:
        return tuple(e for e in self._elements if isinstance(e, CurrentSource))

    # ------------------------------------------------------------------
    # MNA assembly
    # ------------------------------------------------------------------
    def layout(self) -> MNALayout:
        """Assign MNA indices to nodes and branch elements."""
        node_index = {n: i for i, n in enumerate(self.nodes)}
        branch_names = [
            e.name
            for e in self._elements
            if isinstance(e, (Inductor, VoltageSource))
        ]
        branch_index = {n: i for i, n in enumerate(branch_names)}
        return MNALayout(node_index=node_index, branch_index=branch_index)

    def ac_matrix(self, omega: float, layout: MNALayout) -> np.ndarray:
        """Complex MNA matrix at angular frequency ``omega`` (rad/s)."""
        n = layout.size
        a = np.zeros((n, n), dtype=complex)

        def stamp_admittance(na: str, nb: str, y: complex) -> None:
            ia, ib = layout.node(na), layout.node(nb)
            if ia >= 0:
                a[ia, ia] += y
            if ib >= 0:
                a[ib, ib] += y
            if ia >= 0 and ib >= 0:
                a[ia, ib] -= y
                a[ib, ia] -= y

        for e in self._elements:
            if isinstance(e, Resistor):
                stamp_admittance(e.node_a, e.node_b, 1.0 / e.resistance)
            elif isinstance(e, Capacitor):
                stamp_admittance(e.node_a, e.node_b, 1j * omega * e.capacitance)
            elif isinstance(e, Inductor):
                k = layout.branch(e.name)
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    a[ia, k] += 1.0
                    a[k, ia] += 1.0
                if ib >= 0:
                    a[ib, k] -= 1.0
                    a[k, ib] -= 1.0
                a[k, k] -= 1j * omega * e.inductance
            elif isinstance(e, VoltageSource):
                k = layout.branch(e.name)
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    a[ia, k] += 1.0
                    a[k, ia] += 1.0
                if ib >= 0:
                    a[ib, k] -= 1.0
                    a[k, ib] -= 1.0
            # CurrentSource stamps only the RHS.
        return a

    def ac_rhs(
        self,
        layout: MNALayout,
        injections: Dict[str, complex],
        source_voltages: bool = False,
    ) -> np.ndarray:
        """Complex RHS vector.

        ``injections`` maps node name -> phasor current injected *into*
        that node.  When ``source_voltages`` is true, voltage sources
        impose their DC value; otherwise they are zeroed (the convention
        for small-signal impedance analysis).
        """
        b = np.zeros(layout.size, dtype=complex)
        for node, current in injections.items():
            idx = layout.node(node)
            if idx >= 0:
                b[idx] += current
        if source_voltages:
            for e in self._elements:
                if isinstance(e, VoltageSource):
                    b[layout.branch(e.name)] = e.voltage
        return b
