"""Figure 1(b)/(c): PDN impedance spectrum and step response.

Paper: the die-side impedance shows multiple LC-tank peaks; the first-
order peak (die cap vs package inductance) is the highest and sits in
50-200 MHz, the second-order in ~1-10 MHz, the third-order in the tens
of kHz.  A current step rings the network at those resonances.
"""

import numpy as np

from repro.pdn.elements import CurrentSource
from repro.pdn.models import PDNModel, CORTEX_A72_PDN
from repro.pdn.transient import TransientSolver

from benchmarks.conftest import print_header


def regenerate_impedance():
    model = PDNModel(CORTEX_A72_PDN)
    freqs = np.logspace(3.5, 8.7, 400)
    analysis = model.impedance_analysis(freqs, powered_cores=2)
    return freqs, analysis.impedance_magnitude("die")


def test_fig1b_impedance_spectrum(benchmark):
    freqs, mag = benchmark.pedantic(
        regenerate_impedance, rounds=1, iterations=1
    )
    print_header("Fig. 1(b): PDN input impedance seen by the die (A72)")
    first = (freqs > 50e6) & (freqs < 200e6)
    second = (freqs > 5e5) & (freqs < 2e7)
    third = (freqs > 4e3) & (freqs < 5e5)
    rows = [
        ("1st-order", freqs[first][np.argmax(mag[first])], mag[first].max()),
        ("2nd-order", freqs[second][np.argmax(mag[second])], mag[second].max()),
        ("3rd-order", freqs[third][np.argmax(mag[third])], mag[third].max()),
    ]
    print(f"{'peak':<10} {'frequency':>14} {'|Z|':>12}")
    for name, f, z in rows:
        print(f"{name:<10} {f / 1e6:>11.3f} MHz {z * 1e3:>9.1f} mOhm")

    # shape: 1st-order peak in 50-200 MHz and it tops the spectrum
    assert 50e6 < rows[0][1] < 200e6
    assert rows[0][2] >= rows[1][2] >= rows[2][2] * 0.5
    # paper's frequency decades for the lower-order tanks
    assert rows[1][1] < 2e7
    assert rows[2][1] < 5e5


def test_fig1c_step_response(benchmark):
    def regenerate():
        model = PDNModel(CORTEX_A72_PDN)
        circuit = model.build_circuit(2)
        circuit.add(
            CurrentSource(
                "iload",
                "die",
                "0",
                current=lambda t: 2.0 if t >= 20e-9 else 0.5,
            )
        )
        solver = TransientSolver(circuit, dt=0.5e-9)
        return solver.run(600e-9)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 1(c): die voltage response to a 1.5 A load step")
    v = result.voltage("die")
    t = result.times
    for t_ns in (10, 25, 33, 40, 60, 100, 200, 400):
        idx = np.searchsorted(t, t_ns * 1e-9)
        print(f"  t = {t_ns:4d} ns   V_die = {v[idx] * 1e3:8.2f} mV")
    droop = 1.0 - v.min()
    print(f"  worst droop: {droop * 1e3:.1f} mV")
    assert droop > 0.01
    # damped first-order ring right after the step: the first local
    # minimum arrives within about one resonance period (~15 ns)
    after = (t > 20e-9) & (t < 60e-9)
    va = v[after]
    ta = t[after]
    local_minima = [
        ta[i]
        for i in range(1, va.size - 1)
        if va[i] < va[i - 1] and va[i] < va[i + 1]
    ]
    assert local_minima, "no fast ring after the step"
    assert local_minima[0] < 45e-9
