"""Electromagnetic emanation model.

Section 2.2 of the paper gives the physics this package implements: the
die's interconnect acts as a distributed transmitting antenna whose
radiated power at a frequency varies *quadratically* with the amplitude
of the oscillatory feed current at that frequency (Hertzian-dipole
radiation).  Because the PDN's first-order resonance maximizes the die
current oscillation, the EM spectrum peaks exactly where on-chip
voltage noise peaks -- the correlation the whole methodology rests on.

- :mod:`repro.em.radiation` -- die current harmonics -> radiated field.
- :mod:`repro.em.antenna` -- the square loop receiver, its |S11| and
  frequency response (Fig. 6).
- :mod:`repro.em.propagation` -- coupling vs antenna distance and the
  ambient noise environment.
"""

from repro.em.radiation import EmissionSpectrum, DieRadiator, combine_emissions
from repro.em.antenna import SquareLoopAntenna
from repro.em.propagation import NearFieldCoupling, AmbientEnvironment

__all__ = [
    "EmissionSpectrum",
    "DieRadiator",
    "combine_emissions",
    "SquareLoopAntenna",
    "NearFieldCoupling",
    "AmbientEnvironment",
]
