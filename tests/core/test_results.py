"""Unit tests for result containers."""

import numpy as np

from repro.core.results import MultiDomainSpectrum
from repro.instruments.spectrum_analyzer import SpectrumTrace


class TestMultiDomainSpectrum:
    def _trace(self):
        freqs = np.linspace(50e6, 200e6, 100)
        dbm = np.full(100, -95.0)
        dbm[20] = -50.0
        dbm[60] = -55.0
        return SpectrumTrace(freqs, dbm)

    def test_visible_domains_above_floor(self):
        trace = self._trace()
        md = MultiDomainSpectrum(
            trace=trace,
            domain_peaks={
                "a": (trace.frequencies_hz[20], -50.0),
                "b": (trace.frequencies_hz[60], -55.0),
                "c": (150e6, -94.0),  # buried in the floor
            },
        )
        visible = md.visible_domains(floor_margin_db=6.0)
        assert set(visible) == {"a", "b"}

    def test_empty_peaks(self):
        md = MultiDomainSpectrum(trace=self._trace())
        assert md.visible_domains() == []
