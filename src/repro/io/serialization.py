"""JSON round-trips for loop programs, virus archives, GA state.

Everything the run harness persists flows through here: single
programs, whole populations, virus archives, per-generation GA history
and mid-campaign checkpoints (population + RNG state + memo cache +
history), so the on-disk formats stay versioned in one place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.cpu.arm import ARM_ISA
from repro.cpu.isa import Instruction, InstructionSet, RegisterFile
from repro.cpu.program import LoopProgram
from repro.cpu.x86 import X86_ISA
from repro.ga.templates import render_individual_source

_BASE_ISAS: Dict[str, InstructionSet] = {
    "armv8": ARM_ISA,
    "x86-64": X86_ISA,
}

FORMAT_VERSION = 1


class SerializationError(Exception):
    """Malformed or incompatible serialized data."""


def _base_isa_for(isa: InstructionSet) -> str:
    """Identify which base table an instruction set derives from."""
    for name, base in _BASE_ISAS.items():
        base_mnemonics = {s.mnemonic for s in base.specs}
        if all(s.mnemonic in base_mnemonics for s in isa.specs):
            return name
    raise SerializationError(
        f"instruction set {isa.name!r} does not derive from a known base"
    )


def program_to_dict(program: LoopProgram) -> dict:
    """Serializable representation of a loop program."""
    isa = program.isa
    return {
        "format_version": FORMAT_VERSION,
        "base_isa": _base_isa_for(isa),
        "isa_name": isa.name,
        "registers": {
            rf.value: count for rf, count in isa.registers.items()
        },
        "memory_slots": isa.memory_slots,
        "name": program.name,
        "body": [
            {
                "mnemonic": i.mnemonic,
                "dest": i.dest,
                "sources": list(i.sources),
                "address": i.address,
            }
            for i in program.body
        ],
    }


def program_from_dict(data: dict) -> LoopProgram:
    """Reconstruct a loop program from its serialized form."""
    try:
        version = data["format_version"]
        base_name = data["base_isa"]
        body_data = data["body"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"missing field: {exc}") from exc
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r}"
        )
    try:
        base = _BASE_ISAS[base_name]
    except KeyError:
        raise SerializationError(
            f"unknown base ISA {base_name!r}"
        ) from None
    registers = {
        RegisterFile(key): int(count)
        for key, count in data.get("registers", {}).items()
    } or dict(base.registers)
    isa = InstructionSet(
        name=data.get("isa_name", base.name),
        specs=base.specs,
        registers=registers,
        memory_slots=int(data.get("memory_slots", base.memory_slots)),
    )
    body = []
    for entry in body_data:
        try:
            spec = isa.spec(entry["mnemonic"])
        except KeyError as exc:
            raise SerializationError(str(exc)) from exc
        body.append(
            Instruction(
                spec=spec,
                dest=entry.get("dest"),
                sources=tuple(entry.get("sources", ())),
                address=entry.get("address"),
            )
        )
    return LoopProgram(
        isa=isa, body=tuple(body), name=data.get("name", "loaded")
    )


def save_program(
    program: LoopProgram, path: Union[str, Path]
) -> None:
    """Write a program to a JSON file."""
    Path(path).write_text(
        json.dumps(program_to_dict(program), indent=2), encoding="utf-8"
    )


def load_program(path: Union[str, Path]) -> LoopProgram:
    """Read a program back from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return program_from_dict(data)


def save_population(
    programs, path: Union[str, Path]
) -> None:
    """Persist a whole GA population (for resuming a search later).

    Section 3.1(a): the initial seed population "can be either a new
    random initial population or a population from a previous GA run".
    """
    data = {
        "format_version": FORMAT_VERSION,
        "individuals": [program_to_dict(p) for p in programs],
    }
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_population(path: Union[str, Path]):
    """Load a previously saved population."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError("unsupported population format")
    try:
        individuals = data["individuals"]
    except KeyError:
        raise SerializationError("missing individuals field") from None
    return [program_from_dict(entry) for entry in individuals]


def save_virus_archive(
    summary, directory: Union[str, Path], stem: Optional[str] = None
) -> Path:
    """Archive a GA run: program JSON, assembly text and metrics.

    Returns the path of the metadata file.  ``summary`` is a
    :class:`repro.core.results.GARunSummary`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or f"{summary.cluster_name}-{summary.metric}"

    save_program(summary.virus, directory / f"{stem}.json")
    (directory / f"{stem}.s").write_text(
        render_individual_source(summary.virus), encoding="utf-8"
    )
    # Full GA provenance (per-generation history + config), so reports
    # can be regenerated from the archive without re-running the search.
    (directory / f"{stem}.summary.json").write_text(
        summary.to_json(indent=2), encoding="utf-8"
    )
    metadata = {
        "format_version": FORMAT_VERSION,
        "cluster": summary.cluster_name,
        "metric": summary.metric,
        "generations": summary.generations,
        "dominant_frequency_hz": summary.dominant_frequency_hz,
        "max_droop_v": summary.max_droop_v,
        "peak_to_peak_v": summary.peak_to_peak_v,
        "ipc": summary.ipc,
        "loop_frequency_hz": summary.loop_frequency_hz,
        "loop_period_s": summary.loop_period_s,
        "program_file": f"{stem}.json",
        "assembly_file": f"{stem}.s",
        "summary_file": f"{stem}.summary.json",
    }
    meta_path = directory / f"{stem}.meta.json"
    meta_path.write_text(json.dumps(metadata, indent=2), encoding="utf-8")
    return meta_path


def load_virus_archive(meta_path: Union[str, Path]):
    """Load an archived virus: (program, metadata dict)."""
    meta_path = Path(meta_path)
    try:
        metadata = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    program = load_program(meta_path.parent / metadata["program_file"])
    return program, metadata


# ---------------------------------------------------------------------------
# GA state: evaluations, generation records, results, checkpoints.
# ---------------------------------------------------------------------------
def evaluation_to_dict(evaluation) -> dict:
    """Serialize a :class:`repro.ga.fitness.FitnessEvaluation`."""
    return {
        "score": evaluation.score,
        "dominant_frequency_hz": evaluation.dominant_frequency_hz,
        "max_droop_v": evaluation.max_droop_v,
        "peak_to_peak_v": evaluation.peak_to_peak_v,
        "ipc": evaluation.ipc,
        "loop_frequency_hz": evaluation.loop_frequency_hz,
    }


def evaluation_from_dict(data: dict):
    from repro.ga.fitness import FitnessEvaluation

    try:
        return FitnessEvaluation(
            score=float(data["score"]),
            dominant_frequency_hz=float(data["dominant_frequency_hz"]),
            max_droop_v=float(data["max_droop_v"]),
            peak_to_peak_v=float(data["peak_to_peak_v"]),
            ipc=float(data["ipc"]),
            loop_frequency_hz=float(data["loop_frequency_hz"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed evaluation: {exc}") from exc


def record_to_dict(record) -> dict:
    """Serialize a :class:`repro.ga.engine.GenerationRecord`."""
    return {
        "generation": record.generation,
        "mean_score": record.mean_score,
        "best": evaluation_to_dict(record.best),
        "best_program": program_to_dict(record.best_program),
    }


def record_from_dict(data: dict):
    from repro.ga.engine import GenerationRecord

    try:
        return GenerationRecord(
            generation=int(data["generation"]),
            best_program=program_from_dict(data["best_program"]),
            best=evaluation_from_dict(data["best"]),
            mean_score=float(data["mean_score"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed record: {exc}") from exc


def ga_config_to_dict(config) -> dict:
    from dataclasses import asdict

    return asdict(config)


def ga_config_from_dict(data: dict):
    from repro.ga.engine import GAConfig

    try:
        return GAConfig(**data)
    except TypeError as exc:
        raise SerializationError(f"malformed GA config: {exc}") from exc


def ga_result_to_dict(result) -> dict:
    """Serialize a :class:`repro.ga.engine.GAResult`."""
    return {
        "format_version": FORMAT_VERSION,
        "config": ga_config_to_dict(result.config),
        "history": [record_to_dict(r) for r in result.history],
        "evaluations": result.evaluations,
    }


def ga_result_from_dict(data: dict):
    from repro.ga.engine import GAResult

    try:
        return GAResult(
            config=ga_config_from_dict(data["config"]),
            history=[record_from_dict(r) for r in data["history"]],
            evaluations=int(data["evaluations"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed GA result: {exc}") from exc


def genome_to_list(genome: Tuple[Tuple, ...]) -> list:
    """JSON form of :meth:`repro.cpu.program.LoopProgram.genome`."""
    return [
        [mnemonic, dest, list(sources), address]
        for mnemonic, dest, sources, address in genome
    ]


def genome_from_list(data: list) -> Tuple[Tuple, ...]:
    try:
        return tuple(
            (
                str(mnemonic),
                None if dest is None else int(dest),
                tuple(int(s) for s in sources),
                None if address is None else int(address),
            )
            for mnemonic, dest, sources, address in data
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed genome: {exc}") from exc


def checkpoint_to_dict(checkpoint) -> dict:
    """Serialize a :class:`repro.ga.engine.GACheckpoint`."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "ga-checkpoint",
        "config": ga_config_to_dict(checkpoint.config),
        "generation": checkpoint.generation,
        "evaluations": checkpoint.evaluations,
        "rng_state": checkpoint.rng_state,
        "fitness_state": checkpoint.fitness_state,
        "population": [program_to_dict(p) for p in checkpoint.population],
        "cache": [
            [genome_to_list(genome), evaluation_to_dict(evaluation)]
            for genome, evaluation in checkpoint.cache.items()
        ],
        "history": [record_to_dict(r) for r in checkpoint.history],
    }


def checkpoint_from_dict(data: dict):
    from repro.ga.engine import GACheckpoint

    if data.get("kind") != "ga-checkpoint":
        raise SerializationError("not a GA checkpoint")
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported checkpoint version {data.get('format_version')!r}"
        )
    try:
        return GACheckpoint(
            config=ga_config_from_dict(data["config"]),
            generation=int(data["generation"]),
            population=[
                program_from_dict(p) for p in data["population"]
            ],
            rng_state=data["rng_state"],
            cache={
                genome_from_list(genome): evaluation_from_dict(ev)
                for genome, ev in data["cache"]
            },
            history=[record_from_dict(r) for r in data["history"]],
            evaluations=int(data["evaluations"]),
            fitness_state=data.get("fitness_state"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(checkpoint, path: Union[str, Path]) -> Path:
    """Atomically write a GA checkpoint to ``path``.

    The file is staged next to the target and moved into place with
    :func:`os.replace`, so a run killed mid-write leaves either the
    previous checkpoint or the new one -- never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(path.name + ".tmp")
    staging.write_text(
        json.dumps(checkpoint_to_dict(checkpoint)), encoding="utf-8"
    )
    os.replace(staging, path)
    return path


def load_checkpoint(path: Union[str, Path]):
    """Read a GA checkpoint back from ``path``."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return checkpoint_from_dict(data)
