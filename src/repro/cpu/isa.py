"""Instruction-set model: specs, operands and concrete instructions.

Instruction attributes follow what the GA optimization needs (Section
3.3 of the paper): a diverse pool spanning single-cycle and multi-cycle
latencies, integer/float/SIMD units and memory accesses.  Each spec
carries a *switching energy* used by the current model: high-IPC bursts
of cheap instructions draw large current, long non-pipelined operations
(DIV, FSQRT) stall issue and let current collapse -- exactly the
high/low alternation a dI/dt virus exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


class InstructionClass(enum.Enum):
    """Instruction-type taxonomy used in Table 2's mix breakdown."""

    BRANCH = "branch"
    INT_SHORT = "sl_int"
    INT_LONG = "ll_int"
    INT_SHORT_MEM = "sl_int_mem"  # x86 only: integer op with memory operand
    INT_LONG_MEM = "ll_int_mem"  # x86 only
    FLOAT = "float"
    SIMD = "simd"
    MEM = "mem"  # ARM only: explicit load/store


class ExecutionUnit(enum.Enum):
    """Functional units instructions contend for."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPU = "fpu"
    FDIV = "fdiv"
    SIMD = "simd"
    LSU = "lsu"
    BRANCH = "branch"


class RegisterFile(enum.Enum):
    """Register namespaces; operands never cross namespaces."""

    INT = "int"
    FP = "fp"
    VEC = "vec"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one opcode.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic, unique within an instruction set.
    iclass:
        Taxonomy bucket (drives Table 2 mix accounting).
    unit:
        Functional unit the instruction occupies.
    latency:
        Cycles from issue until the result is available.
    recip_throughput:
        Cycles the unit stays blocked per instruction (1 for fully
        pipelined units; equal to ``latency`` for non-pipelined DIV and
        SQRT, which is what creates low-current windows).
    energy:
        Switching energy per execution in arbitrary charge units;
        converted to amperes by :class:`repro.cpu.current.CurrentModel`.
    regfile:
        Register namespace of the operands.
    num_sources:
        Register source operands (memory forms also reference an
        address operand, tracked separately).
    touches_memory:
        Whether the instruction engages the load/store unit and L1
        (cache hits only -- the paper deliberately avoids misses).
    """

    mnemonic: str
    iclass: InstructionClass
    unit: ExecutionUnit
    latency: int
    recip_throughput: int
    energy: float
    regfile: RegisterFile = RegisterFile.INT
    num_sources: int = 2
    has_dest: bool = True
    touches_memory: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"{self.mnemonic}: latency must be >= 1")
        if not 1 <= self.recip_throughput <= self.latency:
            raise ValueError(
                f"{self.mnemonic}: recip_throughput must be in 1..latency"
            )
        if self.energy < 0.0:
            raise ValueError(f"{self.mnemonic}: energy must be >= 0")


@dataclass(frozen=True)
class Instruction:
    """A concrete instruction: an opcode with register/memory operands.

    This is the GA *gene*.  ``sources`` and ``dest`` are register
    numbers inside ``spec.regfile``; ``address`` is an abstract L1 slot
    index for memory forms (always a hit, per Section 3.3).
    """

    spec: InstructionSpec
    dest: Optional[int] = None
    sources: Tuple[int, ...] = ()
    address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.spec.has_dest and self.dest is None:
            raise ValueError(f"{self.spec.mnemonic}: missing dest register")
        if len(self.sources) != self.spec.num_sources:
            raise ValueError(
                f"{self.spec.mnemonic}: expected {self.spec.num_sources} "
                f"sources, got {len(self.sources)}"
            )
        if self.spec.touches_memory and self.address is None:
            raise ValueError(f"{self.spec.mnemonic}: missing memory address")

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def assembly(self) -> str:
        """Render a readable assembly-like line."""
        prefix = {
            RegisterFile.INT: "r",
            RegisterFile.FP: "f",
            RegisterFile.VEC: "v",
        }[self.spec.regfile]
        parts = []
        if self.spec.has_dest:
            parts.append(f"{prefix}{self.dest}")
        parts.extend(f"{prefix}{s}" for s in self.sources)
        if self.spec.touches_memory:
            parts.append(f"[mem+{self.address}]")
        return f"{self.spec.mnemonic} " + ", ".join(parts)


@dataclass(frozen=True)
class InstructionSet:
    """A named collection of instruction specs plus register resources.

    ``registers`` maps each register file to the number of architectural
    registers the GA may use (the pre-initialized pool from the loop
    template, Section 3.3).
    """

    name: str
    specs: Tuple[InstructionSpec, ...]
    registers: Dict[RegisterFile, int] = field(
        default_factory=lambda: {
            RegisterFile.INT: 16,
            RegisterFile.FP: 16,
            RegisterFile.VEC: 16,
        }
    )
    memory_slots: int = 64

    def __post_init__(self) -> None:
        seen = set()
        for s in self.specs:
            if s.mnemonic in seen:
                raise ValueError(f"duplicate mnemonic {s.mnemonic!r}")
            seen.add(s.mnemonic)

    def spec(self, mnemonic: str) -> InstructionSpec:
        for s in self.specs:
            if s.mnemonic == mnemonic:
                return s
        raise KeyError(f"{self.name}: unknown mnemonic {mnemonic!r}")

    def by_class(self, iclass: InstructionClass) -> Tuple[InstructionSpec, ...]:
        return tuple(s for s in self.specs if s.iclass == iclass)

    def classes(self) -> Tuple[InstructionClass, ...]:
        ordered: Dict[InstructionClass, None] = {}
        for s in self.specs:
            ordered.setdefault(s.iclass)
        return tuple(ordered)

    def subset(self, mnemonics: Sequence[str]) -> "InstructionSet":
        """Restrict the pool to the given mnemonics (user XML spec)."""
        chosen = tuple(self.spec(m) for m in mnemonics)
        return InstructionSet(
            name=f"{self.name}-subset",
            specs=chosen,
            registers=dict(self.registers),
            memory_slots=self.memory_slots,
        )
