"""Unit tests for the radiated-emission model."""

import numpy as np
import pytest

from repro.em.radiation import (
    DieRadiator,
    EmissionSpectrum,
    combine_emissions,
)
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


@pytest.fixture(scope="module")
def resonant_response():
    """PDN response to a square wave pulsing at the 67 MHz resonance."""
    solver = PDNModel(CORTEX_A72_PDN).solver(2)
    n = 64
    wave = np.where(np.arange(n) < n // 2, 1.5, 0.5)
    return solver.solve(wave, n * 67e6)


class TestEmissionSpectrum:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EmissionSpectrum(np.array([1.0, 2.0]), np.array([1.0]))

    def test_band_filters_lines(self):
        s = EmissionSpectrum(
            np.array([10e6, 60e6, 150e6]), np.array([1.0, 2.0, 3.0])
        )
        banded = s.band(50e6, 100e6)
        assert list(banded.frequencies_hz) == [60e6]

    def test_peak_returns_strongest_line(self):
        s = EmissionSpectrum(
            np.array([10e6, 60e6]), np.array([1.0, 2.0])
        )
        f, a = s.peak()
        assert f == 60e6 and a == 2.0

    def test_empty_peak_is_zero(self):
        s = EmissionSpectrum(np.empty(0), np.empty(0))
        assert s.peak() == (0.0, 0.0)


class TestDieRadiator:
    def test_no_dc_radiation(self, resonant_response):
        emission = DieRadiator().emission(resonant_response)
        assert (emission.frequencies_hz > 0).all()

    def test_quadratic_power_law(self, resonant_response):
        """Field amplitude is linear in current amplitude (power quadratic)."""
        radiator = DieRadiator()
        emission = radiator.emission(resonant_response)
        # doubling all current harmonics doubles the field
        doubled = type(resonant_response)(
            sample_rate_hz=resonant_response.sample_rate_hz,
            nominal_voltage=resonant_response.nominal_voltage,
            die_voltage=resonant_response.die_voltage,
            die_current=resonant_response.die_current,
            harmonic_frequencies_hz=(
                resonant_response.harmonic_frequencies_hz
            ),
            die_voltage_harmonics=resonant_response.die_voltage_harmonics,
            die_current_harmonics=(
                2.0 * resonant_response.die_current_harmonics
            ),
        )
        emission2 = radiator.emission(doubled)
        assert np.allclose(
            emission2.amplitudes, 2.0 * emission.amplitudes
        )

    def test_peak_lands_on_resonance(self, resonant_response):
        """Max emission in the band is at the excitation = resonance."""
        emission = DieRadiator().emission(resonant_response)
        f, _ = emission.band(50e6, 200e6).peak()
        assert f == pytest.approx(67e6, rel=0.01)

    def test_tilt_monotonic(self):
        """Equal currents at two frequencies: higher f radiates more."""
        radiator = DieRadiator(tilt_exponent=0.4)
        # craft a fake response with two equal harmonics
        from repro.pdn.steady_state import PeriodicResponse

        freqs = np.array([0.0, 50e6, 100e6])
        amps = np.array([0.0, 1.0, 1.0], dtype=complex)
        resp = PeriodicResponse(
            sample_rate_hz=1e9,
            nominal_voltage=1.0,
            die_voltage=np.ones(4),
            die_current=np.ones(4),
            harmonic_frequencies_hz=freqs,
            die_voltage_harmonics=amps,
            die_current_harmonics=amps,
        )
        emission = radiator.emission(resp)
        assert emission.amplitudes[1] > emission.amplitudes[0]


class TestCombineEmissions:
    def test_power_addition_at_same_frequency(self):
        a = EmissionSpectrum(np.array([60e6]), np.array([3.0]))
        b = EmissionSpectrum(np.array([60e6]), np.array([4.0]))
        combined = combine_emissions([a, b])
        assert combined.amplitudes[0] == pytest.approx(5.0)  # sqrt(9+16)

    def test_distinct_lines_preserved(self):
        a = EmissionSpectrum(np.array([60e6]), np.array([1.0]))
        b = EmissionSpectrum(np.array([75e6]), np.array([2.0]))
        combined = combine_emissions([a, b])
        assert list(combined.frequencies_hz) == [60e6, 75e6]
        assert list(combined.amplitudes) == [1.0, 2.0]

    def test_empty_input(self):
        combined = combine_emissions([])
        assert combined.frequencies_hz.size == 0
