"""Chain routing of ``run_mixed`` and ``run_nondeterministic``.

Satellite coverage: the heterogeneous-mix and cache-nondeterministic
execution modes go through the same chain as single-program items, with
bit-equivalence against the legacy ``Cluster`` methods and exact
RNG-stream determinism (the chain consumes ``memory_rng`` in the same
order the legacy per-call loop did).
"""

import numpy as np
import pytest

from repro.chain import ChainItem, ChainRequest, SignalPath
from repro.cpu.cache import CacheModel
from repro.cpu.isa import InstructionSet
from repro.cpu.program import program_from_mnemonics, random_program
from repro.em.radiation import DieRadiator
from repro.ga.fitness import ClusterFitness, EMAmplitudeFitness
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.workloads.loops import high_low_program


def response_only_path():
    return SignalPath.em_chain(DieRadiator(), SpectrumAnalyzer())


def run_response_only(cluster, items):
    request = ChainRequest(
        cluster=cluster,
        items=items,
        want_amplitude=False,
        want_trace=False,
    )
    return response_only_path().run(request)


def memory_heavy_program(cluster, seed=1):
    wide = InstructionSet(
        name=f"{cluster.spec.isa.name}-wide",
        specs=cluster.spec.isa.specs,
        registers=dict(cluster.spec.isa.registers),
        memory_slots=256,
    )
    return random_program(
        wide, 24, np.random.default_rng(seed),
        pool=(wide.spec("ldr"), wide.spec("add")),
    )


class TestMixedThroughChain:
    def _programs(self, cluster):
        isa = cluster.spec.isa
        return [
            high_low_program(isa),
            program_from_mnemonics(isa, ["add"] * 6),
        ]

    def test_mixed_item_matches_run_mixed(self, a53):
        programs = self._programs(a53)
        legacy = a53.run_mixed(programs)
        result = run_response_only(
            a53, [ChainItem(programs=programs)]
        )
        item = result.items[0]
        assert np.array_equal(
            item.response.die_voltage, legacy.die_voltage
        )
        assert np.array_equal(
            item.response.die_current, legacy.die_current
        )
        assert item.execution.active_cores == len(programs)

    def test_mixed_item_validates_program_count(self, a53):
        too_many = [high_low_program(a53.spec.isa)] * (
            a53.powered_cores + 1
        )
        with pytest.raises(ValueError, match="programs"):
            run_response_only(a53, [ChainItem(programs=too_many)])

    def test_mixed_batch_matches_sequential_legacy(self, a53):
        programs = self._programs(a53)
        legacy = [
            a53.run_mixed(programs),
            a53.run_mixed(list(reversed(programs))),
        ]
        result = run_response_only(
            a53,
            [
                ChainItem(programs=programs),
                ChainItem(programs=list(reversed(programs))),
            ],
        )
        for item, expected in zip(result.items, legacy):
            assert np.array_equal(
                item.response.die_voltage, expected.die_voltage
            )


class TestNondeterministicThroughChain:
    def test_nondet_item_matches_run_nondeterministic(self, a72):
        program = memory_heavy_program(a72)
        cache = CacheModel(l1_slots=64)

        legacy_rng = np.random.default_rng(42)
        legacy = a72.run_nondeterministic(
            program, cache_model=cache, memory_rng=legacy_rng
        )

        chain_rng = np.random.default_rng(42)
        result = run_response_only(
            a72,
            [
                ChainItem(
                    program=program,
                    cache_model=cache,
                    memory_rng=chain_rng,
                )
            ],
        )
        item = result.items[0]
        assert np.array_equal(
            item.response.die_voltage, legacy.response.die_voltage
        )
        assert item.ipc == legacy.ipc
        assert item.loop_frequency_hz == legacy.loop_frequency_hz
        assert len(item.windows) == legacy.active_cores
        # RNG-stream determinism: both paths drew the same number of
        # variates in the same order.
        assert (
            chain_rng.bit_generator.state == legacy_rng.bit_generator.state
        )

    def test_nondet_batch_preserves_memory_rng_stream(self, a72):
        """A batch of N items consumes memory_rng exactly like N
        sequential legacy calls (per-stream order is preserved even
        though stages are batched)."""
        program = memory_heavy_program(a72)
        cache = CacheModel(l1_slots=64)

        legacy_rng = np.random.default_rng(7)
        legacy = [
            a72.run_nondeterministic(
                program, cache_model=cache, memory_rng=legacy_rng
            )
            for _ in range(3)
        ]

        chain_rng = np.random.default_rng(7)
        result = run_response_only(
            a72,
            [
                ChainItem(
                    program=program,
                    cache_model=cache,
                    memory_rng=chain_rng,
                )
                for _ in range(3)
            ],
        )
        for item, expected in zip(result.items, legacy):
            assert np.array_equal(
                item.response.die_voltage, expected.response.die_voltage
            )
        assert (
            chain_rng.bit_generator.state == legacy_rng.bit_generator.state
        )

    def test_nondet_fitness_batch_matches_sequential_calls(self, a72):
        """EMAmplitudeFitness.evaluate_batch == one-at-a-time calls,
        including both analyzer and memory RNG end states."""
        program = memory_heavy_program(a72)
        programs = [program, memory_heavy_program(a72, seed=2)]
        cache = CacheModel(l1_slots=64)

        serial = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(10)),
            samples=3,
            cache_model=cache,
            memory_rng=np.random.default_rng(11),
        )
        expected = [serial(a72, p) for p in programs]

        batched = EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(10)),
            samples=3,
            cache_model=cache,
            memory_rng=np.random.default_rng(11),
        )
        got = batched.evaluate_batch(a72, programs)

        assert got == expected
        assert (
            batched.analyzer.rng.bit_generator.state
            == serial.analyzer.rng.bit_generator.state
        )
        assert (
            batched.memory_rng.bit_generator.state
            == serial.memory_rng.bit_generator.state
        )

    def test_cluster_fitness_batch_delegates(self, a72):
        fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(4)),
                samples=2,
            ),
            a72,
        )
        program = high_low_program(a72.spec.isa)
        evaluations = fitness.evaluate_batch([program, program])
        assert len(evaluations) == 2
        assert all(e.score > 0.0 for e in evaluations)
