"""Unit tests for the critical-voltage failure model."""

import numpy as np
import pytest

from repro.stability.failure import (
    FAILURE_PRESETS,
    CriticalVoltageModel,
    Outcome,
    failure_model_for,
)


@pytest.fixture
def model():
    return CriticalVoltageModel(
        v_crit_ref=0.8, f_ref_hz=1.0e9, jitter_sigma_v=0.0
    )


class TestCriticalVoltage:
    def test_v_crit_at_reference(self, model):
        assert model.v_crit(1.0e9) == pytest.approx(0.8)

    def test_v_crit_rises_with_clock(self, model):
        assert model.v_crit(1.5e9) > model.v_crit(1.0e9)
        assert model.v_crit(0.5e9) < model.v_crit(1.0e9)

    def test_slope_units(self, model):
        delta = model.v_crit(2.0e9) - model.v_crit(1.0e9)
        assert delta == pytest.approx(model.slope_v_per_ghz)


class TestClassification:
    def test_deep_dip_crashes_system(self, model):
        rng = np.random.default_rng(0)
        outcome = model.classify(0.7, 1.0e9, rng)
        assert outcome is Outcome.SYSTEM_CRASH

    def test_safe_voltage_passes(self, model):
        rng = np.random.default_rng(0)
        assert model.classify(0.9, 1.0e9, rng) is Outcome.PASS

    def test_sdc_window_above_crash(self, model):
        """Dips inside the 10 mV window are SDC or app crash."""
        rng = np.random.default_rng(0)
        outcomes = {
            model.classify(0.805, 1.0e9, rng) for _ in range(50)
        }
        assert outcomes <= {Outcome.SDC, Outcome.APP_CRASH}
        assert outcomes  # at least one observed

    def test_deviation_flag(self):
        assert not Outcome.PASS.is_deviation
        for o in (Outcome.SDC, Outcome.APP_CRASH, Outcome.SYSTEM_CRASH):
            assert o.is_deviation

    def test_jitter_blurs_threshold(self):
        jittery = CriticalVoltageModel(
            v_crit_ref=0.8, f_ref_hz=1e9, jitter_sigma_v=0.005
        )
        rng = np.random.default_rng(1)
        outcomes = {
            jittery.classify(0.8005, 1e9, rng) for _ in range(100)
        }
        assert Outcome.SYSTEM_CRASH in outcomes


class TestPresets:
    def test_presets_cover_all_platforms(self):
        assert set(FAILURE_PRESETS) == {
            "cortex-a72",
            "cortex-a53",
            "amd-athlon-ii-x4-645",
        }

    def test_lookup(self):
        assert failure_model_for("cortex-a72").f_ref_hz == 1.2e9
        with pytest.raises(KeyError):
            failure_model_for("m1")

    def test_calibration_leaves_margin_below_nominal(self):
        """v_crit sits well below each platform's nominal voltage."""
        nominal = {
            "cortex-a72": 1.0,
            "cortex-a53": 1.0,
            "amd-athlon-ii-x4-645": 1.4,
        }
        for name, model in FAILURE_PRESETS.items():
            assert model.v_crit(model.f_ref_hz) < nominal[name] - 0.1
