"""Runtime determinism checks: shadow recompute + RNG draw ledger.

A :class:`DeterminismTracker` is attached to a
:class:`repro.chain.SimulationSession` (``SimulationSession(audit=...)``
or CLI ``--audit``) and enforces, while a campaign runs, the two
invariants everything else assumes:

**Shadow recompute.**  Every session cache entry is claimed to be a
pure function of its key.  The tracker samples cache *hits* with a
seeded PRNG (independent of every measurement stream), recomputes the
value from scratch and asserts bitwise equality with the cached copy.
A mismatch means key aliasing (the pre-fix ``id(cluster)`` bug), a
missing ``state_version`` bump, or in-place mutation of a cached
array -- raised as :class:`~repro.audit.errors.CacheShadowMismatch`.

**RNG draw ledger.**  The batch-equivalence contract pins which chain
stage may drain which RNG stream: ``execute`` the per-item
``memory_rng`` generators, ``receive`` the analyzer RNG, every other
stage nothing (each stage declares this as its ``drains`` attribute).
The ledger snapshots each stream's ``bit_generator.state`` around
every stage; a stream advancing in a stage not entitled to it is a
violation, and for the receive stage the ledger *replays* the expected
draw sequence on a clone of the generator and asserts the post-stage
state matches exactly -- so an over- or under-draining receive path is
caught even though it is allowed to draw.

Violations raise typed :class:`~repro.audit.errors.AuditViolation`
errors and are mirrored as ``audit_violation`` events through
:mod:`repro.obs.events`; the tracker is opt-in and adds nothing to an
un-audited run.
"""

from __future__ import annotations

import dataclasses
import random
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.audit.errors import (
    AuditViolation,
    CacheShadowMismatch,
    RngLedgerViolation,
)
from repro.obs.events import NULL_LOG, EventLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.path import SignalPath
    from repro.chain.types import ChainRequest

__all__ = ["DeterminismTracker", "AuditStats", "bitwise_equal"]


def bitwise_equal(a: Any, b: Any) -> bool:
    """Exact (bit-level) equality for the value shapes session caches
    hold: ndarrays, dataclasses, (named)tuples, lists, floats, ints.

    Floats compare by their IEEE-754 bits (so ``-0.0 != 0.0`` and
    ``nan == nan``): the audit asks "is this the same computation?",
    not "are these numerically close?".
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return all(
            bitwise_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(
            bitwise_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, dict):
        return set(a) == set(b) and all(
            bitwise_equal(a[k], b[k]) for k in a
        )
    return bool(a == b)


@dataclass
class AuditStats:
    """Counters for everything the tracker verified (observability)."""

    shadow_checks: Dict[str, int] = field(default_factory=dict)
    ledger_stages: int = 0
    ledger_replays: int = 0
    violations: int = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "shadow_checks": dict(self.shadow_checks),
            "ledger_stages": self.ledger_stages,
            "ledger_replays": self.ledger_replays,
            "violations": self.violations,
        }


class DeterminismTracker:
    """Opt-in runtime determinism auditor for one simulation session.

    Parameters
    ----------
    sample_rate:
        Fraction of cache hits shadow-recomputed, in [0, 1].  Sampling
        is driven by a private seeded PRNG, so which hits are checked
        is itself deterministic and never perturbs measurement RNG
        streams.
    seed:
        Seed for the sampling PRNG.
    event_log:
        Destination for ``audit_violation`` / ``audit_summary`` events.
    shadow / ledger:
        Independently disable either layer.
    """

    def __init__(
        self,
        sample_rate: float = 0.25,
        seed: int = 0,
        event_log: EventLog = NULL_LOG,
        shadow: bool = True,
        ledger: bool = True,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self.event_log = event_log
        self.shadow = shadow
        self.ledger = ledger
        self.stats = AuditStats()
        self._sampler = random.Random(seed)

    # ------------------------------------------------------------------
    # shadow-recompute layer
    # ------------------------------------------------------------------
    def check_hit(
        self,
        cache: str,
        key: Any,
        cached: Any,
        recompute: Callable[[], Any],
    ) -> None:
        """Shadow-verify one cache hit (sampled).

        ``recompute`` must rebuild the value from scratch through the
        same pure code path that populated the cache; it runs only when
        this hit is sampled, so the steady-state overhead is
        ``sample_rate`` x the original miss cost.
        """
        if not self.shadow or self.sample_rate <= 0.0:
            return
        if self._sampler.random() >= self.sample_rate:
            return
        fresh = recompute()
        count = self.stats.shadow_checks.get(cache, 0)
        self.stats.shadow_checks[cache] = count + 1
        if not bitwise_equal(cached, fresh):
            self._violate(
                CacheShadowMismatch,
                f"session cache {cache!r} hit for key {key!r} is not "
                "bitwise equal to a from-scratch recompute: the entry "
                "was aliased, mutated, or its key omits an input",
                site=f"session.{cache}",
            )

    # ------------------------------------------------------------------
    # RNG draw ledger
    # ------------------------------------------------------------------
    def chain_ledger(
        self, path: "SignalPath", request: "ChainRequest"
    ) -> Optional["ChainLedger"]:
        """A per-run ledger for one batched chain call (or None)."""
        if not self.ledger:
            return None
        return ChainLedger(self, path, request)

    # ------------------------------------------------------------------
    def _violate(
        self,
        cls: type,
        message: str,
        site: Optional[str] = None,
        **payload: Any,
    ) -> None:
        self.stats.violations += 1
        self.event_log.emit(
            "audit_violation",
            kind=cls.kind,
            site=site,
            message=message,
            **payload,
        )
        raise cls(message, site=site)

    def summary(self) -> Dict[str, Any]:
        return self.stats.snapshot()

    def emit_summary(self, event_log: Optional[EventLog] = None) -> None:
        """Emit an ``audit_summary`` event with the check counters."""
        log = event_log if event_log is not None else self.event_log
        log.emit("audit_summary", **self.summary())


class ChainLedger:
    """Per-stream RNG accounting across one chain run's stages.

    Streams are collected from the signal path (the analyzer RNG of
    any stage exposing ``.analyzer``) and the request (each distinct
    per-item ``memory_rng``).  ``after_stage`` is called by
    :meth:`repro.chain.SignalPath.run` with the stage's declared
    ``drains`` tuple.
    """

    def __init__(
        self,
        tracker: DeterminismTracker,
        path: "SignalPath",
        request: "ChainRequest",
    ):
        self._tracker = tracker
        self._request = request
        self._analyzer = next(
            (
                stage.analyzer
                for stage in path.stages
                if getattr(stage, "analyzer", None) is not None
            ),
            None,
        )
        streams: List[Tuple[str, Any]] = []
        analyzer_rng = getattr(self._analyzer, "rng", None)
        if analyzer_rng is not None:
            streams.append(("analyzer", analyzer_rng))
        for item in request.items:
            rng = getattr(item, "memory_rng", None)
            if rng is not None and not any(
                existing is rng for _, existing in streams
            ):
                streams.append(("memory", rng))
        self._streams = streams
        self._before = [self._state(rng) for _, rng in streams]

    @staticmethod
    def _state(rng: np.random.Generator) -> Dict[str, Any]:
        return rng.bit_generator.state

    def after_stage(
        self, stage: str, drains: Tuple[str, ...] = ()
    ) -> None:
        """Verify every stream against ``stage``'s drain entitlement."""
        tracker = self._tracker
        tracker.stats.ledger_stages += 1
        for i, (name, rng) in enumerate(self._streams):
            before = self._before[i]
            after = self._state(rng)
            advanced = after != before
            if advanced and name not in drains:
                tracker._violate(
                    RngLedgerViolation,
                    f"stage {stage!r} advanced the {name!r} RNG stream "
                    "it is not entitled to drain; per-stream draw "
                    "order no longer matches the sequential path",
                    site=f"chain.{stage}",
                    stream=name,
                )
            if name == "analyzer" and "analyzer" in drains:
                expected = self._expected_analyzer_state(before)
                if expected is not None:
                    tracker.stats.ledger_replays += 1
                    if expected != after:
                        tracker._violate(
                            RngLedgerViolation,
                            f"stage {stage!r} drained the analyzer "
                            "stream differently from the "
                            "batch-equivalence contract (expected "
                            f"{self._expected_draw_plan()} in request "
                            "order)",
                            site=f"chain.{stage}",
                            stream=name,
                        )
            self._before[i] = after

    # ------------------------------------------------------------------
    def _expected_draw_plan(self) -> str:
        request = self._request
        per_item = []
        if request.want_amplitude:
            per_item.append(f"{request.samples} banded amplitude draws")
        if request.want_trace:
            per_item.append("1 full-span trace draw")
        plan = " + ".join(per_item) if per_item else "no draws"
        return f"{len(request.items)} item(s) x ({plan})"

    def _expected_analyzer_state(
        self, before: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Post-receive analyzer state per the contract, by replaying
        the expected draw sequence on a clone; None when the expected
        pattern cannot be derived (degenerate empty band)."""
        request = self._request
        analyzer = self._analyzer
        clone = np.random.Generator(type(analyzer.rng.bit_generator)())
        clone.bit_generator.state = before
        if not request.want_emission:
            return clone.bit_generator.state
        environment = analyzer.environment
        centers = analyzer.bin_centers()
        band = request.band
        banded_bins = int(
            ((centers >= band[0]) & (centers <= band[1])).sum()
        )
        if request.want_amplitude and banded_bins == 0:
            # The receive stage raises before drawing; no expectation.
            return None
        for _ in request.items:
            if request.want_amplitude:
                for _ in range(request.samples):
                    environment.sample_noise_w((banded_bins,), clone)
            if request.want_trace:
                environment.sample_noise_w(centers.shape, clone)
        return clone.bit_generator.state
