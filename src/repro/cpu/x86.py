"""x86-64-like instruction table (Section 3.3's x86 pool).

Per the paper, the same mix-selection principles as ARM apply with two
adjustments: x86 has no explicit load/store instructions, so memory
traffic comes from integer instructions with memory address operands
(classes ``INT_SHORT_MEM`` / ``INT_LONG_MEM``), and SIMD uses SSE2.
"""

from __future__ import annotations

from repro.cpu.isa import (
    ExecutionUnit,
    InstructionClass,
    InstructionSet,
    InstructionSpec,
    RegisterFile,
)

_U = ExecutionUnit
_C = InstructionClass
_R = RegisterFile


def _spec(mnemonic, iclass, unit, latency, rt, energy, **kw) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        iclass=iclass,
        unit=unit,
        latency=latency,
        recip_throughput=rt,
        energy=energy,
        **kw,
    )


X86_SPECS = (
    # --- short-latency integer, register forms -----------------------------
    _spec("mov_rr", _C.INT_SHORT, _U.ALU, 1, 1, 0.9, num_sources=1),
    _spec("add_rr", _C.INT_SHORT, _U.ALU, 1, 1, 1.0),
    _spec("sub_rr", _C.INT_SHORT, _U.ALU, 1, 1, 1.0),
    _spec("xor_rr", _C.INT_SHORT, _U.ALU, 1, 1, 1.1),
    # --- long-latency integer, register forms ------------------------------
    _spec("imul_rr", _C.INT_LONG, _U.MUL, 3, 1, 2.4),
    _spec("idiv_rr", _C.INT_LONG, _U.DIV, 22, 22, 1.8),
    # --- short-latency integer with memory operand (L1 hit) -----------------
    _spec(
        "add_rm",
        _C.INT_SHORT_MEM,
        _U.LSU,
        4,
        1,
        2.6,
        num_sources=1,
        touches_memory=True,
    ),
    _spec(
        "mov_rm",
        _C.INT_SHORT_MEM,
        _U.LSU,
        3,
        1,
        2.2,
        num_sources=0,
        touches_memory=True,
    ),
    _spec(
        "mov_mr",
        _C.INT_SHORT_MEM,
        _U.LSU,
        1,
        1,
        2.1,
        num_sources=1,
        has_dest=False,
        touches_memory=True,
    ),
    _spec(
        "xor_rm",
        _C.INT_SHORT_MEM,
        _U.LSU,
        4,
        1,
        2.7,
        num_sources=1,
        touches_memory=True,
    ),
    # --- long-latency integer with memory operand ---------------------------
    _spec(
        "imul_rm",
        _C.INT_LONG_MEM,
        _U.MUL,
        6,
        1,
        3.0,
        num_sources=1,
        touches_memory=True,
    ),
    # --- x87/SSE scalar floating point --------------------------------------
    _spec("addss", _C.FLOAT, _U.FPU, 3, 1, 1.9, regfile=_R.FP),
    _spec("mulss", _C.FLOAT, _U.FPU, 4, 1, 2.5, regfile=_R.FP),
    _spec("divss", _C.FLOAT, _U.FDIV, 20, 20, 1.8, regfile=_R.FP),
    _spec(
        "sqrtss", _C.FLOAT, _U.FDIV, 26, 26, 1.7, regfile=_R.FP, num_sources=1
    ),
    # --- SSE2 packed SIMD ----------------------------------------------------
    _spec("addpd", _C.SIMD, _U.SIMD, 3, 1, 3.0, regfile=_R.VEC),
    _spec("mulpd", _C.SIMD, _U.SIMD, 5, 1, 3.8, regfile=_R.VEC),
    _spec("pmaddwd", _C.SIMD, _U.SIMD, 3, 1, 3.6, regfile=_R.VEC),
    _spec(
        "sqrtpd", _C.SIMD, _U.FDIV, 32, 32, 2.2, regfile=_R.VEC, num_sources=1
    ),
    # --- dummy unconditional branch ------------------------------------------
    _spec(
        "jmp_next",
        _C.BRANCH,
        _U.BRANCH,
        1,
        1,
        0.6,
        num_sources=0,
        has_dest=False,
    ),
)

X86_ISA = InstructionSet(
    name="x86-64",
    specs=X86_SPECS,
    registers={_R.INT: 14, _R.FP: 8, _R.VEC: 16},
    memory_slots=64,
)
