"""Figure 10: V_MIN and max droop on the Cortex-A72 (dual-core runs).

Paper: both GA viruses (EM-driven and OC-DSO-driven) droop >25 mV more
than lbm (the noisiest SPEC member) and have ~20 mV higher V_MIN;
viruses get 30 V_MIN repeats, benchmarks 2.
"""

from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload

from benchmarks.conftest import print_header

SPEC_SLICE = [
    "perlbench", "gcc", "mcf", "milc", "namd", "povray", "hmmer",
    "libquantum", "lbm", "omnetpp", "sphinx3", "xalancbmk",
]


def test_fig10_vmin_comparison(
    benchmark, juno_board, a72_em_virus, a72_dso_virus
):
    a72 = juno_board.a72
    a72.reset()
    tester = VminTester(a72, failure_model_for("cortex-a72"), seed=10)
    workloads = (
        [idle_workload()]
        + spec_suite(a72.spec.isa, SPEC_SLICE)
        + [
            ProgramWorkload(
                "a72OC-DSO", a72_dso_virus.virus, jitter_seed=None
            ),
            ProgramWorkload(
                "a72em", a72_em_virus.virus, jitter_seed=None
            ),
        ]
    )

    def regenerate():
        return tester.compare(
            workloads,
            virus_repeats=30,
            benchmark_repeats=2,
            virus_names=("a72em", "a72OC-DSO"),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 10: V_MIN and max droop, Cortex-A72 dual-core")
    print(f"{'workload':<12} {'Vmin':>8} {'droop@1V':>10}")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(
            f"{name:<12} {res.vmin:>6.3f} V "
            f"{res.max_droop_at_nominal * 1e3:>7.1f} mV"
        )

    benchmarks_only = {
        k: v
        for k, v in results.items()
        if k not in ("a72em", "a72OC-DSO")
    }
    lbm = results["lbm"]
    em = results["a72em"]
    dso = results["a72OC-DSO"]

    # lbm is the noisiest SPEC member
    spec_droops = {
        k: v.max_droop_at_nominal
        for k, v in benchmarks_only.items()
        if k != "idle"
    }
    assert spec_droops["lbm"] == max(spec_droops.values())
    # both viruses droop >25 mV more than lbm
    assert em.max_droop_at_nominal > lbm.max_droop_at_nominal + 0.025
    assert dso.max_droop_at_nominal > lbm.max_droop_at_nominal + 0.025
    # and have higher V_MIN than every benchmark
    best_bench_vmin = max(v.vmin for v in benchmarks_only.values())
    assert em.vmin >= best_bench_vmin + 0.02
    assert dso.vmin >= best_bench_vmin + 0.02
    # the two viruses stress the PDN in approximately similar manner
    assert abs(em.vmin - dso.vmin) <= 0.03
    # paper's margin scale: ~150 mV below the 1.0 V nominal
    print(
        f"  a72em margin: {(1.0 - em.vmin) * 1e3:.0f} mV "
        f"(paper: 150 mV)"
    )
    assert 0.10 <= 1.0 - em.vmin <= 0.20
