"""Result containers for the characterization API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.program import LoopProgram
from repro.ga.engine import GAResult
from repro.instruments.spectrum_analyzer import SpectrumTrace


@dataclass
class GARunSummary:
    """A finished GA virus-generation run plus its headline numbers."""

    cluster_name: str
    metric: str
    ga_result: GAResult
    virus: LoopProgram
    dominant_frequency_hz: float
    max_droop_v: float
    peak_to_peak_v: float
    ipc: float
    loop_frequency_hz: float
    loop_period_s: float

    @property
    def generations(self) -> int:
        return len(self.ga_result.history)

    def convergence_table(self) -> List[Tuple[int, float, float, float]]:
        """(generation, score, droop, dominant MHz) rows -- Fig. 7 data."""
        return [
            (
                r.generation,
                r.best.score,
                r.best.max_droop_v,
                r.best.dominant_frequency_hz / 1e6,
            )
            for r in self.ga_result.history
        ]


@dataclass
class MultiDomainSpectrum:
    """One spectrum-analyzer sweep covering several voltage domains.

    ``domain_peaks`` maps cluster name -> (frequency, dBm) of that
    domain's signature spike in the combined trace (Fig. 15).
    """

    trace: SpectrumTrace
    domain_peaks: Dict[str, Tuple[float, float]] = field(
        default_factory=dict
    )

    def visible_domains(self, floor_margin_db: float = 6.0) -> List[str]:
        """Domains whose signature rises clearly above the noise floor."""
        floor = float(np.median(self.trace.power_dbm))
        return [
            name
            for name, (_, dbm) in self.domain_peaks.items()
            if dbm > floor + floor_margin_db
        ]
