"""Unit tests for cluster-level execution."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel
from repro.cpu.multicore import CoreModel, execute_on_cluster
from repro.cpu.pipeline import InOrderPipeline
from repro.cpu.program import program_from_mnemonics


@pytest.fixture
def core():
    return CoreModel(
        pipeline=InOrderPipeline(width=2),
        current_model=CurrentModel(),
        clock_hz=1.0e9,
    )


@pytest.fixture
def loop():
    return program_from_mnemonics(ARM_ISA, ["add"] * 8 + ["sdiv"])


class TestClusterExecution:
    def test_active_cores_scale_current(self, core, loop):
        one = execute_on_cluster(core, loop, active_cores=1)
        two = execute_on_cluster(core, loop, active_cores=2)
        # same uncore, double the per-core dynamic current
        assert two.load_current.mean() == pytest.approx(
            2 * one.load_current.mean() - one.uncore_current_a, rel=1e-9
        )

    def test_invalid_core_count_rejected(self, core, loop):
        with pytest.raises(ValueError):
            execute_on_cluster(core, loop, active_cores=0)

    def test_phase_offsets_must_match_core_count(self, core, loop):
        with pytest.raises(ValueError):
            execute_on_cluster(
                core, loop, active_cores=2, phase_offsets=[0]
            )

    def test_aligned_cores_maximize_swing(self, core, loop):
        """Anti-phase execution smooths the combined current."""
        aligned = execute_on_cluster(
            core, loop, active_cores=2, phase_offsets=[0, 0]
        )
        period = aligned.loop_cycles
        staggered = execute_on_cluster(
            core, loop, active_cores=2, phase_offsets=[0, period // 2]
        )
        assert np.ptp(aligned.load_current) >= np.ptp(
            staggered.load_current
        )

    def test_metadata_properties(self, core, loop):
        ex = execute_on_cluster(core, loop, active_cores=2)
        assert ex.sample_rate_hz == 1.0e9
        assert ex.loop_period_s == pytest.approx(
            ex.loop_cycles / 1.0e9
        )
        assert ex.loop_frequency_hz == pytest.approx(
            1.0 / ex.loop_period_s
        )
        assert 0.0 < ex.ipc <= 2.0
