"""Fast resonance-frequency detection (Section 5.3).

A fixed high/low-current loop (eight ADDs, one DIV) radiates an EM
spike at its loop frequency.  Sweeping the CPU clock modulates the
loop frequency; the spike's amplitude is maximized when the loop
frequency crosses the PDN's first-order resonance.  The whole sweep
takes ~15 minutes on hardware versus many hours for a GA run, and
is the tool that exposes the power-gating resonance shifts of
Figs. 11, 13 and 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.platforms.base import Cluster
from repro.workloads.loops import high_low_program


@dataclass
class SweepPoint:
    """One clock point of the sweep."""

    clock_hz: float
    loop_frequency_hz: float
    amplitude_w: float


@dataclass
class SweepResult:
    """Outcome of a clock-modulated loop-frequency sweep."""

    cluster_name: str
    powered_cores: int
    points: List[SweepPoint]

    def resonance_hz(self) -> float:
        """Loop frequency with the maximum EM amplitude."""
        best = max(self.points, key=lambda p: p.amplitude_w)
        return best.loop_frequency_hz

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(loop_frequencies_hz, amplitudes) sorted by frequency."""
        pts = sorted(self.points, key=lambda p: p.loop_frequency_hz)
        return (
            np.array([p.loop_frequency_hz for p in pts]),
            np.array([p.amplitude_w for p in pts]),
        )


class ResonanceSweep:
    """Drives the fast sweep against a cluster through an EM receive chain."""

    def __init__(
        self,
        characterizer: EMCharacterizer,
        samples_per_point: int = 5,
    ):
        self.characterizer = characterizer
        self.samples_per_point = samples_per_point

    def run(
        self,
        cluster: Cluster,
        clocks_hz: Optional[Sequence[float]] = None,
        active_cores: Optional[int] = None,
    ) -> SweepResult:
        """Sweep the cluster clock and record the EM spike amplitude.

        ``clocks_hz`` defaults to every multiplier-reachable point from
        nominal down (the paper steps the A72 from 1.2 GHz to 120 MHz
        in 20 MHz steps).  The cluster's clock is restored afterwards.
        """
        program = high_low_program(cluster.spec.isa)
        clocks = (
            list(clocks_hz)
            if clocks_hz is not None
            else list(cluster.spec.allowed_clocks_hz())
        )
        saved_clock = cluster.clock_hz
        points: List[SweepPoint] = []
        try:
            for clock in clocks:
                cluster.set_clock(clock)
                measurement = self.characterizer.measure(
                    cluster,
                    program,
                    active_cores=active_cores,
                    samples=self.samples_per_point,
                )
                points.append(
                    SweepPoint(
                        clock_hz=clock,
                        loop_frequency_hz=measurement.loop_frequency_hz,
                        amplitude_w=measurement.amplitude_w,
                    )
                )
        finally:
            cluster.set_clock(saved_clock)
        return SweepResult(
            cluster_name=cluster.name,
            powered_cores=cluster.powered_cores,
            points=points,
        )

    def power_gating_study(
        self,
        cluster: Cluster,
        core_counts: Optional[Sequence[int]] = None,
        clocks_hz: Optional[Sequence[float]] = None,
    ) -> List[SweepResult]:
        """Sweep at several power-gating states (Figs. 8, 11, 13).

        Only the first core stays active in every state, so the load
        current is constant and amplitude differences isolate the PDN
        capacitance change -- the Section 6 experiment.
        """
        counts = (
            list(core_counts)
            if core_counts is not None
            else list(range(cluster.spec.num_cores, 0, -1))
        )
        saved = cluster.powered_cores
        results = []
        try:
            for count in counts:
                cluster.power_gate(count)
                results.append(
                    self.run(cluster, clocks_hz=clocks_hz, active_cores=1)
                )
        finally:
            cluster.power_gate(saved)
        return results
