"""Bit-equivalence pins: the chain shims vs the historical per-call path.

The batched chain must make the same floating-point operations and the
same RNG draws in the same order as the code it replaced.  Each test
keeps a reference copy of the pre-chain implementation (built from the
still-public primitives ``Cluster.run``, ``DieRadiator.emission``,
``SpectrumAnalyzer.max_amplitude`` / ``sweep``) and asserts exact
equality -- not approx -- against the rerouted public API.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import pytest

from repro import EMCharacterizer, make_juno_board
from repro.core.resonance import ResonanceSweep
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import (
    ClusterFitness,
    EMAmplitudeFitness,
    FitnessEvaluation,
    _common_metrics,
)
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.context import RunContext
from repro.obs.events import EventLog, MemorySink
from repro.workloads.loops import high_low_program


def fresh_characterizer(seed=1234, samples=4) -> EMCharacterizer:
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=samples,
    )


def legacy_measure(
    characterizer: EMCharacterizer,
    cluster,
    program,
    active_cores=None,
    samples=None,
):
    """The pre-chain ``EMCharacterizer.measure`` body, verbatim."""
    run = cluster.run(program, active_cores=active_cores)
    emission = characterizer.radiator.emission(run.response)
    amplitude = characterizer.analyzer.max_amplitude(
        emission,
        band=characterizer.band,
        samples=samples or characterizer.samples,
    )
    trace = characterizer.analyzer.sweep(emission)
    peak_freq, _ = trace.peak(characterizer.band)
    return amplitude, peak_freq, trace, run


@dataclass
class LegacyEMAmplitudeFitness:
    """The pre-chain ``EMAmplitudeFitness.__call__`` body, verbatim."""

    analyzer: SpectrumAnalyzer
    radiator: object
    band: Tuple[float, float]
    samples: int
    active_cores: Optional[int] = None

    def __call__(self, cluster, program) -> FitnessEvaluation:
        run = cluster.run(program, active_cores=self.active_cores)
        emission = self.radiator.emission(run.response)
        score = self.analyzer.max_amplitude(
            emission, band=self.band, samples=self.samples
        )
        dominant, droop, p2p, ipc = _common_metrics(run, self.band)
        banded = emission.band(*self.band)
        peak_freq, _ = banded.peak()
        return FitnessEvaluation(
            score=score,
            dominant_frequency_hz=peak_freq or dominant,
            max_droop_v=droop,
            peak_to_peak_v=p2p,
            ipc=ipc,
            loop_frequency_hz=run.loop_frequency_hz,
        )


class TestMeasureEquivalence:
    def test_single_measure_bit_identical(self, a53):
        program = high_low_program(a53.spec.isa)
        legacy = fresh_characterizer(seed=77)
        amp, peak, trace, run = legacy_measure(legacy, a53, program)

        chained = fresh_characterizer(seed=77)
        m = chained.measure(a53, program)

        assert m.amplitude_w == amp
        assert m.peak_frequency_hz == peak
        assert np.array_equal(m.trace.power_dbm, trace.power_dbm)
        assert np.array_equal(
            m.run.response.die_voltage, run.response.die_voltage
        )
        assert m.run.loop_frequency_hz == run.loop_frequency_hz

    def test_batched_measures_match_sequential_legacy(self, a53, rng):
        from repro.cpu.program import random_program

        programs = [
            random_program(a53.spec.isa, 6, rng) for _ in range(3)
        ]
        legacy = fresh_characterizer(seed=9)
        expected = [legacy_measure(legacy, a53, p) for p in programs]

        chained = fresh_characterizer(seed=9)
        measurements = chained.measure_batch(a53, programs)

        for m, (amp, peak, trace, run) in zip(measurements, expected):
            assert m.amplitude_w == amp
            assert m.peak_frequency_hz == peak
            assert np.array_equal(m.trace.power_dbm, trace.power_dbm)
            assert np.array_equal(
                m.run.response.die_voltage, run.response.die_voltage
            )

    def test_analyzer_rng_stream_matches_legacy(self, a53):
        """After N measurements both analyzer RNGs sit at the same state."""
        program = high_low_program(a53.spec.isa)
        legacy = fresh_characterizer(seed=5)
        chained = fresh_characterizer(seed=5)
        for _ in range(2):
            legacy_measure(legacy, a53, program)
        chained.measure_batch(a53, [program, program])
        assert (
            legacy.analyzer.rng.bit_generator.state
            == chained.analyzer.rng.bit_generator.state
        )


class TestSweepEquivalence:
    def _clocks(self, cluster):
        return list(cluster.spec.allowed_clocks_hz())[:5]

    def test_sweep_bit_identical_to_legacy_loop(self, a53):
        clocks = self._clocks(a53)
        program = high_low_program(a53.spec.isa)

        legacy = fresh_characterizer(seed=21)
        expected = []
        saved = a53.clock_hz
        for clock in clocks:
            a53.set_clock(clock)
            amp, peak, trace, run = legacy_measure(
                legacy, a53, program, samples=2
            )
            expected.append((clock, run.loop_frequency_hz, amp))
        a53.set_clock(saved)

        chained = fresh_characterizer(seed=21)
        sweep = ResonanceSweep(chained, samples_per_point=2)
        result = sweep.run(RunContext(cluster=a53), clocks_hz=clocks)

        assert [
            (p.clock_hz, p.loop_frequency_hz, p.amplitude_w)
            for p in result.points
        ] == expected

    def test_sweep_never_mutates_the_cluster(self, a53):
        version = a53.state_version
        sweep = ResonanceSweep(fresh_characterizer(), samples_per_point=2)
        sweep.run(RunContext(cluster=a53), clocks_hz=self._clocks(a53))
        assert a53.state_version == version
        assert a53.clock_hz == a53.spec.nominal_clock_hz

    def test_one_tf_analysis_per_distinct_cluster_state(self):
        # A fresh board: the fixture's session-scoped solver caches may
        # already be warm from other tests.
        a53 = make_juno_board().a53
        clocks = self._clocks(a53)
        characterizer = fresh_characterizer()
        solver = a53.pdn.solver(a53.powered_cores)
        analyses_before = solver.tf_analyses
        sweep = ResonanceSweep(characterizer, samples_per_point=2)
        sweep.run(RunContext(cluster=a53), clocks_hz=clocks)
        # One AC analysis per distinct clock point, no more.
        assert solver.tf_analyses - analyses_before == len(clocks)
        stats = characterizer.session.stats
        assert stats.tf_misses == len(clocks)
        assert stats.tf_hits == 0
        # The schedule is clock-independent: one execution, K-1 reuses.
        assert stats.execute_misses == 1
        assert stats.execute_hits == len(clocks) - 1

        # A second sweep over the same states is all cache hits.
        sweep.run(RunContext(cluster=a53), clocks_hz=clocks)
        assert solver.tf_analyses - analyses_before == len(clocks)
        assert stats.tf_hits == len(clocks)
        assert stats.execute_hits == 2 * len(clocks) - 1

    def test_stage_timings_reach_the_event_log(self, a53):
        sink = MemorySink()
        sweep = ResonanceSweep(fresh_characterizer(), samples_per_point=2)
        sweep.run(
            RunContext(cluster=a53, event_log=EventLog([sink])),
            clocks_hz=self._clocks(a53),
        )
        stage_names = [
            "execute", "current", "pdn", "radiate", "propagate", "receive",
        ]
        (chain_run,) = sink.events("chain_run")
        assert list(chain_run["stage_times_s"]) == stage_names
        (sweep_end,) = sink.events("sweep_end")
        assert list(sweep_end["stage_times_s"]) == stage_names
        assert sweep_end["cache_stats"]["tf_misses"] == len(
            self._clocks(a53)
        )


class TestGAGenerationEquivalence:
    def _config(self):
        return GAConfig(
            population_size=6, generations=2, loop_length=5, seed=11
        )

    def test_ga_history_bit_identical_to_legacy_fitness(self, a53):
        band = (50.0e6, 200.0e6)
        legacy_fitness = ClusterFitness(
            LegacyEMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(33)),
                radiator=EMCharacterizer().radiator,
                band=band,
                samples=3,
            ),
            a53,
        )
        legacy = GAEngine(legacy_fitness, config=self._config()).run(
            a53.spec.isa
        )

        chained_fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(33)),
                band=band,
                samples=3,
            ),
            a53,
        )
        chained = GAEngine(chained_fitness, config=self._config()).run(
            a53.spec.isa
        )

        assert chained.evaluations == legacy.evaluations
        for rec_new, rec_old in zip(chained.history, legacy.history):
            assert rec_new.generation == rec_old.generation
            assert rec_new.best_program.genome() == (
                rec_old.best_program.genome()
            )
            assert rec_new.best == rec_old.best
            assert rec_new.mean_score == rec_old.mean_score

    def test_generation_end_records_chain_stage_timings(self, a53):
        sink = MemorySink()
        fitness = ClusterFitness(
            EMAmplitudeFitness(
                analyzer=SpectrumAnalyzer(rng=np.random.default_rng(2)),
                samples=2,
            ),
            a53,
        )
        GAEngine(fitness, config=self._config()).run(
            a53.spec.isa, event_log=EventLog([sink])
        )
        records = sink.events("generation_end")
        assert records
        for record in records:
            timings = record["kernel_timings"]
            assert "chain.execute" in timings
            assert "chain.receive" in timings
