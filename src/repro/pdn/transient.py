"""Time-domain transient simulation via trapezoidal companion models.

This is the classical SPICE approach: at a fixed step ``h`` every
capacitor becomes a conductance ``2C/h`` plus a history current source
and every inductor branch gains an equivalent resistance ``2L/h`` plus a
history voltage.  Because the PDN is linear and the step is fixed, the
system matrix is constant and is LU-factorized once; each step is a
single back-substitution, so long waveforms (Figs. 1c and 2) integrate
quickly.

The per-step right-hand side is itself linear in the state, so all
history stamps are precomputed at solver construction into constant
matrices (``_hist_mat``, ``_cap_inj``, ``_src_mat``, ``_b_vsrc``):
each step of :meth:`TransientSolver.run` and
:meth:`TransientStepper.step` assembles the RHS as two mat-vecs plus a
vector add -- no per-element Python loops or ``layout.node()`` dict
lookups.  :meth:`TransientSolver.run_reference` keeps the per-element
formulation as the golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.obs.timing import timed_kernel
from repro.pdn.elements import Capacitor, CurrentSource, Inductor, VoltageSource
from repro.pdn.impedance import dc_operating_point
from repro.pdn.netlist import Circuit, MNALayout


@dataclass
class TransientResult:
    """Sampled waveforms produced by :class:`TransientSolver`.

    ``node_voltages[name][k]`` is the voltage of node ``name`` at
    ``times[k]``; ``branch_currents`` covers inductors and voltage
    sources (positive current flows from ``node_a`` to ``node_b``).
    """

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def current(self, branch: str) -> np.ndarray:
        return self.branch_currents[branch]

    def min_voltage(self, node: str) -> float:
        return float(np.min(self.node_voltages[node]))

    def max_voltage(self, node: str) -> float:
        return float(np.max(self.node_voltages[node]))

    def peak_to_peak(self, node: str) -> float:
        v = self.node_voltages[node]
        return float(np.max(v) - np.min(v))


class TransientSolver:
    """Fixed-step trapezoidal integrator for a linear circuit.

    Parameters
    ----------
    circuit:
        The netlist to integrate.  Time-varying behaviour comes from
        :class:`~repro.pdn.elements.CurrentSource` elements whose
        ``current`` is a callable of time.
    dt:
        Integration step in seconds.  It must resolve the fastest
        resonance of interest; 1/20 of the first-order resonance period
        (~0.7 ns for an 80 MHz resonance) is a sound default.
    """

    def __init__(self, circuit: Circuit, dt: float):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self._circuit = circuit
        self._dt = dt
        self._layout: MNALayout = circuit.layout()
        self._matrix_lu = None
        self._build_matrix()
        self._build_stamps()

    @property
    def dt(self) -> float:
        return self._dt

    def _build_matrix(self) -> None:
        layout = self._layout
        h = self._dt
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        # Capacitor companion: conductance 2C/h.
        for e in self._circuit.elements:
            if isinstance(e, Capacitor):
                g = 2.0 * e.capacitance / h
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    a[ia, ia] += g
                if ib >= 0:
                    a[ib, ib] += g
                if ia >= 0 and ib >= 0:
                    a[ia, ib] -= g
                    a[ib, ia] -= g
            elif isinstance(e, Inductor):
                # Branch equation becomes  v_ab - (2L/h) i = v_hist.
                k = layout.branch(e.name)
                a[k, k] -= 2.0 * e.inductance / h
                # ac_matrix at omega=0 left the L term absent (it stamps
                # -j*omega*L = 0); the -2L/h replaces it.
        self._matrix = a
        self._matrix_lu = lu_factor(a)

    def _build_stamps(self) -> None:
        """Precompute the constant history-stamp matrices.

        With the capacitor voltage selector ``S`` (rows of +-1 picking
        ``v_a - v_b``), its injection transpose, the inductor history
        rows and the source injection columns all constant, every step's
        RHS is ``hist_mat @ x + cap_inj @ cap_i + src_mat @ i(t) +
        b_vsrc``.
        """
        layout = self._layout
        h = self._dt
        n = layout.size
        elements = self._circuit.elements
        self._caps = [e for e in elements if isinstance(e, Capacitor)]
        self._inds = [e for e in elements if isinstance(e, Inductor)]
        self._vsrcs = [e for e in elements if isinstance(e, VoltageSource)]
        self._isrcs = list(self._circuit.current_sources())

        n_cap = len(self._caps)
        cap_sel = np.zeros((n_cap, n))
        for row, e in enumerate(self._caps):
            ia, ib = layout.node(e.node_a), layout.node(e.node_b)
            if ia >= 0:
                cap_sel[row, ia] = 1.0
            if ib >= 0:
                cap_sel[row, ib] = -1.0
        self._cap_sel = cap_sel
        self._cap_inj = cap_sel.T.copy()
        self._g_cap_vec = np.array(
            [2.0 * e.capacitance / h for e in self._caps]
        )

        hist = self._cap_inj @ (self._g_cap_vec[:, None] * cap_sel)
        for e in self._inds:
            k = layout.branch(e.name)
            r = 2.0 * e.inductance / h
            hist[k, k] = -r
            ia, ib = layout.node(e.node_a), layout.node(e.node_b)
            if ia >= 0:
                hist[k, ia] = -1.0
            if ib >= 0:
                hist[k, ib] = 1.0
        self._hist_mat = hist

        src_mat = np.zeros((n, len(self._isrcs)))
        for col, s in enumerate(self._isrcs):
            ia, ib = layout.node(s.node_a), layout.node(s.node_b)
            if ia >= 0:
                src_mat[ia, col] = -1.0
            if ib >= 0:
                src_mat[ib, col] = 1.0
        self._src_mat = src_mat

        b_vsrc = np.zeros(n)
        for e in self._vsrcs:
            b_vsrc[layout.branch(e.name)] = e.voltage
        self._b_vsrc = b_vsrc

        # Pre-solve the constant stamps against the factorized system:
        # x_next = lu_solve(A, hist_mat @ x + cap_inj @ cap_i + ...)
        # distributes over the sum, so each transient step reduces to
        # two or three small mat-vecs -- no per-step lu_solve call.
        lu = self._matrix_lu
        self._prop_state = lu_solve(lu, self._hist_mat)
        self._prop_cap = (
            lu_solve(lu, self._cap_inj)
            if n_cap
            else np.zeros((n, 0))
        )
        self._prop_src = (
            lu_solve(lu, src_mat)
            if self._isrcs
            else np.zeros((n, 0))
        )
        self._prop_const = lu_solve(lu, b_vsrc)

    def _source_values(self, t: float) -> np.ndarray:
        return np.fromiter(
            (s.value_at(t) for s in self._isrcs),
            dtype=float,
            count=len(self._isrcs),
        )

    def _initial_state(
        self, initial: Optional[Dict[str, float]]
    ) -> np.ndarray:
        """DC operating point, optionally overridden per node."""
        layout = self._layout
        op = dc_operating_point(self._circuit)
        if initial:
            op.update(initial)
        x = np.zeros(layout.size)
        for name, idx in layout.node_index.items():
            x[idx] = op.get(name, 0.0)
        # Initial inductor currents from the DC solve: re-run the DC MNA
        # to recover branch currents consistent with the node voltages.
        x_dc = self._dc_state()
        for e in self._inds + self._vsrcs:
            x[layout.branch(e.name)] = x_dc[layout.branch(e.name)]
        return x

    @timed_kernel("pdn.transient.run")
    def run(
        self,
        duration: float,
        initial: Optional[Dict[str, float]] = None,
        record_every: int = 1,
    ) -> TransientResult:
        """Integrate for ``duration`` seconds.

        ``initial`` optionally overrides the starting node voltages;
        by default the DC operating point (with each current source at
        its value at ``t = 0``) is used so a constant-load start sits at
        quiescence and only *changes* in load excite the network.
        ``record_every`` decimates the stored waveform.
        """
        layout = self._layout
        h = self._dt
        steps = int(round(duration / h))
        if steps <= 0:
            raise ValueError("duration shorter than one step")

        x = self._initial_state(initial)
        cap_i = np.zeros(len(self._caps))

        n_rec = steps // record_every + 1
        times = np.empty(n_rec)
        traj = np.empty((n_rec, layout.size))
        times[0] = 0.0
        traj[0] = x
        rec = 1

        prop_state = self._prop_state
        prop_cap = self._prop_cap
        prop_src = self._prop_src
        prop_const = self._prop_const
        cap_sel = self._cap_sel
        g_vec = self._g_cap_vec
        has_src = len(self._isrcs) > 0

        dv = cap_sel @ x  # capacitor voltage differences of the state
        for step in range(1, steps + 1):
            t_next = step * h
            x_next = prop_state @ x + prop_cap @ cap_i + prop_const
            if has_src:
                x_next += prop_src @ self._source_values(t_next)
            # Update capacitor currents for the next history term.
            dv_new = cap_sel @ x_next
            cap_i = g_vec * dv_new - (g_vec * dv + cap_i)
            dv = dv_new
            x = x_next
            if step % record_every == 0:
                times[rec] = t_next
                traj[rec] = x
                rec += 1

        return self._package(times[:rec], traj[:rec])

    def run_reference(
        self,
        duration: float,
        initial: Optional[Dict[str, float]] = None,
        record_every: int = 1,
    ) -> TransientResult:
        """Per-element formulation of :meth:`run` (golden reference).

        Assembles each step's RHS by iterating the netlist and stamping
        one element at a time -- the readable textbook loop the
        vectorized kernel is checked against.
        """
        layout = self._layout
        h = self._dt
        steps = int(round(duration / h))
        if steps <= 0:
            raise ValueError("duration shorter than one step")

        caps, inds, vsrcs = self._caps, self._inds, self._vsrcs
        isrcs = self._isrcs

        def node_v(state: np.ndarray, name: str) -> float:
            idx = layout.node(name)
            return 0.0 if idx < 0 else float(state[idx])

        x = self._initial_state(initial)
        cap_i = {e.name: 0.0 for e in caps}  # capacitor currents (a->b)

        n_rec = steps // record_every + 1
        times = np.empty(n_rec)
        traj = np.empty((n_rec, layout.size))
        times[0] = 0.0
        traj[0] = x
        rec = 1

        g_cap = {e.name: 2.0 * e.capacitance / h for e in caps}
        r_ind = {e.name: 2.0 * e.inductance / h for e in inds}

        for step in range(1, steps + 1):
            t_next = step * h
            b = np.zeros(layout.size)
            # Current sources (load convention: from node_a to node_b).
            for s in isrcs:
                i_now = s.value_at(t_next)
                ia, ib = layout.node(s.node_a), layout.node(s.node_b)
                if ia >= 0:
                    b[ia] -= i_now
                if ib >= 0:
                    b[ib] += i_now
            # Capacitor history: I_hist = g*v_n + i_n injected a->b.
            for e in caps:
                i_hist = g_cap[e.name] * (
                    node_v(x, e.node_a) - node_v(x, e.node_b)
                ) + cap_i[e.name]
                ia, ib = layout.node(e.node_a), layout.node(e.node_b)
                if ia >= 0:
                    b[ia] += i_hist
                if ib >= 0:
                    b[ib] -= i_hist
            # Inductor history: v_ab(n+1) - R i(n+1) = -R i(n) - v_ab(n).
            for e in inds:
                k = layout.branch(e.name)
                v_ab = node_v(x, e.node_a) - node_v(x, e.node_b)
                b[k] = -r_ind[e.name] * x[k] - v_ab
            for e in vsrcs:
                b[layout.branch(e.name)] = e.voltage

            x_next = lu_solve(self._matrix_lu, b)

            # Update capacitor currents for the next history term.
            for e in caps:
                v_new = node_v(x_next, e.node_a) - node_v(x_next, e.node_b)
                v_old = node_v(x, e.node_a) - node_v(x, e.node_b)
                i_hist = g_cap[e.name] * v_old + cap_i[e.name]
                cap_i[e.name] = g_cap[e.name] * v_new - i_hist

            x = x_next
            if step % record_every == 0:
                times[rec] = t_next
                traj[rec] = x
                rec += 1

        return self._package(times[:rec], traj[:rec])

    def _package(
        self, times: np.ndarray, traj: np.ndarray
    ) -> TransientResult:
        layout = self._layout
        node_voltages = {
            name: traj[:, idx] for name, idx in layout.node_index.items()
        }
        branch_currents = {
            name: traj[:, layout.num_nodes + idx]
            for name, idx in layout.branch_index.items()
        }
        return TransientResult(
            times=times,
            node_voltages=node_voltages,
            branch_currents=branch_currents,
        )

    def stepper(self, load_node: str = "die") -> "TransientStepper":
        """A closed-loop stepper drawing load current at ``load_node``.

        Unlike :meth:`run`, the caller supplies the load current one
        step at a time -- the hook needed to put a feedback controller
        (e.g. adaptive clocking) in the loop with the network.
        """
        return TransientStepper(self, load_node)

    def _dc_state(self) -> np.ndarray:
        """Full DC MNA solution (node voltages and branch currents)."""
        layout = self._layout
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        a += np.diag(
            np.concatenate(
                [
                    np.full(layout.num_nodes, 1e-12),
                    np.zeros(layout.num_branches),
                ]
            )
        )
        injections: Dict[str, float] = {}
        for s in self._circuit.current_sources():
            i0 = s.value_at(0.0)
            injections[s.node_a] = injections.get(s.node_a, 0.0) - i0
            injections[s.node_b] = injections.get(s.node_b, 0.0) + i0
        b = np.zeros(layout.size)
        for node, val in injections.items():
            idx = layout.node(node)
            if idx >= 0:
                b[idx] += val
        for e in self._circuit.elements:
            if isinstance(e, VoltageSource):
                b[layout.branch(e.name)] = e.voltage
        return np.linalg.solve(a, b)


class TransientStepper:
    """Step-at-a-time trapezoidal integration with an external load.

    Wraps a :class:`TransientSolver`'s factorized system but takes the
    die load current per step from the caller instead of from a source
    element -- current sources in the circuit still apply on top.  The
    initial state is the DC operating point with the first load value.

    The per-step RHS reuses the solver's precomputed history stamps, so
    a step is two mat-vecs, one back-substitution and a capacitor
    history update -- no per-element loops.
    """

    def __init__(self, solver: TransientSolver, load_node: str):
        self._solver = solver
        self._circuit = solver._circuit
        self._layout = solver._layout
        self._load_node = load_node
        if load_node != "0" and load_node not in (
            self._layout.node_index
        ):
            raise KeyError(f"unknown load node {load_node!r}")
        self._isrcs = solver._isrcs
        self._vsrcs = solver._vsrcs
        # Load injection vector: -1 at the load node (load convention),
        # pre-solved against the factorized system like the other stamps.
        self._load_vec = np.zeros(self._layout.size)
        idx = self._layout.node(load_node)
        if idx >= 0:
            self._load_vec[idx] = -1.0
        self._prop_load = lu_solve(solver._matrix_lu, self._load_vec)
        self._state: Optional[np.ndarray] = None
        self._cap_i: Optional[np.ndarray] = None
        self._t = 0.0

    @property
    def time_s(self) -> float:
        return self._t

    def reset(self, initial_load_a: float = 0.0) -> None:
        """Initialize at the DC operating point with the given load."""
        layout = self._layout
        a = self._circuit.ac_matrix(0.0, layout).real.astype(float)
        a += np.diag(
            np.concatenate(
                [
                    np.full(layout.num_nodes, 1e-12),
                    np.zeros(layout.num_branches),
                ]
            )
        )
        b = self._load_vec * initial_load_a + self._solver._b_vsrc.copy()
        if self._isrcs:
            b += self._solver._src_mat @ self._solver._source_values(0.0)
        self._state = np.linalg.solve(a, b)
        self._cap_i = np.zeros(len(self._solver._caps))
        self._t = 0.0

    def _node_v(self, state: np.ndarray, name: str) -> float:
        idx = self._layout.node(name)
        return 0.0 if idx < 0 else float(state[idx])

    def step(self, load_a: float) -> float:
        """Advance one step with ``load_a`` amperes drawn at the load
        node; returns the new load-node voltage."""
        if self._state is None:
            self.reset(load_a)
        solver = self._solver
        x = self._state
        t_next = self._t + solver.dt
        x_next = (
            solver._prop_state @ x
            + solver._prop_cap @ self._cap_i
            + solver._prop_const
            + self._prop_load * load_a
        )
        if self._isrcs:
            x_next += solver._prop_src @ solver._source_values(t_next)
        g_vec = solver._g_cap_vec
        self._cap_i = g_vec * (solver._cap_sel @ x_next) - (
            g_vec * (solver._cap_sel @ x) + self._cap_i
        )
        self._state = x_next
        self._t = t_next
        return self._node_v(x_next, self._load_node)

    def voltage(self, node: str) -> float:
        if self._state is None:
            raise RuntimeError("stepper not initialized; call reset()")
        return self._node_v(self._state, node)
