"""FaultPlan / FaultInjector scheduling semantics."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    NULL_INJECTOR,
    CorruptArtifact,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    StageTimeout,
    TransientFault,
    WorkerCrash,
    load_fault_plan,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="chain.*", kind="gremlin", at_visit=0)

    def test_rejects_unscheduled_spec(self):
        with pytest.raises(ValueError, match="at_visit or"):
            FaultSpec(site="chain.*")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="chain.*", rate=1.5)

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_every_kind_is_raisable(self, kind):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site="s", kind=kind, at_visit=0),))
        )
        with pytest.raises(FAULT_KINDS[kind]):
            injector.visit("s")


class TestScheduling:
    def test_fires_exactly_at_visit_window(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="chain.pdn", at_visit=1, times=2),)
        )
        injector = FaultInjector(plan)
        injector.visit("chain.pdn")  # visit 0: silent
        with pytest.raises(TransientFault):
            injector.visit("chain.pdn")  # visit 1
        with pytest.raises(TransientFault):
            injector.visit("chain.pdn")  # visit 2
        injector.visit("chain.pdn")  # visit 3: budget spent
        assert len(injector.fired) == 2

    def test_site_patterns_use_fnmatch(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="chain.*", at_visit=0, times=10),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(TransientFault):
            injector.visit("chain.execute")
        injector_counts_other_sites = FaultInjector(plan)
        injector_counts_other_sites.visit("worker.shard")  # no match
        with pytest.raises(TransientFault):
            injector_counts_other_sites.visit("chain.receive")

    def test_fault_carries_site(self):
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.*", kind="worker_crash", at_visit=0
                    ),
                )
            )
        )
        with pytest.raises(WorkerCrash) as excinfo:
            injector.visit("worker.shard")
        assert excinfo.value.site == "worker.shard"
        assert excinfo.value.kind == "worker_crash"

    def test_rate_mode_is_deterministic_per_seed(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="s", rate=0.5, times=1000),), seed=7
        )

        def firing_pattern():
            injector = FaultInjector(plan)
            pattern = []
            for _ in range(50):
                try:
                    injector.visit("s")
                    pattern.append(0)
                except TransientFault:
                    pattern.append(1)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert sum(first) > 0

    def test_fired_at_filters_by_pattern(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="chain.pdn", at_visit=0),
                FaultSpec(site="checkpoint.save", at_visit=0,
                          kind="corrupt_artifact"),
            )
        )
        injector = FaultInjector(plan)
        with pytest.raises(TransientFault):
            injector.visit("chain.pdn")
        with pytest.raises(CorruptArtifact):
            injector.visit("checkpoint.save")
        assert len(injector.fired_at("chain.*")) == 1
        assert len(injector.fired_at("checkpoint.*")) == 1


class TestDisarmed:
    def test_null_injector_is_disarmed(self):
        assert not NULL_INJECTOR.armed
        for _ in range(100):
            NULL_INJECTOR.visit("chain.execute")
        assert NULL_INJECTOR.fired == []

    def test_exhausted_injector_goes_quiet(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site="s", at_visit=0),))
        )
        with pytest.raises(TransientFault):
            injector.visit("s")
        for _ in range(10):
            injector.visit("s")
        assert len(injector.fired) == 1


class TestRoundTrip:
    PLAN = FaultPlan(
        specs=(
            FaultSpec(site="chain.*", at_visit=3, times=2),
            FaultSpec(
                site="worker.shard", kind="worker_crash", rate=0.1,
                times=5,
            ),
            FaultSpec(
                site="checkpoint.load", kind="stage_timeout", at_visit=0
            ),
        ),
        seed=11,
    )

    def test_json_round_trip(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_load_fault_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.PLAN.to_json(), encoding="utf-8")
        assert load_fault_plan(path) == self.PLAN

    def test_load_rejects_non_plan_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "ga-checkpoint"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a fault plan"):
            load_fault_plan(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="invalid fault-plan JSON"):
            load_fault_plan(path)

    def test_pickled_copy_preserves_counters(self):
        import pickle

        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site="s", at_visit=0),))
        )
        with pytest.raises(TransientFault):
            injector.visit("s")
        clone = pickle.loads(pickle.dumps(injector))
        # Counters are per-copy state: a clone taken after the budget
        # was spent stays quiet, while one pickled beforehand (as the
        # worker payload is) replays the schedule from scratch.
        assert clone.fired == injector.fired
        clone.visit("s")  # budget already spent in the parent
        fresh = pickle.loads(
            pickle.dumps(
                FaultInjector(
                    FaultPlan(specs=(FaultSpec(site="s", at_visit=0),))
                )
            )
        )
        with pytest.raises(TransientFault):
            fresh.visit("s")


class TestStageTimeoutKind:
    def test_stage_timeout_is_retryable(self):
        from repro.faults import RETRYABLE_FAULTS

        assert StageTimeout in RETRYABLE_FAULTS
        assert WorkerCrash not in RETRYABLE_FAULTS
        assert CorruptArtifact not in RETRYABLE_FAULTS
