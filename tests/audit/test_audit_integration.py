"""End-to-end: audited runs are byte-identical and the CLI wires up.

The tracker's own sampling PRNG is private, shadow recomputes are
side-effect-free, and the ledger only reads ``bit_generator.state`` --
so enabling ``--audit`` must not move a single bit of any result.
"""

import numpy as np
import pytest

from repro import EMCharacterizer
from repro.audit import DeterminismTracker
from repro.chain.session import SimulationSession
from repro.core.resonance import ResonanceSweep
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.context import RunContext
from repro.obs.events import EventLog, MemorySink
from repro.workloads.loops import high_low_program

from repro import cli


def characterizer_with(audit, seed=1234):
    session = (
        SimulationSession(audit=DeterminismTracker(sample_rate=1.0))
        if audit
        else None
    )
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=4,
        session=session,
    )


class TestByteIdentityUnderAudit:
    def test_measure_is_bit_identical(self, a53):
        program = high_low_program(a53.spec.isa)
        plain = characterizer_with(audit=False).measure(a53, program)
        audited = characterizer_with(audit=True).measure(a53, program)
        assert plain.amplitude_w == audited.amplitude_w
        assert plain.peak_frequency_hz == audited.peak_frequency_hz
        np.testing.assert_array_equal(
            plain.trace.power_dbm, audited.trace.power_dbm
        )

    def test_sweep_is_bit_identical(self, a53):
        clocks = a53.spec.allowed_clocks_hz()[:3]

        def run(audit):
            ctx = RunContext(cluster=a53, seed=0)
            sweep = ResonanceSweep(
                characterizer_with(audit), samples_per_point=3
            )
            a53.reset()
            return sweep.run(ctx, clocks_hz=clocks)

        plain, audited = run(False), run(True)
        for p, q in zip(plain.points, audited.points):
            assert p.amplitude_w == q.amplitude_w
            assert p.loop_frequency_hz == q.loop_frequency_hz

    def test_audited_sweep_actually_audited(self, a53):
        tracker = DeterminismTracker(sample_rate=1.0)
        characterizer = EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(1234)),
            samples=4,
            session=SimulationSession(audit=tracker),
        )
        ctx = RunContext(cluster=a53, seed=0)
        ResonanceSweep(characterizer, samples_per_point=3).run(
            ctx, clocks_hz=a53.spec.allowed_clocks_hz()[:3]
        )
        assert tracker.stats.ledger_stages > 0
        assert tracker.stats.ledger_replays > 0
        assert sum(tracker.stats.shadow_checks.values()) > 0
        assert tracker.stats.violations == 0


class TestCliAudit:
    def test_sweep_output_identical_with_audit(self, capsys):
        argv = ["sweep", "--platform", "a53", "--samples", "2",
                "--seed", "5"]
        assert cli.main(argv) == 0
        plain = capsys.readouterr().out
        assert cli.main(argv + ["--audit"]) == 0
        audited = capsys.readouterr().out
        assert plain == audited

    def test_audit_summary_reaches_event_log(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert cli.main(
            ["sweep", "--platform", "a53", "--samples", "2",
             "--seed", "5", "--audit", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        events = (out / "events.jsonl").read_text(encoding="utf-8")
        assert '"event":"audit_summary"' in events.replace(" ", "")
        manifest = (out / "run_manifest.json").read_text(encoding="utf-8")
        assert "audit" in manifest
