"""AST-based determinism lint pass.

``python -m repro.audit lint src/`` walks every Python file (test
fixtures excluded), applies the project rules of
:mod:`repro.audit.rules` and reports ``file:line:col`` findings with
the documented fix-it.  Findings on a line carrying an inline
``# audit: ignore[RULE]`` comment are counted as suppressed and do not
fail the run; any unsuppressed finding makes the exit status nonzero.

The checks are deliberately project-shaped, not a general linter: they
encode the specific discipline the bit-identity guarantees of this
repo rest on (seeded RNG streams, ``state_version`` bumps, stable
cache keys, fault errors that propagate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.audit.rules import RULES

#: numpy module-level draw functions backed by the hidden global RNG.
_NP_GLOBAL_FNS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "logseries", "multinomial",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "noncentral_f", "normal", "pareto", "permutation", "poisson",
        "power", "rand", "randint", "randn", "random", "random_integers",
        "random_sample", "ranf", "rayleigh", "sample", "seed", "shuffle",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf",
    }
)

#: Dotted wall-clock reads R2 flags (module-qualified access only;
#: ``time.monotonic`` / ``time.perf_counter`` are fine -- they measure
#: durations, not wall time).
_WALL_CLOCK_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Files whose module path puts them inside the observability layer,
#: the one place wall-clock reads are legitimate.
_WALL_CLOCK_EXEMPT = ("repro/obs/",)

_SUPPRESS_RE = re.compile(
    r"#\s*audit:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One lint hit: location, rule, message and suppression state."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False

    @property
    def fixit(self) -> str:
        return RULES[self.rule].fixit

    def render(self, show_fixit: bool = True) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{RULES[self.rule].name}] {self.message}{mark}"
        )
        if show_fixit:
            text += f"\n    fix-it: {self.fixit}"
        return text


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _reraises(body: Sequence[ast.stmt]) -> bool:
    """Whether a handler body contains a bare ``raise``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """Attribute name for a ``self.<attr>`` store target, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attrs(func: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` a function assigns or augments."""
    attrs: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            name = _self_attr_target(target)
            if name is not None:
                attrs.add(name)
    return attrs


class _RuleVisitor(ast.NodeVisitor):
    """Applies every rule to one module's AST."""

    def __init__(self, path: str, wall_clock_exempt: bool):
        self.path = path
        self.wall_clock_exempt = wall_clock_exempt
        self.raw: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.raw.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- R1 / R3 -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[-3] in ("np", "numpy")
                and parts[-2] == "random"
                and parts[-1] in _NP_GLOBAL_FNS
            ):
                self._flag(
                    node,
                    "R1",
                    f"{dotted}() draws from numpy's hidden global RNG",
                )
            if parts[-1] == "default_rng" and not node.args and not any(
                kw.arg == "seed" for kw in node.keywords
            ):
                self._flag(
                    node,
                    "R1",
                    f"{dotted}() without a seed is entropy-seeded",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
            and not node.keywords
        ):
            self._flag(
                node,
                "R3",
                "id(...) is GC-reusable and must not feed cache keys",
            )
        self.generic_visit(node)

    # -- R2 ------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.wall_clock_exempt:
            dotted = _dotted(node)
            if dotted in _WALL_CLOCK_READS:
                self._flag(
                    node,
                    "R2",
                    f"wall-clock read {dotted} outside repro.obs",
                )
        self.generic_visit(node)

    # -- R4 ------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                mutable = True
            if mutable:
                self._flag(
                    default,
                    "R4",
                    f"mutable default argument in {node.name}()",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- R5 ------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_state_version(node)
        self.generic_visit(node)

    def _check_state_version(self, node: ast.ClassDef) -> None:
        """Classes with a ``state()`` snapshot and a ``_state_version``
        counter must bump the counter in every method that writes a
        field ``state()`` reads."""
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        state_method = next(
            (m for m in methods if m.name == "state"), None
        )
        tracks_version = any(
            "_state_version" in _assigned_self_attrs(m) for m in methods
        )
        if state_method is None or not tracks_version:
            return
        # Only plain ``self._x`` reads count as state fields; a nested
        # ``self._pdn.solver`` read still registers ``_pdn`` via the
        # inner Attribute node, so nothing is lost by requiring one dot.
        state_fields = {
            dotted[len("self."):]
            for n in ast.walk(state_method)
            if isinstance(n, ast.Attribute)
            and isinstance(n.ctx, ast.Load)
            and (dotted := _dotted(n)) is not None
            and dotted.startswith("self._")
            and dotted.count(".") == 1
        }
        state_fields.discard("_state_version")
        if not state_fields:
            return
        for method in methods:
            if method.name in ("__init__", "state"):
                continue
            assigned = _assigned_self_attrs(method)
            if assigned & state_fields and "_state_version" not in assigned:
                self._flag(
                    method,
                    "R5",
                    f"{node.name}.{method.name}() writes "
                    f"{sorted(assigned & state_fields)} without bumping "
                    "_state_version",
                )

    # -- R6 ------------------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            self._check_handler(handler)
        self.generic_visit(node)

    def _check_handler(self, handler: ast.ExceptHandler) -> None:
        if handler.type is None:
            self._flag(
                handler,
                "R6",
                "bare except swallows KeyboardInterrupt/SystemExit",
            )
            return
        types = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = {_dotted(t) for t in types}
        if "BaseException" in names:
            self._flag(
                handler,
                "R6",
                "except BaseException swallows "
                "KeyboardInterrupt/SystemExit",
            )
        elif "Exception" in names and not _reraises(handler.body):
            self._flag(
                handler,
                "R6",
                "except Exception without re-raise swallows injected "
                "FaultErrors and AuditViolations",
            )


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line number -> suppressed rule ids (None = every rule)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = {
                r.strip() for r in rules.split(",") if r.strip()
            }
    return table


def _is_wall_clock_exempt(path: Path) -> bool:
    posix = path.as_posix()
    return any(marker in posix for marker in _WALL_CLOCK_EXEMPT)


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
) -> List[Finding]:
    """Lint one module's source text; returns findings incl. suppressed."""
    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    visitor = _RuleVisitor(str(path), _is_wall_clock_exempt(path))
    visitor.visit(tree)
    suppressed_lines = _suppressions(source)
    findings: List[Finding] = []
    for finding in visitor.raw:
        rules = suppressed_lines.get(finding.line, ...)
        is_suppressed = rules is None or (
            rules is not ... and finding.rule in rules
        )
        if is_suppressed:
            finding = Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule=finding.rule,
                message=finding.message,
                suppressed=True,
            )
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Union[str, Path]) -> List[Finding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path)


def iter_python_files(
    paths: Iterable[Union[str, Path]]
) -> Iterator[Path]:
    """Every lintable .py file under ``paths``, test fixtures excluded."""
    for entry in paths:
        entry = Path(entry)
        candidates = (
            sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        )
        for candidate in candidates:
            parts = candidate.parts
            if "tests" in parts or ".egg-info" in "".join(parts):
                continue
            if candidate.name == "conftest.py":
                continue
            yield candidate


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint every Python file under ``paths`` (dirs walked recursively)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings
