"""Unit tests for spectral-line extraction and agreement checks."""

import numpy as np
import pytest

from repro.analysis.spectra import spectral_lines, spikes_agree


class TestSpectralLines:
    def test_finds_and_ranks_peaks(self):
        f = np.linspace(0, 100, 101)
        v = np.zeros(101)
        v[30] = 5.0
        v[70] = 9.0
        lines = spectral_lines(f, v, count=2)
        assert lines[0] == (70.0, 9.0)
        assert lines[1] == (30.0, 5.0)

    def test_floor_filters_noise_bumps(self):
        f = np.linspace(0, 10, 11)
        v = np.zeros(11)
        v[3] = 0.5
        v[7] = 5.0
        lines = spectral_lines(f, v, count=5, floor=1.0)
        assert [freq for freq, _ in lines] == [7.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spectral_lines(np.arange(5.0), np.arange(4.0))

    def test_short_input_sorted(self):
        lines = spectral_lines(np.array([1.0, 2.0]), np.array([3.0, 9.0]))
        assert lines[0][1] == 9.0


class TestSpikesAgree:
    def test_matching_spikes(self):
        a = [(67e6, -40.0), (16.6e6, -55.0)]
        b = [(67.4e6, 0.002), (16.8e6, 0.001)]
        assert spikes_agree(a, b, tolerance_hz=1e6, require=2)

    def test_disagreement_detected(self):
        a = [(67e6, -40.0)]
        b = [(120e6, -40.0)]
        assert not spikes_agree(a, b, tolerance_hz=1e6, require=1)

    def test_partial_agreement_threshold(self):
        a = [(67e6, -40.0), (30e6, -50.0)]
        b = [(67e6, -40.0), (90e6, -50.0)]
        assert spikes_agree(a, b, require=1)
        assert not spikes_agree(a, b, require=2)
