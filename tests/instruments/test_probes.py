"""Unit tests for the Kelvin-pad differential probe."""

import numpy as np
import pytest

from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.probes import DifferentialProbe
from repro.pdn.models import PDNModel, AMD_ATHLON_PDN


@pytest.fixture(scope="module")
def amd_response():
    solver = PDNModel(AMD_ATHLON_PDN).solver(4)
    n = 64
    wave = np.where(np.arange(n) < n // 2, 4.0, 1.0)
    return solver.solve(wave, n * 78e6)


def quiet_probe(bandwidth_hz=1e9):
    return DifferentialProbe(
        bandwidth_hz=bandwidth_hz,
        scope=Oscilloscope(
            sample_rate_hz=4e9,
            resolution_bits=16,
            noise_rms_v=0.0,
            rng=np.random.default_rng(0),
        ),
    )


class TestDifferentialProbe:
    def test_wideband_probe_preserves_noise(self, amd_response):
        probe = quiet_probe(bandwidth_hz=10e9)
        cap = probe.capture(amd_response, duration_s=2e-6)
        assert cap.peak_to_peak() == pytest.approx(
            amd_response.peak_to_peak, rel=0.05
        )

    def test_narrow_probe_attenuates(self, amd_response):
        wide = quiet_probe(bandwidth_hz=10e9)
        narrow = quiet_probe(bandwidth_hz=50e6)
        p_wide = wide.capture(amd_response, duration_s=2e-6).peak_to_peak()
        p_narrow = narrow.capture(
            amd_response, duration_s=2e-6
        ).peak_to_peak()
        assert p_narrow < p_wide

    def test_gain_applies_to_ac(self, amd_response):
        half = DifferentialProbe(
            gain=0.5,
            bandwidth_hz=10e9,
            scope=Oscilloscope(
                sample_rate_hz=4e9,
                resolution_bits=16,
                noise_rms_v=0.0,
                rng=np.random.default_rng(0),
            ),
        )
        full = quiet_probe(bandwidth_hz=10e9)
        p_half = half.capture(amd_response, duration_s=2e-6).peak_to_peak()
        p_full = full.capture(amd_response, duration_s=2e-6).peak_to_peak()
        assert p_half == pytest.approx(0.5 * p_full, rel=0.05)

    def test_measure_helpers(self, amd_response):
        probe = quiet_probe()
        assert probe.measure_max_droop(amd_response) > 0.0
        assert probe.measure_peak_to_peak(amd_response) > 0.0
