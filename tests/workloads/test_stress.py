"""Unit tests for stress/stability workloads."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.x86 import X86_ISA
from repro.workloads.stress import (
    amd_stability_test,
    idle_workload,
    prime95_like,
)


class TestSaturatingPrograms:
    def test_prime95_avoids_stalling_ops(self):
        wl = prime95_like(X86_ISA)
        assert all(
            i.spec.recip_throughput == 1 for i in wl.program.body
        )

    def test_prime95_is_simd_fp_only(self):
        from repro.cpu.isa import InstructionClass

        wl = prime95_like(ARM_ISA)
        classes = {i.spec.iclass for i in wl.program.body}
        assert classes <= {
            InstructionClass.SIMD, InstructionClass.FLOAT,
        }

    def test_stability_test_includes_integer(self):
        from repro.cpu.isa import InstructionClass

        wl = amd_stability_test(X86_ISA)
        classes = {i.spec.iclass for i in wl.program.body}
        assert InstructionClass.INT_SHORT in classes


class TestPowerVirusVsDIDTVirus:
    """Fig. 18's punchline: power viruses draw much current but ring
    little -- their min-voltage is IR-dominated."""

    def test_prime95_high_current_low_ripple(self, athlon):
        run = prime95_like(athlon.spec.isa).run(athlon)
        # sustained power: deep IR droop...
        assert run.max_droop > 0.03
        # ...but small oscillation relative to it
        assert run.peak_to_peak < run.max_droop

    def test_resonant_hilo_out_rings_prime95(self, athlon):
        """The 22-cycle hi/lo loop lands on the 78 MHz resonance at a
        1.7 GHz clock and out-rings the saturated power virus."""
        from repro.cpu.program import program_from_mnemonics
        from repro.workloads.base import ProgramWorkload

        p95_p2p = prime95_like(athlon.spec.isa).run(athlon).peak_to_peak
        athlon.set_clock(1.7e9)
        hilo = ProgramWorkload(
            "hilo",
            program_from_mnemonics(
                athlon.spec.isa, ["add_rr"] * 8 + ["idiv_rr"]
            ),
            jitter_seed=None,
        )
        run = hilo.run(athlon)
        assert 70e6 < run.cluster_run.loop_frequency_hz < 85e6
        assert run.peak_to_peak > p95_p2p

    def test_prime95_draws_more_mean_current_than_hilo(self, athlon):
        from repro.cpu.program import program_from_mnemonics
        from repro.workloads.base import ProgramWorkload

        hilo = ProgramWorkload(
            "hilo",
            program_from_mnemonics(
                athlon.spec.isa, ["add_rr"] * 8 + ["idiv_rr"]
            ),
            jitter_seed=None,
        )
        p95_current = prime95_like(athlon.spec.isa).run(
            athlon
        ).response.die_current.mean()
        hilo_current = hilo.run(athlon).response.die_current.mean()
        assert p95_current > hilo_current


class TestIdle:
    def test_idle_factory(self):
        assert idle_workload().name == "idle"
