"""The generational GA loop (Fig. 3's flow).

Seed a random population, measure every individual, select parents by
tournament, cross over, mutate, repeat.  Fitness evaluations are
memoized on the individual's genome because converged populations
contain many clones -- the same economy a real setup gets by caching
measurement results per binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.isa import InstructionSpec
from repro.cpu.program import LoopProgram, random_program
from repro.ga.fitness import FitnessEvaluation
from repro.ga.operators import (
    mutate,
    one_point_crossover,
    tournament_selection,
)
from repro.ga.parallel import ParallelEvaluator


@dataclass(frozen=True)
class GAConfig:
    """GA hyperparameters; defaults follow the paper's recipe.

    ``workers`` fans the fitness evaluations of each generation out
    across processes (see :mod:`repro.ga.parallel`); the default of 1
    keeps the serial path and its seed-for-seed behavior.
    """

    population_size: int = 50
    generations: int = 60
    loop_length: int = 50
    mutation_rate: float = 0.03
    tournament_size: int = 3
    elitism: int = 1
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.loop_length < 1:
            raise ValueError("loop_length must be >= 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be < population_size")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass
class GenerationRecord:
    """Best-individual summary of one generation (the Fig. 7 series)."""

    generation: int
    best_program: LoopProgram
    best: FitnessEvaluation
    mean_score: float


@dataclass
class GAResult:
    """Outcome of a GA run."""

    config: GAConfig
    history: List[GenerationRecord]
    evaluations: int

    @property
    def best(self) -> GenerationRecord:
        return max(self.history, key=lambda r: r.best.score)

    @property
    def best_program(self) -> LoopProgram:
        return self.best.best_program

    def score_series(self) -> np.ndarray:
        return np.array([r.best.score for r in self.history])

    def droop_series(self) -> np.ndarray:
        return np.array([r.best.max_droop_v for r in self.history])

    def dominant_frequency_series(self) -> np.ndarray:
        return np.array(
            [r.best.dominant_frequency_hz for r in self.history]
        )


class GAEngine:
    """Drives the optimization against a fitness callable.

    ``fitness`` maps a :class:`LoopProgram` to a
    :class:`FitnessEvaluation`; it encapsulates the whole measurement
    chain (target execution plus instrument).
    """

    def __init__(
        self,
        fitness: Callable[[LoopProgram], FitnessEvaluation],
        config: GAConfig = GAConfig(),
        pool: Optional[Sequence[InstructionSpec]] = None,
        memoize: bool = True,
    ):
        """``memoize=False`` disables the per-genome fitness cache --
        required when the fitness signal is nondeterministic (e.g. the
        cache-miss ablation), where re-measuring a clone legitimately
        yields a different score."""
        self._fitness = fitness
        self.config = config
        self._pool = tuple(pool) if pool is not None else None
        self._memoize = memoize
        self._cache: Dict[Tuple, FitnessEvaluation] = {}

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def _evaluate(self, program: LoopProgram) -> FitnessEvaluation:
        if not self._memoize:
            return self._fitness(program)
        key = program.genome()
        hit = self._cache.get(key)
        if hit is None:
            hit = self._fitness(program)
            self._cache[key] = hit
        return hit

    def _evaluate_generation(
        self,
        population: Sequence[LoopProgram],
        evaluator: ParallelEvaluator,
    ) -> Tuple[List[FitnessEvaluation], int]:
        """Evaluate a whole generation as one batch.

        With memoization on, the generation is deduped by genome
        against the memo cache, only unseen genomes are dispatched to
        ``evaluator`` (first occurrence wins), and the results are
        merged back so clones read from the cache.  Returns the
        per-individual evaluations (population order) and the number of
        fresh fitness measurements.
        """
        if not self._memoize:
            evals = evaluator.evaluate(population)
            return evals, len(evals)
        genomes = [p.genome() for p in population]
        pending: Dict[Tuple, LoopProgram] = {}
        for program, genome in zip(population, genomes):
            if genome not in self._cache and genome not in pending:
                pending[genome] = program
        if pending:
            fresh = evaluator.evaluate(list(pending.values()))
            for genome, evaluation in zip(pending, fresh):
                self._cache[genome] = evaluation
        return [self._cache[g] for g in genomes], len(pending)

    def _initial_population(
        self, isa, rng: np.random.Generator
    ) -> List[LoopProgram]:
        return [
            random_program(
                isa,
                self.config.loop_length,
                rng,
                name=f"ind{i}",
                pool=self._pool,
            )
            for i in range(self.config.population_size)
        ]

    def run(
        self,
        isa,
        initial_population: Optional[Sequence[LoopProgram]] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> GAResult:
        """Run the full optimization and return per-generation history.

        ``initial_population`` allows resuming from a previous run
        (Section 3.1a); otherwise a fresh random seed population is
        drawn.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if initial_population is not None:
            population = list(initial_population)
            if len(population) != cfg.population_size:
                raise ValueError(
                    "initial population size does not match config"
                )
        else:
            population = self._initial_population(isa, rng)

        history: List[GenerationRecord] = []
        evaluations = 0
        evaluator = ParallelEvaluator(self._fitness, cfg.workers)
        try:
            for gen in range(cfg.generations):
                evals, fresh = self._evaluate_generation(
                    population, evaluator
                )
                evaluations += fresh
                scores = [e.score for e in evals]
                best_idx = int(np.argmax(scores))
                record = GenerationRecord(
                    generation=gen,
                    best_program=population[best_idx],
                    best=evals[best_idx],
                    mean_score=float(np.mean(scores)),
                )
                history.append(record)
                if progress is not None:
                    progress(record)
                if gen == cfg.generations - 1:
                    break
                population = self._next_generation(
                    population, scores, rng, best_idx
                )
        finally:
            evaluator.close()
        return GAResult(config=cfg, history=history, evaluations=evaluations)

    def _next_generation(
        self,
        population: Sequence[LoopProgram],
        scores: Sequence[float],
        rng: np.random.Generator,
        best_idx: int,
    ) -> List[LoopProgram]:
        cfg = self.config
        ranked = sorted(
            range(len(population)), key=lambda i: scores[i], reverse=True
        )
        next_pop: List[LoopProgram] = [
            population[i] for i in ranked[: cfg.elitism]
        ]
        while len(next_pop) < cfg.population_size:
            parent_a = tournament_selection(
                population, scores, rng, cfg.tournament_size
            )
            parent_b = tournament_selection(
                population, scores, rng, cfg.tournament_size
            )
            child_a, child_b = one_point_crossover(parent_a, parent_b, rng)
            next_pop.append(
                mutate(child_a, rng, cfg.mutation_rate, self._pool)
            )
            if len(next_pop) < cfg.population_size:
                next_pop.append(
                    mutate(child_b, rng, cfg.mutation_rate, self._pool)
                )
        return next_pop
