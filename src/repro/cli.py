"""Command-line interface: characterize simulated platforms from a shell.

Subcommands mirror the paper's workflow; every artifact-producing run
writes a ``run_manifest.json`` + JSONL event log next to its outputs::

    python -m repro platforms
    python -m repro table1
    python -m repro impedance --platform a72
    python -m repro sweep --platform a53 --cores 1 --out sweeps/
    python -m repro virus --platform a72 --generations 40 --out viruses/
    # interrupted?  resume bit-identically from the saved checkpoint:
    python -m repro virus --platform a72 --generations 40 --out viruses/ \
        --resume viruses/checkpoint.json
    python -m repro vmin --platform a72 --workloads lbm,gcc,idle \
        --virus viruses/cortex-a72-em-amplitude.meta.json
    python -m repro report --platform a72 --out reports/
    # regenerate a report from provenance alone (no re-run):
    python -m repro provenance viruses/

Platform keys are resolved through the Table 1 registry
(:mod:`repro.platforms.registry`); ``platforms`` lists every runnable
entry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import ResonanceSweep
from repro.core.virusgen import VirusGenerator
from repro.faults.retry import RetryPolicy
from repro.ga.engine import GAConfig
from repro.ga.topology import TOPOLOGIES
from repro.instruments.spectrum_analyzer import (
    SpectrumAnalyzer,
    watts_to_dbm,
)
from repro.obs.context import RunContext
from repro.obs.events import EventLog, JsonlFileSink, StderrSink
from repro.obs.manifest import RunManifest
from repro.platforms import registry
from repro.platforms.base import Cluster

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.chain.session import SimulationSession

PLATFORM_CHOICES = registry.platform_keys()

EVENT_LOG_FILENAME = "events.jsonl"
CHECKPOINT_FILENAME = "checkpoint.json"

#: Default checkpoint directory for island campaigns (``--islands``).
ISLAND_CHECKPOINT_DIRNAME = "island-checkpoints"


def resolve_cluster(name: str) -> Cluster:
    """Build the named platform's cluster at its nominal state."""
    try:
        return registry.make_cluster(name)
    except KeyError as exc:
        raise ValueError(str(exc)) from None


def make_characterizer(
    seed: int, session: Optional["SimulationSession"] = None
) -> EMCharacterizer:
    return EMCharacterizer(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
        samples=10,
        session=session,
    )


def _audited_characterizer(args, log) -> tuple:
    """(characterizer, tracker-or-None) honouring ``--audit``.

    With ``--audit`` the characterizer's session carries a
    :class:`repro.audit.DeterminismTracker`: cache hits are
    shadow-recomputed on a seeded sample and the chain keeps an RNG
    draw ledger, with violations raised and mirrored into the event
    log.  The tracker's own sampling PRNG is seeded from the run seed,
    so an audited run is itself reproducible -- and never perturbs the
    measurement streams, so results stay byte-identical to an
    un-audited run.
    """
    if not getattr(args, "audit", False):
        return make_characterizer(args.seed), None
    from repro.audit import DeterminismTracker
    from repro.chain.session import SimulationSession

    tracker = DeterminismTracker(seed=args.seed, event_log=log)
    session = SimulationSession(audit=tracker)
    return make_characterizer(args.seed, session=session), tracker


def _open_event_log(args) -> tuple:
    """(EventLog, relative log name or None) for an artifact run.

    ``--out`` runs always archive a JSONL event log next to their
    artifacts; ``--events -`` additionally streams records to stderr.
    """
    sinks = []
    log_name = None
    out = getattr(args, "out", None)
    if out:
        log_name = EVENT_LOG_FILENAME
        sinks.append(JsonlFileSink(Path(out) / log_name))
    if getattr(args, "events", None) == "-":
        sinks.append(StderrSink())
    elif getattr(args, "events", None):
        sinks.append(JsonlFileSink(args.events))
    return EventLog(sinks), log_name


# ---------------------------------------------------------------------------
def cmd_table1(args) -> int:
    from repro.platforms.registry import render_table

    print(render_table())
    return 0


def cmd_platforms(args) -> int:
    print(registry.render_registry())
    return 0


def cmd_impedance(args) -> int:
    cluster = resolve_cluster(args.platform)
    cores = args.cores or cluster.spec.num_cores
    model = cluster.pdn
    freqs = np.logspace(4, 8.7, args.points)
    analysis = model.impedance_analysis(freqs, cores)
    mag = analysis.impedance_magnitude("die")
    print(f"# {cluster.name}, {cores} powered cores")
    print(f"# {'frequency_hz':>14} {'z_mohm':>10}")
    for f, z in zip(freqs, mag):
        print(f"{f:>16.1f} {z * 1e3:>10.4f}")
    peak = analysis.peak_frequency_hz("die", (50e6, 200e6))
    print(f"# first-order resonance: {peak / 1e6:.1f} MHz")
    return 0


def cmd_sweep(args) -> int:
    cluster = resolve_cluster(args.platform)
    if args.cores:
        cluster.power_gate(args.cores)
    log, log_name = _open_event_log(args)
    manifest = RunManifest.create(
        "sweep",
        args.platform,
        args.seed,
        config={"samples": args.samples, "cores": args.cores},
    )
    ctx = RunContext(
        cluster=cluster,
        seed=args.seed,
        event_log=log,
        active_cores=1 if args.cores else None,
    )
    characterizer, tracker = _audited_characterizer(args, log)
    if tracker is not None:
        manifest.extra["audit"] = True
    sweep = ResonanceSweep(
        characterizer, samples_per_point=args.samples
    )
    result = sweep.run(ctx)
    if tracker is not None:
        tracker.emit_summary()
    print(f"# {cluster.name}, {cluster.powered_cores} powered cores")
    print(f"# {'loop_freq_hz':>14} {'amplitude_dbm':>14}")
    for point in sorted(result.points, key=lambda p: p.loop_frequency_hz):
        dbm = float(watts_to_dbm(np.array(point.amplitude_w)))
        print(f"{point.loop_frequency_hz:>16.1f} {dbm:>14.2f}")
    print(
        f"# first-order resonance: {result.resonance_hz() / 1e6:.1f} MHz"
    )
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        sweep_name = f"{cluster.name}-sweep.json"
        (out_dir / sweep_name).write_text(
            result.to_json(indent=2), encoding="utf-8"
        )
        manifest.event_log = log_name
        manifest.add_artifact(sweep_name)
        manifest.write(out_dir)
        print(f"# archived to {out_dir / sweep_name}")
    log.close()
    return 0


def cmd_virus(args) -> int:
    from dataclasses import asdict

    from repro.io.serialization import (
        load_checkpoint,
        save_virus_archive,
    )

    cluster = resolve_cluster(args.platform)
    config = GAConfig(
        population_size=args.population,
        generations=args.generations,
        loop_length=args.loop_length,
        mutation_rate=args.mutation_rate,
        seed=args.seed,
        workers=args.workers,
    )
    island_config = None
    if args.islands > 1:
        from repro.ga.islands import IslandConfig

        island_config = IslandConfig(
            islands=args.islands,
            topology=args.topology,
            migration_interval=(
                None
                if args.migration_interval == 0
                else args.migration_interval
            ),
        )
    out_dir = Path(args.out) if args.out else None
    log, log_name = _open_event_log(args)
    manifest = RunManifest.create(
        "virus", args.platform, args.seed, config=asdict(config)
    )
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and out_dir is not None:
        checkpoint_path = (
            out_dir / ISLAND_CHECKPOINT_DIRNAME
            if island_config is not None
            else out_dir / CHECKPOINT_FILENAME
        )
    if island_config is not None:
        manifest.extra["islands"] = {
            "islands": island_config.islands,
            "topology": island_config.topology,
            "migration_interval": island_config.migration_interval,
        }
    fault_injector = None
    if args.fault_plan:
        from repro.faults import FaultInjector, load_fault_plan

        try:
            fault_injector = FaultInjector(
                load_fault_plan(args.fault_plan)
            )
        except (OSError, ValueError) as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
        manifest.extra["fault_plan"] = str(args.fault_plan)
    retry_policy = RetryPolicy(
        max_retries=args.max_retries,
        base_delay_s=0.05,
        seed=args.seed,
    )
    manifest.extra["max_retries"] = args.max_retries
    resume = None
    if args.resume:
        from repro.faults.errors import CorruptArtifact
        from repro.io.serialization import SerializationError

        try:
            if island_config is not None:
                from repro.ga.islands import load_island_checkpoint

                resume = load_island_checkpoint(
                    args.resume, event_log=log
                )
            else:
                resume = load_checkpoint(args.resume, event_log=log)
        except (
            FileNotFoundError,
            CorruptArtifact,
            SerializationError,
            OSError,
            ValueError,
        ) as exc:
            print(
                f"error: cannot resume from {args.resume}: {exc}",
                file=sys.stderr,
            )
            log.close()
            return 2
    if resume is not None:
        manifest.extra["resumed_from"] = str(args.resume)
        manifest.extra["resumed_at_generation"] = resume.generation
    characterizer, tracker = _audited_characterizer(args, log)
    if tracker is not None:
        manifest.extra["audit"] = True
    generator = VirusGenerator(
        cluster,
        characterizer,
        config=config,
        event_log=log,
        checkpoint_path=checkpoint_path,
        checkpoint_every=args.checkpoint_every,
        retry_policy=retry_policy,
        fault_injector=fault_injector,
        island_config=island_config,
    )

    def progress(record):
        dbm = float(watts_to_dbm(np.array(record.best.score)))
        print(
            f"gen {record.generation:3d}: {dbm:6.1f} dBm, dominant "
            f"{record.best.dominant_frequency_hz / 1e6:5.1f} MHz",
            file=sys.stderr,
        )

    summary = generator.generate_em_virus(
        progress=progress, resume=resume
    )
    if tracker is not None:
        tracker.emit_summary()
    print(
        f"# virus for {cluster.name}: dominant "
        f"{summary.dominant_frequency_hz / 1e6:.1f} MHz, droop "
        f"{summary.max_droop_v * 1e3:.1f} mV, IPC {summary.ipc:.2f}"
    )
    if out_dir is not None:
        meta = save_virus_archive(summary, out_dir)
        stem = meta.name[: -len(".meta.json")]
        manifest.event_log = log_name
        for suffix in (".meta.json", ".json", ".s", ".summary.json"):
            manifest.add_artifact(f"{stem}{suffix}")
        if checkpoint_path is not None and Path(checkpoint_path).exists():
            manifest.extra["checkpoint"] = Path(checkpoint_path).name
        manifest.write(out_dir)
        print(f"# archived to {meta}")
    else:
        print(summary.virus.assembly())
    log.close()
    return 0


def cmd_vmin(args) -> int:
    from repro.stability.failure import failure_model_for
    from repro.stability.vmin import VminTester
    from repro.workloads.base import ProgramWorkload
    from repro.workloads.spec import SPEC_PROFILES, spec_workload
    from repro.workloads.stress import idle_workload

    cluster = resolve_cluster(args.platform)
    tester = VminTester(
        cluster,
        failure_model_for(cluster.name),
        step_v=args.step,
        seed=args.seed,
    )
    workloads = []
    spec_names = {p.name for p in SPEC_PROFILES}
    for name in args.workloads.split(","):
        name = name.strip()
        if not name:
            continue
        if name == "idle":
            workloads.append(idle_workload())
        elif name in spec_names:
            workloads.append(spec_workload(cluster.spec.isa, name))
        else:
            print(f"error: unknown workload {name!r}", file=sys.stderr)
            return 2
    virus_names = ()
    if args.virus:
        from repro.io.serialization import load_virus_archive

        program, metadata = load_virus_archive(args.virus)
        workloads.append(
            ProgramWorkload("virus", program, jitter_seed=None)
        )
        virus_names = ("virus",)

    results = tester.compare(
        workloads,
        virus_repeats=args.virus_repeats,
        benchmark_repeats=args.repeats,
        virus_names=virus_names,
    )
    nominal = cluster.spec.nominal_voltage
    print(f"# {cluster.name} at {cluster.clock_hz / 1e6:.0f} MHz")
    print(f"# {'workload':<14} {'vmin_v':>8} {'margin_mv':>10}")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].vmin):
        print(
            f"{name:<16} {res.vmin:>8.4f} "
            f"{(nominal - res.vmin) * 1e3:>10.1f}"
        )
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import characterize

    cluster = resolve_cluster(args.platform)
    config = GAConfig(
        population_size=args.population,
        generations=args.generations,
        loop_length=50,
        seed=args.seed,
        workers=args.workers,
    )
    log, log_name = _open_event_log(args)
    from dataclasses import asdict

    manifest = RunManifest.create(
        "report", args.platform, args.seed, config=asdict(config)
    )
    characterizer, tracker = _audited_characterizer(args, log)
    if tracker is not None:
        manifest.extra["audit"] = True
    report = characterize(
        cluster,
        characterizer,
        ga_config=config,
        run_vmin=not args.no_vmin,
        seed=args.seed,
        event_log=log,
    )
    if tracker is not None:
        tracker.emit_summary()
    markdown = report.to_markdown()
    print(markdown)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report_name = f"{cluster.name}-report.md"
        (out_dir / report_name).write_text(markdown, encoding="utf-8")
        manifest.event_log = log_name
        manifest.add_artifact(report_name)
        manifest.write(out_dir)
        print(f"# archived to {out_dir / report_name}", file=sys.stderr)
    log.close()
    return 0


def cmd_provenance(args) -> int:
    from repro.analysis.report import report_from_provenance

    print(report_from_provenance(args.path))
    return 0


def cmd_serve(args) -> int:
    """Run the measurement service HTTP front end until interrupted."""
    import asyncio

    from repro.service import MeasurementService, ServiceServer

    log, _log_name = _open_event_log(args)

    async def _serve() -> int:
        service = MeasurementService(
            seed=args.seed,
            samples=args.samples,
            max_pending_jobs=args.max_pending,
            max_batch_items=args.max_batch_items,
            rate_per_s=args.rate,
            burst=args.burst,
            default_timeout_s=args.timeout,
            state_dir=Path(args.state_dir) if args.state_dir else None,
            event_log=log,
        )
        await service.start()
        server = ServiceServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"# serving on http://{server.host}:{server.port} "
            f"(platforms: {', '.join(service.platforms)})",
            file=sys.stderr,
        )
        try:
            await asyncio.Event().wait()  # until KeyboardInterrupt
        finally:
            await server.close()
            await service.close()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("# shutdown", file=sys.stderr)
        return 0
    finally:
        log.close()


# ---------------------------------------------------------------------------
def _add_artifact_flags(parser) -> None:
    parser.add_argument("--out", default=None, help="artifact directory")
    parser.add_argument(
        "--events",
        default=None,
        help="extra event-log destination: a path, or '-' for stderr",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="enable the runtime determinism audit (shadow-recomputed "
        "cache hits + RNG draw ledger; results stay byte-identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EM-driven CPU voltage-noise characterization "
        "(MICRO 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the platform matrix")
    sub.add_parser(
        "platforms", help="list the runnable platform registry"
    )

    p = sub.add_parser("impedance", help="PDN impedance seen by the die")
    p.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    p.add_argument("--cores", type=int, default=None)
    p.add_argument("--points", type=int, default=200)

    p = sub.add_parser("sweep", help="fast EM resonance sweep")
    p.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    p.add_argument("--cores", type=int, default=None,
                   help="powered cores (1 active)")
    p.add_argument("--samples", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    _add_artifact_flags(p)

    p = sub.add_parser("virus", help="EM-driven GA virus generation")
    p.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    p.add_argument("--population", type=int, default=50)
    p.add_argument("--generations", type=int, default=60)
    p.add_argument("--loop-length", type=int, default=50)
    p.add_argument("--mutation-rate", type=float, default=0.03)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="fitness evaluation processes (1 = serial)")
    p.add_argument("--islands", type=int, default=1,
                   help="shard the population across N islands "
                        "(1 = single-population search)")
    p.add_argument("--topology", choices=list(TOPOLOGIES),
                   default="ring",
                   help="island migration topology")
    p.add_argument("--migration-interval", type=int, default=5,
                   help="generations between champion migrations "
                        "(0 = never migrate)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file (default: <out>/checkpoint.json; "
                        "with --islands a directory, default "
                        "<out>/island-checkpoints)")
    p.add_argument("--checkpoint-every", type=int, default=5,
                   help="generations between checkpoints")
    p.add_argument("--fault-plan", default=None,
                   help="JSON fault plan armed during the run "
                        "(see docs/testing.md)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retry budget for transient measurement and "
                        "checkpoint-IO faults")
    p.add_argument("--resume", default=None,
                   help="resume from a checkpoint file; continues "
                   "bit-identically (same flags except --generations "
                   "and --workers)")
    _add_artifact_flags(p)

    p = sub.add_parser(
        "report", help="full characterization report (markdown)"
    )
    p.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    p.add_argument("--population", type=int, default=30)
    p.add_argument("--generations", type=int, default=25)
    p.add_argument("--no-vmin", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="fitness evaluation processes (1 = serial)")
    _add_artifact_flags(p)

    p = sub.add_parser(
        "provenance",
        help="regenerate a report from an artifact directory's "
        "manifest + event log (no re-run)",
    )
    p.add_argument("path", help="artifact directory or run_manifest.json")

    p = sub.add_parser(
        "serve",
        help="measurement-as-a-service HTTP front end "
        "(async job batching over shared warm sessions)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8423,
                   help="TCP port (0 = OS-assigned)")
    p.add_argument("--seed", type=int, default=0,
                   help="analyzer RNG seed per platform")
    p.add_argument("--samples", type=int, default=10,
                   help="default analyzer samples per measurement")
    p.add_argument("--max-pending", type=int, default=64,
                   help="pending-queue capacity before 429 rejections")
    p.add_argument("--max-batch-items", type=int, default=256,
                   help="coalesced chain-items budget per batch")
    p.add_argument("--rate", type=float, default=None,
                   help="per-tenant submissions/second "
                        "(default: unlimited)")
    p.add_argument("--burst", type=float, default=5.0,
                   help="per-tenant token-bucket burst")
    p.add_argument("--timeout", type=float, default=None,
                   help="default job timeout in seconds")
    p.add_argument("--state-dir", default=None,
                   help="persist per-job result + RunManifest here")
    p.add_argument("--events", default=None,
                   help="event-log destination: a path, or '-' for "
                        "stderr")
    p.add_argument("--audit", action="store_true",
                   help=argparse.SUPPRESS)
    p.add_argument("--out", default=None, help=argparse.SUPPRESS)

    p = sub.add_parser("vmin", help="progressive-undervolting V_MIN test")
    p.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    p.add_argument("--workloads", default="idle",
                   help="comma list: idle or SPEC names")
    p.add_argument("--virus", default=None,
                   help="path to a .meta.json virus archive")
    p.add_argument("--step", type=float, default=0.010)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--virus-repeats", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    return parser


_COMMANDS = {
    "table1": cmd_table1,
    "platforms": cmd_platforms,
    "impedance": cmd_impedance,
    "sweep": cmd_sweep,
    "virus": cmd_virus,
    "vmin": cmd_vmin,
    "report": cmd_report,
    "provenance": cmd_provenance,
    "serve": cmd_serve,
}


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
