"""Figure 13: A53 resonance exploration across power-gating states.

Paper: with one active core throughout (constant load), the resonance
climbs from 76.5 MHz with all four cores powered to 97 MHz with one,
and the EM amplitude grows as capacitance leaves the rail.
"""

from repro.core.resonance import ResonanceSweep

from benchmarks.conftest import paper_characterizer, print_header

CLOCKS = [950e6 - k * 25e6 for k in range(0, 34)]


def test_fig13_power_gating_states(benchmark, juno_board):
    a53 = juno_board.a53
    a53.reset()
    sweep = ResonanceSweep(paper_characterizer(33), samples_per_point=5)

    def regenerate():
        return sweep.power_gating_study(
            a53, core_counts=(4, 3, 2, 1), clocks_hz=CLOCKS
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 13: A53 resonance vs powered cores (1 active core)")
    print(f"{'state':<12} {'resonance':>12} {'peak amplitude':>16}")
    rows = []
    for result in results:
        label = "C0" + "".join(
            f"C{i}" for i in range(1, result.powered_cores)
        )
        peak_amp = max(p.amplitude_w for p in result.points)
        rows.append((result.powered_cores, result.resonance_hz(), peak_amp))
        print(
            f"{label:<12} {result.resonance_hz() / 1e6:>9.1f} MHz "
            f"{peak_amp:>13.3e} W"
        )

    freqs = [f for _, f, _ in rows]  # ordered 4 -> 1 powered cores
    amps = [a for _, _, a in rows]
    # resonance rises monotonically (non-strict: sweep quantization)
    assert all(b >= a for a, b in zip(freqs, freqs[1:]))
    assert freqs[-1] > freqs[0] + 8e6
    # paper's endpoints: 76.5 MHz (x4) and 97 MHz (x1)
    assert abs(freqs[0] - 76.5e6) < 8e6
    assert abs(freqs[-1] - 97e6) < 8e6
    # with constant load, less capacitance -> larger noise/EM amplitude
    assert amps[-1] > amps[0]
