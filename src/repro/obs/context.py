"""The shared experiment context.

Every experiment-facing entry point (:class:`~repro.core.characterizer.
EMCharacterizer`, :class:`~repro.core.resonance.ResonanceSweep`,
:class:`~repro.core.virusgen.VirusGenerator`) accepts a
:class:`RunContext` through its ``.run(ctx)`` method: one object
carrying the cluster under test, the run seed, the event log and the
worker count, instead of each class growing its own ad-hoc signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.obs.events import NULL_LOG, EventLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platforms.base import Cluster


@dataclass
class RunContext:
    """Everything an experiment run needs besides its own knobs.

    Attributes
    ----------
    cluster:
        The cluster under test.
    seed:
        Run seed; seeds instrument RNGs and the GA.
    event_log:
        Telemetry destination; defaults to the shared disabled log.
    workers:
        Fitness-evaluation processes for GA-backed experiments.
    active_cores:
        Cores executing the workload (``None`` = all powered cores).
    """

    cluster: "Cluster"
    seed: int = 0
    event_log: EventLog = field(default_factory=lambda: NULL_LOG)
    workers: int = 1
    active_cores: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.event_log is None:
            self.event_log = NULL_LOG

    @property
    def cluster_name(self) -> str:
        return self.cluster.name
