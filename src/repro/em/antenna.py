"""Square-loop receiving antenna model (Fig. 6).

The paper uses a 3 cm square loop with a measured self-resonance at
2.95 GHz and a relatively flat response from DC to 1.2 GHz; it is *not*
matched in the 50-200 MHz band yet receives fine at 5-10 cm from the
die.  The model is a series-RLC resonator: the loop inductance against
its distributed capacitance sets the self-resonance, and the reflection
coefficient against a 50-ohm port reproduces the |S11| dip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SquareLoopAntenna:
    """Electrically small square loop antenna.

    Parameters
    ----------
    side_m:
        Side length of the loop (paper: 3 cm).
    self_resonance_hz:
        First self-resonance (paper measurement: 2.95 GHz).
    quality_factor:
        Resonator Q; sets the sharpness of the |S11| dip.
    port_ohms:
        Reference impedance of the measuring port.
    """

    side_m: float = 0.03
    self_resonance_hz: float = 2.95e9
    quality_factor: float = 12.0
    port_ohms: float = 50.0
    radiation_resistance_ohms: float = 2.0

    @property
    def loop_inductance_h(self) -> float:
        """Approximate inductance of a square loop of thin wire."""
        # Standard small-loop estimate: L = 2*mu0*s/pi * (ln(s/a) - 0.774)
        # with wire radius a ~ 0.5 mm.
        mu0 = 4.0e-7 * math.pi
        a = 5.0e-4
        return 2.0 * mu0 * self.side_m / math.pi * (
            math.log(self.side_m / a) - 0.774
        )

    @property
    def shunt_capacitance_f(self) -> float:
        """Distributed capacitance placing resonance at the measured value."""
        w0 = 2.0 * math.pi * self.self_resonance_hz
        return 1.0 / (w0 * w0 * self.loop_inductance_h)

    @property
    def resonant_resistance_ohms(self) -> float:
        """Port resistance at the first self-resonance.

        At its first (half-wave-like) resonance the loop's reactance
        cancels and the port sees a moderate real impedance -- this is
        what produces the |S11| dip in Fig. 6.  The value follows from
        the resonator Q: ``R = w0 L / Q``.
        """
        w0 = 2.0 * math.pi * self.self_resonance_hz
        return w0 * self.loop_inductance_h / (self.quality_factor * 4.0)

    def impedance(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex antenna terminal impedance across frequency.

        Series-resonator model of the loop's first self-resonance: far
        below resonance the distributed capacitance dominates (a large
        reactive mismatch: the flat ~0 dB |S11| of Fig. 6), at
        resonance the reactances cancel and the port sees
        :attr:`resonant_resistance_ohms`.
        """
        f = np.asarray(frequencies_hz, dtype=float)
        w = 2.0 * math.pi * np.maximum(f, 1.0)
        w0 = 2.0 * math.pi * self.self_resonance_hz
        l_eff = self.loop_inductance_h / 16.0  # transmission-line scale
        c_eff = 1.0 / (w0 * w0 * l_eff)
        r = self.resonant_resistance_ohms + self.radiation_resistance_ohms
        return r + 1j * w * l_eff + 1.0 / (1j * w * c_eff)

    def s11(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex S11 against the reference port."""
        z = self.impedance(frequencies_hz)
        return (z - self.port_ohms) / (z + self.port_ohms)

    def s11_db(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """|S11| in dB -- the Fig. 6 curve."""
        return 20.0 * np.log10(np.abs(self.s11(frequencies_hz)))

    def response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Receiving transfer gain (dimensionless) across frequency.

        Flat (and small: unmatched) well below the self-resonance, with
        the resonant rise near it, rolling off above.  In the 50-200 MHz
        band the response is flat to within a fraction of a dB, which
        the tests verify -- the antenna does not distort the band where
        the PDN resonance lives.
        """
        f = np.asarray(frequencies_hz, dtype=float)
        x = f / self.self_resonance_hz
        denom = np.sqrt((1.0 - x * x) ** 2 + (x / self.quality_factor) ** 2)
        return 1.0 / np.maximum(denom, 1e-9)
