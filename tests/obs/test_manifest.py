"""RunManifest provenance records."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    RunManifest,
    git_describe,
)


class TestCreate:
    def test_records_command_and_config(self):
        m = RunManifest.create("virus", "a72", 3, config={"pop": 8})
        assert m.command == "virus"
        assert m.platform == "a72"
        assert m.seed == 3
        assert m.config == {"pop": 8}
        assert m.created_unix > 0

    def test_git_describe_of_this_repo(self):
        # The repo under test is a git checkout, so this must resolve.
        assert git_describe() is not None

    def test_git_describe_outside_repo(self, tmp_path):
        assert git_describe(tmp_path) is None


class TestRoundTrip:
    def test_dict_round_trip(self):
        m = RunManifest.create("sweep", "a53", 0, config={"samples": 5})
        m.event_log = "events.jsonl"
        m.add_artifact("sweep.json")
        m.extra["note"] = "x"
        again = RunManifest.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()

    def test_write_and_load(self, tmp_path):
        m = RunManifest.create("virus", "amd", 7)
        m.add_artifact("a.json")
        path = m.write(tmp_path)
        assert path.name == MANIFEST_FILENAME
        assert m.elapsed_s >= 0.0
        # load accepts the directory or the file itself
        by_dir = RunManifest.load(tmp_path)
        by_file = RunManifest.load(path)
        assert by_dir.to_dict() == by_file.to_dict() == m.to_dict()

    def test_written_file_is_json(self, tmp_path):
        m = RunManifest.create("report", "a72", 0)
        path = m.write(tmp_path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["manifest_version"] == MANIFEST_VERSION

    def test_add_artifact_deduplicates(self):
        m = RunManifest.create("virus", "a72", 0)
        m.add_artifact("x.json")
        m.add_artifact("x.json")
        assert m.artifacts == ["x.json"]


class TestValidation:
    def test_rejects_unknown_version(self):
        m = RunManifest.create("virus", "a72", 0)
        data = m.to_dict()
        data["manifest_version"] = 99
        with pytest.raises(ValueError, match="version"):
            RunManifest.from_dict(data)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            RunManifest.from_dict({"seed": 1})
