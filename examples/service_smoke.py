"""Service smoke: concurrent HTTP clients vs a sequential twin.

The CI ``service-smoke`` lane's driver.  Phase one boots the real
measurement service behind its HTTP front end, occupies the worker
with a long warmup sweep, then lets N clients submit measure + sweep
jobs in a pinned global order (submissions are awaited in sequence --
the service's determinism contract is defined over submission order)
and long-poll their results concurrently.  Because the worker is busy
when the client jobs arrive, they pile up in the pending queue and
**must** coalesce into shared batches.  Phase two replays the exact
submission sequence against a twin service with the same seed, one job
at a time, waiting for each result before the next submission -- the
no-coalescing-possible baseline.

Both phases write their results as canonical JSON; the CI lane ends
with ``cmp coalesced.json sequential.json``, pinning the service's
bit-identity contract on a real TCP path.  The script also asserts a
clean shutdown: no asyncio task and no worker thread survives
``close()``.
"""

import argparse
import asyncio
import json
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platforms import registry  # noqa: E402
from repro.service import (  # noqa: E402
    HttpClient,
    MeasurementService,
    ServiceServer,
)

SEED = 2018
SAMPLES = 3
SWEEP_CLOCKS = [
    float(c)
    for c in registry.make_cluster("a53").spec.allowed_clocks_hz()[:2]
]


def job_plan(clients: int):
    """The pinned global submission order: warmup, then per-client
    measure + sweep."""
    plan = [("warmup", "sweep", {"platform": "a53"})]
    for i in range(clients):
        plan.append(
            (
                f"client{i}-measure",
                "measure",
                {"platform": "a53", "program_seed": 100 + i},
            )
        )
        plan.append(
            (
                f"client{i}-sweep",
                "sweep",
                {"platform": "a53", "clocks_hz": SWEEP_CLOCKS},
            )
        )
    return plan


async def coalesced_phase(clients: int):
    """N concurrent HTTP clients against one live service."""
    service = await MeasurementService(
        seed=SEED, samples=SAMPLES
    ).start()
    server = await ServiceServer(service, port=0).start()
    plan = job_plan(clients)
    results = {}
    try:
        submitter = HttpClient(server.host, server.port)
        assert (await submitter.healthz())["ok"]
        # Pinned submission order (determinism is defined over it);
        # the warmup sweep keeps the worker busy so the client jobs
        # queue up and coalesce.
        job_ids = {}
        for name, kind, params in plan:
            accepted = await submitter.submit(kind, params, tenant=name)
            job_ids[name] = accepted["job_id"]

        async def poll(name):
            client = HttpClient(server.host, server.port)  # own conn
            view = await client.wait(job_ids[name], timeout_s=5.0)
            assert view["status"] == "done", (name, view)
            results[name] = view["result"]

        await asyncio.gather(*(poll(name) for name, _, _ in plan))
        stats = await submitter.stats()
        counters = stats["counters"]
        assert counters["done"] == len(plan), counters
        assert counters["coalesced_jobs"] > 0, (
            f"no coalescing happened: {counters}"
        )
        assert counters["batches"] < len(plan), counters
        print(
            f"# coalesced phase: {counters['done']} jobs in "
            f"{counters['batches']} batches "
            f"({counters['coalesced_jobs']} coalesced)"
        )
    finally:
        await server.close()
        await service.close()
    return results


async def sequential_phase(clients: int):
    """Twin service, same seed, strictly one job at a time."""
    results = {}
    async with MeasurementService(seed=SEED, samples=SAMPLES) as svc:
        for name, kind, params in job_plan(clients):
            job = svc.submit(kind, params, tenant=name)
            results[name] = await job.wait()
        assert svc.counters["batches"] == len(results)
    return results


async def run_phase(phase, clients: int):
    thread_baseline = threading.active_count()
    results = await phase(clients)
    # Clean shutdown: nothing but this coroutine's task survives, and
    # the worker executor thread is gone.
    leaked = [
        t
        for t in asyncio.all_tasks()
        if t is not asyncio.current_task()
    ]
    assert not leaked, f"leaked tasks: {leaked}"
    assert threading.active_count() <= thread_baseline, (
        f"leaked threads: {threading.enumerate()}"
    )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--out", default="service-smoke")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    coalesced = asyncio.run(run_phase(coalesced_phase, args.clients))
    sequential = asyncio.run(run_phase(sequential_phase, args.clients))
    for name, payload in (
        ("coalesced", coalesced),
        ("sequential", sequential),
    ):
        (out / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    match = json.dumps(coalesced, sort_keys=True) == json.dumps(
        sequential, sort_keys=True
    )
    print(
        f"# {len(coalesced)} jobs x 2 phases -> {out}/ "
        f"(bit-identical: {match})"
    )
    return 0 if match else 1


if __name__ == "__main__":
    raise SystemExit(main())
