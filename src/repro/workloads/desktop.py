"""Desktop/Windows workloads for the AMD evaluation (Fig. 18).

Blender and Cinebench (CPU render), Euler3D (CFD), WebXPRT (browser
mimics) and GeekBench (mixed common workloads) modeled as synthetic
instruction-mix loops on the x86 pool, same approach as the SPEC suite.
"""

from __future__ import annotations

from typing import List

from repro.cpu.isa import InstructionClass, InstructionSet
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import BenchmarkProfile, build_profile_program

_C = InstructionClass

DESKTOP_PROFILES = (
    BenchmarkProfile(
        "blender",
        {_C.FLOAT: 0.40, _C.SIMD: 0.22, _C.INT_SHORT: 0.18,
         _C.INT_SHORT_MEM: 0.16, _C.BRANCH: 0.04},
        loop_length=260,
        seed_salt=31,
    ),
    BenchmarkProfile(
        "cinebench",
        {_C.FLOAT: 0.44, _C.SIMD: 0.20, _C.INT_SHORT: 0.16,
         _C.INT_SHORT_MEM: 0.16, _C.BRANCH: 0.04},
        loop_length=240,
        seed_salt=32,
    ),
    BenchmarkProfile(
        "euler3d",
        {_C.FLOAT: 0.48, _C.SIMD: 0.10, _C.INT_SHORT: 0.12,
         _C.INT_SHORT_MEM: 0.26, _C.BRANCH: 0.04},
        loop_length=280,
        seed_salt=33,
    ),
    BenchmarkProfile(
        "webxprt",
        {_C.INT_SHORT: 0.46, _C.INT_LONG: 0.04, _C.BRANCH: 0.22,
         _C.INT_SHORT_MEM: 0.24, _C.FLOAT: 0.04},
        loop_length=300,
        seed_salt=34,
    ),
    BenchmarkProfile(
        "geekbench",
        {_C.INT_SHORT: 0.30, _C.INT_LONG: 0.06, _C.FLOAT: 0.20,
         _C.SIMD: 0.14, _C.INT_SHORT_MEM: 0.24, _C.BRANCH: 0.06},
        loop_length=260,
        seed_salt=35,
    ),
)


def desktop_suite(isa: InstructionSet, seed: int = 2014) -> List[
    ProgramWorkload
]:
    """All desktop workloads for an (x86) instruction set."""
    return [
        ProgramWorkload(
            p.name,
            build_profile_program(isa, p, seed),
            jitter_tiles=p.jitter_tiles,
            jitter_smooth_cycles=p.jitter_smooth_cycles,
            activity_compression=p.activity_compression,
        )
        for p in DESKTOP_PROFILES
    ]
