"""SPEC CPU2006-like synthetic benchmarks.

Each benchmark is a long fixed-seed instruction loop whose
instruction-class weights follow the benchmark's published character.
The loops are hundreds of instructions, so their fundamental frequency
sits in the single-MHz range and their harmonic energy is spread thin
across the spectrum -- high average power, little coherent excitation
at the PDN resonance.  That is precisely why real SPEC binaries droop
far less than dI/dt viruses (Fig. 10), and the property carries over
here without tuning.

``lbm`` -- the SPEC member the paper singles out as the worst voltage
stressor -- gets the most memory/FP-burst structure and the shortest
loop, giving it the strongest (but still untuned) resonance coupling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.isa import InstructionClass, InstructionSet
from repro.cpu.program import LoopProgram, random_instruction
from repro.workloads.base import ProgramWorkload

_C = InstructionClass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Instruction-class weights plus loop length for one benchmark."""

    name: str
    weights: Dict[InstructionClass, float]
    loop_length: int = 240
    seed_salt: int = 0
    jitter_tiles: int = 16
    jitter_smooth_cycles: int = 12
    activity_compression: float = 0.5
    grouped: bool = False


# Class weights loosely follow each benchmark's published instruction
# profile (integer vs FP vs memory heaviness).  Missing classes are
# dropped automatically for ISAs that lack them (ARM has MEM, x86 has
# the *_MEM integer forms instead).
SPEC_PROFILES: Tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile(
        "perlbench",
        {_C.INT_SHORT: 0.50, _C.INT_LONG: 0.06, _C.BRANCH: 0.18,
         _C.MEM: 0.22, _C.INT_SHORT_MEM: 0.22, _C.FLOAT: 0.04},
        seed_salt=1,
    ),
    BenchmarkProfile(
        "bzip2",
        {_C.INT_SHORT: 0.48, _C.INT_LONG: 0.08, _C.BRANCH: 0.12,
         _C.MEM: 0.28, _C.INT_SHORT_MEM: 0.28, _C.FLOAT: 0.04},
        seed_salt=2,
    ),
    BenchmarkProfile(
        "gcc",
        {_C.INT_SHORT: 0.44, _C.INT_LONG: 0.05, _C.BRANCH: 0.21,
         _C.MEM: 0.26, _C.INT_SHORT_MEM: 0.26, _C.FLOAT: 0.04},
        seed_salt=3,
    ),
    BenchmarkProfile(
        "mcf",
        {_C.INT_SHORT: 0.30, _C.INT_LONG: 0.04, _C.BRANCH: 0.16,
         _C.MEM: 0.46, _C.INT_SHORT_MEM: 0.46, _C.FLOAT: 0.04},
        loop_length=320,
        seed_salt=4,
    ),
    BenchmarkProfile(
        "milc",
        {_C.INT_SHORT: 0.16, _C.FLOAT: 0.38, _C.SIMD: 0.20,
         _C.MEM: 0.22, _C.INT_SHORT_MEM: 0.22, _C.BRANCH: 0.04},
        seed_salt=5,
    ),
    BenchmarkProfile(
        "namd",
        {_C.INT_SHORT: 0.18, _C.FLOAT: 0.48, _C.SIMD: 0.12,
         _C.MEM: 0.18, _C.INT_SHORT_MEM: 0.18, _C.BRANCH: 0.04},
        seed_salt=6,
    ),
    BenchmarkProfile(
        "gobmk",
        {_C.INT_SHORT: 0.52, _C.INT_LONG: 0.06, _C.BRANCH: 0.22,
         _C.MEM: 0.18, _C.INT_SHORT_MEM: 0.18, _C.FLOAT: 0.02},
        seed_salt=7,
    ),
    BenchmarkProfile(
        "soplex",
        {_C.INT_SHORT: 0.22, _C.FLOAT: 0.36, _C.BRANCH: 0.10,
         _C.MEM: 0.30, _C.INT_SHORT_MEM: 0.30, _C.INT_LONG: 0.02},
        seed_salt=8,
    ),
    BenchmarkProfile(
        "povray",
        {_C.INT_SHORT: 0.24, _C.FLOAT: 0.46, _C.SIMD: 0.08,
         _C.MEM: 0.16, _C.INT_SHORT_MEM: 0.16, _C.BRANCH: 0.06},
        seed_salt=9,
    ),
    BenchmarkProfile(
        "hmmer",
        {_C.INT_SHORT: 0.58, _C.INT_LONG: 0.08, _C.BRANCH: 0.08,
         _C.MEM: 0.24, _C.INT_SHORT_MEM: 0.24, _C.FLOAT: 0.02},
        seed_salt=10,
    ),
    BenchmarkProfile(
        "sjeng",
        {_C.INT_SHORT: 0.50, _C.INT_LONG: 0.07, _C.BRANCH: 0.24,
         _C.MEM: 0.17, _C.INT_SHORT_MEM: 0.17, _C.FLOAT: 0.02},
        seed_salt=11,
    ),
    BenchmarkProfile(
        "libquantum",
        {_C.INT_SHORT: 0.42, _C.INT_LONG: 0.04, _C.BRANCH: 0.10,
         _C.MEM: 0.40, _C.INT_SHORT_MEM: 0.40, _C.FLOAT: 0.04},
        seed_salt=12,
    ),
    BenchmarkProfile(
        "h264ref",
        {_C.INT_SHORT: 0.40, _C.SIMD: 0.22, _C.BRANCH: 0.10,
         _C.MEM: 0.24, _C.INT_SHORT_MEM: 0.24, _C.FLOAT: 0.04},
        seed_salt=13,
    ),
    BenchmarkProfile(
        "lbm",
        {_C.INT_SHORT: 0.10, _C.FLOAT: 0.42, _C.SIMD: 0.16,
         _C.MEM: 0.30, _C.INT_SHORT_MEM: 0.30, _C.BRANCH: 0.02},
        loop_length=120,
        seed_salt=14,
        # lbm is a regular streaming stencil sweep: each iteration is a
        # load phase, a compute phase and a store phase, its issue
        # timing is steady and its activity swing large -- making it
        # the noisiest SPEC member (as the paper observes).
        jitter_smooth_cycles=6,
        activity_compression=0.8,
        grouped=True,
    ),
    BenchmarkProfile(
        "omnetpp",
        {_C.INT_SHORT: 0.36, _C.INT_LONG: 0.04, _C.BRANCH: 0.20,
         _C.MEM: 0.36, _C.INT_SHORT_MEM: 0.36, _C.FLOAT: 0.04},
        seed_salt=15,
    ),
    BenchmarkProfile(
        "astar",
        {_C.INT_SHORT: 0.42, _C.INT_LONG: 0.05, _C.BRANCH: 0.18,
         _C.MEM: 0.31, _C.INT_SHORT_MEM: 0.31, _C.FLOAT: 0.04},
        seed_salt=16,
    ),
    BenchmarkProfile(
        "sphinx3",
        {_C.INT_SHORT: 0.24, _C.FLOAT: 0.42, _C.SIMD: 0.06,
         _C.MEM: 0.22, _C.INT_SHORT_MEM: 0.22, _C.BRANCH: 0.06},
        seed_salt=17,
    ),
    BenchmarkProfile(
        "xalancbmk",
        {_C.INT_SHORT: 0.40, _C.INT_LONG: 0.03, _C.BRANCH: 0.24,
         _C.MEM: 0.29, _C.INT_SHORT_MEM: 0.29, _C.FLOAT: 0.04},
        seed_salt=18,
    ),
)


def build_profile_program(
    isa: InstructionSet,
    profile: BenchmarkProfile,
    seed: int = 2006,
) -> LoopProgram:
    """Deterministic instruction loop following a benchmark profile."""
    rng = np.random.default_rng(seed + profile.seed_salt)
    classes = []
    weights = []
    for cls, w in profile.weights.items():
        specs = isa.by_class(cls)
        if specs and w > 0.0:
            classes.append(specs)
            weights.append(w)
    if not classes:
        raise ValueError(
            f"profile {profile.name!r} selects no classes present "
            f"in {isa.name!r}"
        )
    weights = np.asarray(weights, dtype=float)
    weights /= weights.sum()
    body = []
    for _ in range(profile.loop_length):
        specs = classes[int(rng.choice(len(classes), p=weights))]
        # Within a class, favour pipelined instructions: compiled code
        # contains divides/square-roots at percent-level frequency, not
        # uniformly with adds.
        spec_weights = np.array(
            [1.0 / s.recip_throughput for s in specs], dtype=float
        )
        spec_weights /= spec_weights.sum()
        spec = specs[int(rng.choice(len(specs), p=spec_weights))]
        body.append(random_instruction(spec, isa, rng))
    if profile.grouped:
        # Phase-structured kernels (streaming stencils) execute their
        # memory, float and SIMD work in distinct phases per iteration.
        order = {
            InstructionClass.MEM: 0,
            InstructionClass.INT_SHORT_MEM: 0,
            InstructionClass.INT_LONG_MEM: 1,
            InstructionClass.FLOAT: 2,
            InstructionClass.SIMD: 3,
            InstructionClass.INT_LONG: 4,
            InstructionClass.INT_SHORT: 5,
            InstructionClass.BRANCH: 6,
        }
        body.sort(key=lambda i: order[i.spec.iclass])
    return LoopProgram(isa=isa, body=tuple(body), name=profile.name)


def spec_workload(
    isa: InstructionSet, name: str, seed: int = 2006
) -> ProgramWorkload:
    """One named SPEC-like workload for an ISA."""
    for profile in SPEC_PROFILES:
        if profile.name == name:
            return ProgramWorkload(
                name,
                build_profile_program(isa, profile, seed),
                jitter_tiles=profile.jitter_tiles,
                jitter_smooth_cycles=profile.jitter_smooth_cycles,
                activity_compression=profile.activity_compression,
            )
    raise KeyError(
        f"unknown SPEC benchmark {name!r}; "
        f"available: {[p.name for p in SPEC_PROFILES]}"
    )


def spec_suite(
    isa: InstructionSet,
    names: Optional[List[str]] = None,
    seed: int = 2006,
) -> List[ProgramWorkload]:
    """The full (or selected) SPEC-like suite for an ISA."""
    chosen = names or [p.name for p in SPEC_PROFILES]
    return [spec_workload(isa, n, seed) for n in chosen]
