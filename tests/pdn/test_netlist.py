"""Unit tests for the Circuit container and MNA assembly."""

import numpy as np
import pytest

from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.pdn.netlist import Circuit, GROUND


def simple_divider() -> Circuit:
    c = Circuit("divider")
    c.add(VoltageSource("v1", "in", GROUND, voltage=2.0))
    c.add(Resistor("r1", "in", "mid", resistance=1.0))
    c.add(Resistor("r2", "mid", GROUND, resistance=1.0))
    return c


class TestCircuitConstruction:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", resistance=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            c.add(Resistor("r1", "b", "0", resistance=1.0))

    def test_nodes_exclude_ground(self):
        c = simple_divider()
        assert set(c.nodes) == {"in", "mid"}

    def test_element_lookup(self):
        c = simple_divider()
        assert c.element("r1").node_a == "in"
        with pytest.raises(KeyError):
            c.element("nope")

    def test_series_rlc_chain(self):
        c = Circuit()
        c.add_series_rlc(
            "cap", "top", "0", resistance=0.01, inductance=1e-9,
            capacitance=1e-6,
        )
        names = [e.name for e in c.elements]
        assert names == ["cap.r", "cap.l", "cap.c"]
        # internal nodes chain top -> cap.n1 -> cap.n2 -> 0
        assert c.element("cap.r").node_a == "top"
        assert c.element("cap.c").node_b == "0"

    def test_series_rlc_skips_zero_values(self):
        c = Circuit()
        c.add_series_rlc("t", "a", "b", resistance=1.0)
        assert [e.name for e in c.elements] == ["t.r"]

    def test_series_rlc_empty_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError, match="nonzero"):
            c.add_series_rlc("t", "a", "b")


class TestMNALayout:
    def test_layout_counts(self):
        c = simple_divider()
        c.add(Inductor("l1", "mid", GROUND, inductance=1e-9))
        layout = c.layout()
        assert layout.num_nodes == 2
        # voltage source + inductor are branch elements
        assert layout.num_branches == 2
        assert layout.size == 4

    def test_ground_index_is_negative(self):
        layout = simple_divider().layout()
        assert layout.node(GROUND) == -1

    def test_branch_indices_follow_nodes(self):
        c = simple_divider()
        layout = c.layout()
        assert layout.branch("v1") >= layout.num_nodes


class TestDCCorrectness:
    def test_voltage_divider_dc(self):
        c = simple_divider()
        layout = c.layout()
        a = c.ac_matrix(0.0, layout)
        b = c.ac_rhs(layout, {}, source_voltages=True)
        x = np.linalg.solve(a, b)
        assert x[layout.node("in")].real == pytest.approx(2.0)
        assert x[layout.node("mid")].real == pytest.approx(1.0)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", GROUND, voltage=1.0))
        c.add(Inductor("l1", "in", "out", inductance=1e-9))
        c.add(Resistor("r1", "out", GROUND, resistance=2.0))
        layout = c.layout()
        x = np.linalg.solve(
            c.ac_matrix(0.0, layout),
            c.ac_rhs(layout, {}, source_voltages=True),
        )
        assert x[layout.node("out")].real == pytest.approx(1.0)
        # branch current = 1 V / 2 ohm
        assert abs(x[layout.branch("l1")]) == pytest.approx(0.5)

    def test_current_source_injection(self):
        c = Circuit()
        c.add(Resistor("r1", "a", GROUND, resistance=4.0))
        layout = c.layout()
        x = np.linalg.solve(
            c.ac_matrix(0.0, layout), c.ac_rhs(layout, {"a": 1.0})
        )
        assert x[layout.node("a")].real == pytest.approx(4.0)


class TestACCorrectness:
    def test_capacitor_impedance(self):
        c = Circuit()
        c.add(Capacitor("c1", "a", GROUND, capacitance=1e-9))
        layout = c.layout()
        f = 1e6
        x = np.linalg.solve(
            c.ac_matrix(2 * np.pi * f, layout), c.ac_rhs(layout, {"a": 1.0})
        )
        expected = 1.0 / (2 * np.pi * f * 1e-9)
        assert abs(x[layout.node("a")]) == pytest.approx(expected, rel=1e-9)

    def test_inductor_impedance(self):
        c = Circuit()
        c.add(Inductor("l1", "a", GROUND, inductance=1e-6))
        c.add(Resistor("rshunt", "a", GROUND, resistance=1e9))
        layout = c.layout()
        f = 1e6
        x = np.linalg.solve(
            c.ac_matrix(2 * np.pi * f, layout), c.ac_rhs(layout, {"a": 1.0})
        )
        expected = 2 * np.pi * f * 1e-6
        assert abs(x[layout.node("a")]) == pytest.approx(expected, rel=1e-3)

    def test_lc_parallel_resonance_peak(self):
        """Parallel LC at 1/(2 pi sqrt(LC)) shows the impedance maximum."""
        c = Circuit()
        c.add(Inductor("l1", "a", GROUND, inductance=1e-9))
        c.add_series_rlc(
            "cb", "a", GROUND, resistance=0.01, capacitance=1e-9
        )
        layout = c.layout()
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-9))
        mags = []
        for f in (f0 / 2, f0, f0 * 2):
            x = np.linalg.solve(
                c.ac_matrix(2 * np.pi * f, layout),
                c.ac_rhs(layout, {"a": 1.0}),
            )
            mags.append(abs(x[layout.node("a")]))
        assert mags[1] > mags[0]
        assert mags[1] > mags[2]
