"""Job vocabulary of the measurement service.

A job is one client request -- ``measure``, ``sweep`` or ``virus`` --
described by a typed, JSON-round-trippable spec.  Specs are validated
at submission (platform key, operating-point overrides, band shape),
so a malformed request is rejected with :class:`BadRequest` before it
can occupy queue capacity; jobs that pass validation move through the
lifecycle ``queued -> running -> done`` (or ``failed`` / ``timeout`` /
``cancelled``).

Every service-level error carries an HTTP status so the stdlib front
end (:mod:`repro.service.http`) can map exceptions to responses
without a translation table of its own; the in-proc client surfaces
the same exceptions directly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

JOB_KINDS = ("measure", "sweep", "virus")

#: Lifecycle states (terminal: done, failed, timeout, cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, FAILED, TIMEOUT, CANCELLED)


# ---------------------------------------------------------------------------
# errors
# ---------------------------------------------------------------------------
class ServiceError(Exception):
    """Base service error; ``http_status`` maps it onto the wire."""

    http_status = 500


class BadRequest(ServiceError):
    """Malformed or unsatisfiable job spec."""

    http_status = 400


class UnknownJob(ServiceError):
    """Retrieval of a job id the service has no record of."""

    http_status = 404


class RateLimited(ServiceError):
    """The tenant's token bucket is empty: back off and retry."""

    http_status = 429

    def __init__(self, tenant: str, retry_after_s: float):
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        super().__init__(
            f"tenant {tenant!r} rate-limited; retry in "
            f"{retry_after_s:.3f} s"
        )


class QueueFull(ServiceError):
    """The pending queue is at capacity: shed load, don't buffer."""

    http_status = 429

    def __init__(self, depth: int):
        self.depth = depth
        super().__init__(
            f"pending queue full ({depth} jobs); retry later"
        )


class JobTimeout(ServiceError):
    """The job's deadline expired before a result was delivered."""

    http_status = 408


class JobCancelled(ServiceError):
    """The job was cancelled before delivering a result."""

    http_status = 409


class ServiceClosed(ServiceError):
    """Submission after shutdown began."""

    http_status = 503


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------
def _band_tuple(value: Any) -> Optional[Tuple[float, float]]:
    if value is None:
        return None
    try:
        lo, hi = float(value[0]), float(value[1])
    except (TypeError, ValueError, IndexError) as exc:
        raise BadRequest(f"band must be a (lo, hi) pair: {exc}") from exc
    if not (np.isfinite(lo) and np.isfinite(hi)):
        raise BadRequest(f"band endpoints must be finite, got {value!r}")
    if lo > hi:
        raise BadRequest(
            f"inverted band: {lo} > {hi} (need band[0] <= band[1])"
        )
    return (lo, hi)


@dataclass(frozen=True)
class MeasureSpec:
    """One EM measurement of a program on a platform.

    ``program_seed`` selects a deterministic random loop program
    (``None`` = the paper's canonical high/low probe); operating-point
    fields override the cluster's nominal state per item, exactly like
    :class:`repro.chain.OperatingPoint` -- the service never mutates
    its clusters.
    """

    platform: str
    program_seed: Optional[int] = None
    program_length: int = 8
    active_cores: Optional[int] = None
    clock_hz: Optional[float] = None
    voltage: Optional[float] = None
    powered_cores: Optional[int] = None
    band: Optional[Tuple[float, float]] = None
    samples: Optional[int] = None

    kind = "measure"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "platform": self.platform,
            "program_seed": self.program_seed,
            "program_length": self.program_length,
            "active_cores": self.active_cores,
            "clock_hz": self.clock_hz,
            "voltage": self.voltage,
            "powered_cores": self.powered_cores,
            "band": list(self.band) if self.band else None,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MeasureSpec":
        try:
            platform = data["platform"]
        except (KeyError, TypeError) as exc:
            raise BadRequest("measure spec needs a platform") from exc
        return cls(
            platform=platform,
            program_seed=data.get("program_seed"),
            program_length=int(data.get("program_length", 8)),
            active_cores=data.get("active_cores"),
            clock_hz=data.get("clock_hz"),
            voltage=data.get("voltage"),
            powered_cores=data.get("powered_cores"),
            band=_band_tuple(data.get("band")),
            samples=data.get("samples"),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A clock-modulated resonance sweep (Section 5.3's fast probe).

    ``clocks_hz`` defaults to every multiplier-reachable point of the
    platform; ``powered_cores`` models the power-gating studies as a
    per-item override (the live cluster is never gated).
    """

    platform: str
    clocks_hz: Optional[Tuple[float, ...]] = None
    active_cores: Optional[int] = None
    powered_cores: Optional[int] = None
    band: Optional[Tuple[float, float]] = None
    samples: Optional[int] = None

    kind = "sweep"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "platform": self.platform,
            "clocks_hz": (
                list(self.clocks_hz) if self.clocks_hz else None
            ),
            "active_cores": self.active_cores,
            "powered_cores": self.powered_cores,
            "band": list(self.band) if self.band else None,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        try:
            platform = data["platform"]
        except (KeyError, TypeError) as exc:
            raise BadRequest("sweep spec needs a platform") from exc
        clocks = data.get("clocks_hz")
        return cls(
            platform=platform,
            clocks_hz=(
                tuple(float(c) for c in clocks) if clocks else None
            ),
            active_cores=data.get("active_cores"),
            powered_cores=data.get("powered_cores"),
            band=_band_tuple(data.get("band")),
            samples=data.get("samples"),
        )


@dataclass(frozen=True)
class VirusSpec:
    """A GA virus-generation campaign (never coalesced: exclusive)."""

    platform: str
    generations: int = 3
    population: int = 8
    loop_length: int = 8
    mutation_rate: float = 0.03
    seed: int = 0
    resume_dir: Optional[str] = None

    kind = "virus"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "platform": self.platform,
            "generations": self.generations,
            "population": self.population,
            "loop_length": self.loop_length,
            "mutation_rate": self.mutation_rate,
            "seed": self.seed,
            "resume_dir": self.resume_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VirusSpec":
        try:
            platform = data["platform"]
        except (KeyError, TypeError) as exc:
            raise BadRequest("virus spec needs a platform") from exc
        return cls(
            platform=platform,
            generations=int(data.get("generations", 3)),
            population=int(data.get("population", 8)),
            loop_length=int(data.get("loop_length", 8)),
            mutation_rate=float(data.get("mutation_rate", 0.03)),
            seed=int(data.get("seed", 0)),
            resume_dir=data.get("resume_dir"),
        )


SPEC_TYPES = {
    "measure": MeasureSpec,
    "sweep": SweepSpec,
    "virus": VirusSpec,
}


def spec_from_params(kind: str, params: Dict[str, Any]):
    """Parse a wire-format ``(kind, params)`` pair into a typed spec."""
    try:
        spec_cls = SPEC_TYPES[kind]
    except KeyError:
        raise BadRequest(
            f"unknown job kind {kind!r} (expected one of "
            f"{', '.join(JOB_KINDS)})"
        ) from None
    if not isinstance(params, dict):
        raise BadRequest("params must be a JSON object")
    return spec_cls.from_dict(params)


# ---------------------------------------------------------------------------
# the job record
# ---------------------------------------------------------------------------
@dataclass
class Job:
    """One submitted request moving through the service lifecycle."""

    id: str
    tenant: str
    spec: Any
    seq: int
    deadline: Optional[float] = None  # service-clock absolute time
    status: str = QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    batch_id: Optional[str] = None
    cancel_requested: bool = False
    future: Optional["asyncio.Future"] = None
    #: Chronological per-job progress notes (event name + payload).
    progress: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    def note(self, event: str, **payload: Any) -> None:
        self.progress.append({"event": event, **payload})

    def view(self) -> Dict[str, Any]:
        """JSON-safe status view (the GET /v1/jobs/<id> body)."""
        view: Dict[str, Any] = {
            "job_id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "batch_id": self.batch_id,
        }
        if self.result is not None:
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        return view

    async def wait(self, timeout_s: Optional[float] = None):
        """Await the job's result payload (in-proc clients).

        Raises the job's terminal exception (:class:`JobTimeout`,
        :class:`JobCancelled`, or the wrapped failure) instead of
        returning, mirroring what an HTTP poller would read off the
        terminal status.
        """
        if self.future is None:
            raise ServiceError(f"job {self.id} has no attached future")
        return await asyncio.wait_for(
            asyncio.shield(self.future), timeout_s
        )
