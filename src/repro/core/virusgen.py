"""VirusGenerator: GA-driven dI/dt stress-test generation.

Binds the GA engine to a cluster through either the EM receive chain
(the paper's contribution) or direct voltage feedback (the validation
baseline available only on platforms with OC-DSO / Kelvin pads).  The
orchestration follows Section 3.2's workstation/target split: each
individual is compiled and launched on the target, measured from the
workstation, then killed.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple, Union

from repro.core.characterizer import EMCharacterizer, FIRST_ORDER_BAND
from repro.core.results import GARunSummary
from repro.cpu.isa import InstructionSpec
from repro.cpu.program import LoopProgram
from repro.ga.engine import (
    GACheckpoint,
    GAConfig,
    GAEngine,
    GenerationRecord,
)
from repro.ga.islands import (
    IslandCheckpoint,
    IslandConfig,
    IslandGAEngine,
)
from repro.ga.fitness import (
    ClusterFitness,
    EMAmplitudeFitness,
    FitnessEvaluation,
    MaxDroopFitness,
    PeakToPeakFitness,
)
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.probes import DifferentialProbe
from repro.obs.context import RunContext
from repro.obs.events import NULL_LOG, EventLog
from repro.platforms.base import Cluster, NoiseVisibility


class VirusGenerator:
    """Generates dI/dt viruses for a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        characterizer: Optional[EMCharacterizer] = None,
        config: GAConfig = GAConfig(),
        pool: Optional[Sequence[InstructionSpec]] = None,
        active_cores: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 5,
        retry_policy=None,
        fault_injector=None,
        island_config: Optional[IslandConfig] = None,
    ):
        self.cluster = cluster
        self.characterizer = characterizer or EMCharacterizer()
        self.config = config
        self.pool = pool
        self.active_cores = active_cores
        self.event_log = event_log if event_log is not None else NULL_LOG
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        #: Optional repro.faults resilience knobs: the policy retries
        #: transient measurement faults and checkpoint writes, the
        #: injector schedules deterministic chaos faults.
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        #: With an :class:`IslandConfig` the search is sharded across
        #: islands (see :mod:`repro.ga.islands`); ``checkpoint_path``
        #: is then interpreted as a checkpoint *directory*.
        self.island_config = island_config

    # ------------------------------------------------------------------
    def run(
        self,
        ctx: RunContext,
        band: Tuple[float, float] = FIRST_ORDER_BAND,
        samples: Optional[int] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
        resume: Optional[
            Union[GACheckpoint, IslandCheckpoint]
        ] = None,
    ) -> GARunSummary:
        """Unified entry point: EM-virus generation under ``ctx``.

        The context supplies the cluster, the GA seed, the worker count
        and the event log; the generator's :class:`GAConfig` supplies
        the remaining hyperparameters.  Returns a
        JSON-round-trippable :class:`GARunSummary`.
        """
        runner = VirusGenerator(
            cluster=ctx.cluster,
            characterizer=self.characterizer,
            config=replace(
                self.config, seed=ctx.seed, workers=ctx.workers
            ),
            pool=self.pool,
            active_cores=ctx.active_cores,
            event_log=ctx.event_log,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            retry_policy=self.retry_policy,
            fault_injector=self.fault_injector,
            island_config=self.island_config,
        )
        return runner.generate_em_virus(
            progress=progress, band=band, samples=samples, resume=resume
        )

    # ------------------------------------------------------------------
    def _run_ga(
        self,
        fitness: Callable[[LoopProgram], FitnessEvaluation],
        metric: str,
        progress: Optional[Callable[[GenerationRecord], None]],
        resume: Optional[
            Union[GACheckpoint, IslandCheckpoint]
        ] = None,
    ) -> GARunSummary:
        self.event_log.emit(
            "virus_run_start",
            cluster=self.cluster.name,
            metric=metric,
            resumed=resume is not None,
            islands=(
                self.island_config.islands
                if self.island_config is not None
                else None
            ),
        )
        if self.island_config is not None:
            result = self._run_island_ga(fitness, progress, resume)
        else:
            engine = GAEngine(
                fitness,
                config=self.config,
                pool=self.pool,
                retry_policy=self.retry_policy,
                fault_injector=self.fault_injector,
            )
            result = engine.run(
                self.cluster.spec.isa,
                progress=progress,
                event_log=self.event_log,
                checkpoint_path=self.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                resume=resume,
            )
        best = result.best
        # Re-measure the winning individual (the paper re-runs the best
        # individuals after the search to collect voltage metrics).
        # Response-only chain request: no analyzer readout, so the
        # analyzer RNG is untouched -- as the legacy cluster.run was.
        from repro.chain import ChainItem, ChainRequest

        request = ChainRequest(
            cluster=self.cluster,
            items=[
                ChainItem(
                    program=best.best_program,
                    active_cores=self.active_cores,
                )
            ],
            band=self.characterizer.band,
            want_amplitude=False,
            want_trace=False,
        )
        item = self.characterizer.chain_path().run(
            request, event_log=self.event_log
        ).items[0]
        run = item.to_cluster_run(self.cluster)
        try:
            dominant = run.response.dominant_frequency_hz(
                self.characterizer.band
            )
        except ValueError:
            dominant = 0.0
        summary = GARunSummary(
            cluster_name=self.cluster.name,
            metric=metric,
            ga_result=result,
            virus=best.best_program,
            dominant_frequency_hz=dominant,
            max_droop_v=run.max_droop,
            peak_to_peak_v=run.peak_to_peak,
            ipc=run.ipc,
            loop_frequency_hz=run.loop_frequency_hz,
            loop_period_s=run.loop_period_s,
        )
        self.event_log.emit(
            "virus_run_end",
            cluster=self.cluster.name,
            metric=metric,
            best_generation=best.generation,
            best_score=best.best.score,
            dominant_frequency_hz=dominant,
            max_droop_v=run.max_droop,
            ipc=run.ipc,
        )
        return summary

    def _run_island_ga(
        self,
        fitness: Callable[[LoopProgram], FitnessEvaluation],
        progress: Optional[Callable[[GenerationRecord], None]],
        resume: Optional[IslandCheckpoint],
    ):
        """The sharded search path: run an :class:`IslandGAEngine` and
        fold the island histories into one :class:`GAResult` for the
        champion re-measurement and summary.

        ``progress`` keeps its single-record signature by forwarding
        island 0 only (the island that carries the campaign seed);
        per-island telemetry is on the event log.
        """
        if resume is not None and not isinstance(
            resume, IslandCheckpoint
        ):
            raise ValueError(
                "an island campaign resumes from an island checkpoint "
                "directory (see repro.ga.islands.load_island_checkpoint)"
            )
        island_progress = (
            (
                lambda island, record: (
                    progress(record) if island == 0 else None
                )
            )
            if progress is not None
            else None
        )
        with IslandGAEngine(
            fitness,
            config=self.config,
            island_config=self.island_config,
            pool=self.pool,
            retry_policy=self.retry_policy,
            fault_injector=self.fault_injector,
        ) as engine:
            island_result = engine.run(
                self.cluster.spec.isa,
                progress=island_progress,
                event_log=self.event_log,
                checkpoint_dir=self.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                resume=resume,
            )
        return island_result.merged()

    # ------------------------------------------------------------------
    def narrowed_band_from_sweep(
        self,
        half_width_hz: float = 10.0e6,
        clocks_hz: Optional[Sequence[float]] = None,
        samples_per_point: int = 5,
    ) -> Tuple[float, float]:
        """Constrain the GA's measurement band around a quick sweep.

        Section 5.3(b): the 15-minute fast sweep locates the resonance,
        and the GA then only measures a narrow band around it --
        cutting per-individual spectrum-analyzer time (and hence total
        search time) by the span ratio.
        """
        from repro.core.resonance import ResonanceSweep

        sweep = ResonanceSweep(
            self.characterizer, samples_per_point=samples_per_point
        )
        result = sweep.run(
            RunContext(
                cluster=self.cluster,
                event_log=self.event_log,
                active_cores=self.active_cores,
            ),
            clocks_hz=clocks_hz,
        )
        center = result.resonance_hz()
        low, high = FIRST_ORDER_BAND
        return (
            max(center - half_width_hz, low),
            min(center + half_width_hz, high),
        )

    def generate_em_virus(
        self,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
        band: Tuple[float, float] = FIRST_ORDER_BAND,
        samples: Optional[int] = None,
        resume: Optional[
            Union[GACheckpoint, IslandCheckpoint]
        ] = None,
    ) -> GARunSummary:
        """EM-amplitude-driven virus generation: works on ANY cluster.

        This is the paper's headline capability -- no voltage
        visibility required (the Cortex-A53 case).  ``resume`` continues
        a previously checkpointed campaign (see
        :func:`repro.io.serialization.load_checkpoint`, or
        :func:`repro.ga.islands.load_island_checkpoint` when the
        generator carries an :class:`~repro.ga.islands.IslandConfig`).
        """
        fitness_fn = EMAmplitudeFitness(
            analyzer=self.characterizer.analyzer,
            radiator=self.characterizer.radiator,
            band=band,
            samples=samples or self.characterizer.samples,
            active_cores=self.active_cores,
            # Serial evaluation shares the characterizer's session, so
            # GA generations and the champion re-measurement reuse the
            # same execution and transfer-function caches.  Worker
            # dispatch drops it in pickling; each worker warms its own.
            session=self.characterizer.session,
            fault_injector=self.fault_injector,
        )
        return self._run_ga(
            ClusterFitness(fitness_fn, self.cluster),
            metric="em-amplitude",
            progress=progress,
            resume=resume,
        )

    def generate_droop_virus(
        self,
        oscilloscope: Oscilloscope,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> GARunSummary:
        """Voltage-feedback virus via the OC-DSO (a72OC-DSO baseline).

        Requires OC-DSO visibility; raises on clusters without it.
        """
        if self.cluster.spec.visibility is not NoiseVisibility.OC_DSO:
            raise ValueError(
                f"{self.cluster.name} has no OC-DSO; use generate_em_virus"
            )
        fitness_fn = MaxDroopFitness(
            oscilloscope=oscilloscope, active_cores=self.active_cores
        )
        return self._run_ga(
            ClusterFitness(fitness_fn, self.cluster),
            metric="oc-dso-droop",
            progress=progress,
        )

    def generate_oscilloscope_virus(
        self,
        probe: DifferentialProbe,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> GARunSummary:
        """Voltage-feedback virus via Kelvin pads (amdOsc baseline)."""
        if self.cluster.spec.visibility is not NoiseVisibility.KELVIN_PADS:
            raise ValueError(
                f"{self.cluster.name} has no Kelvin pads; "
                "use generate_em_virus"
            )
        fitness_fn = PeakToPeakFitness(
            probe=probe, active_cores=self.active_cores
        )
        return self._run_ga(
            ClusterFitness(fitness_fn, self.cluster),
            metric="kelvin-peak-to-peak",
            progress=progress,
        )
