"""Unit tests for the V_MIN test harness."""

import math

import pytest

from repro.cpu.program import program_from_mnemonics
from repro.stability.failure import failure_model_for
from repro.stability.vmin import VminTester
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_workload
from repro.workloads.stress import idle_workload


@pytest.fixture
def tester(a72):
    return VminTester(
        a72, failure_model_for("cortex-a72"), step_v=0.01, seed=0
    )


@pytest.fixture
def resonant_virus(a72):
    """A hand-built resonant loop standing in for a GA virus.

    20 adds against two serialized divides make an 18-cycle loop whose
    fundamental lands exactly on the 67 MHz resonance at 1.2 GHz.
    """
    program = program_from_mnemonics(
        a72.spec.isa, ["add"] * 20 + ["sdiv"] * 2, name="virus"
    )
    return ProgramWorkload("virus", program, jitter_seed=None)


class TestVminMechanics:
    def test_invalid_step_rejected(self, a72):
        with pytest.raises(ValueError):
            VminTester(a72, failure_model_for("cortex-a72"), step_v=0.0)

    def test_invalid_repeats_rejected(self, tester):
        with pytest.raises(ValueError):
            tester.run(idle_workload(), repeats=0)

    def test_descent_stops_at_system_crash(self, tester):
        result = tester.run(idle_workload(), repeats=1)
        log = result.outcomes[0]
        # last entry is the crash, everything before is not
        assert log[-1][1].name == "SYSTEM_CRASH"
        assert all(o.name != "SYSTEM_CRASH" for _, o in log[:-1])

    def test_voltage_restored_after_test(self, tester, a72):
        a72.set_voltage(1.0)
        tester.run(idle_workload(), repeats=1)
        assert a72.voltage == pytest.approx(1.0)

    def test_vmin_is_10mv_grid(self, tester):
        result = tester.run(idle_workload(), repeats=2)
        assert math.isfinite(result.vmin)
        # the descent runs on a 10 mV grid from 1.0 V
        steps = round((1.0 - result.vmin) / 0.01, 6)
        assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_margin_helper(self, tester):
        result = tester.run(idle_workload(), repeats=1)
        assert result.margin_from(1.0) == pytest.approx(1.0 - result.vmin)


class TestVminOrdering:
    """Fig. 10's structure on a slice of workloads."""

    def test_virus_has_highest_vmin(self, tester, a72, resonant_virus):
        workloads = [
            idle_workload(),
            spec_workload(a72.spec.isa, "gcc"),
            resonant_virus,
        ]
        results = tester.compare(
            workloads,
            virus_repeats=5,
            benchmark_repeats=2,
            virus_names=("virus",),
        )
        assert results["virus"].vmin > results["gcc"].vmin
        assert results["virus"].vmin > results["idle"].vmin

    def test_droop_recorded_at_nominal(self, tester, resonant_virus):
        result = tester.run(resonant_virus, repeats=1)
        assert result.max_droop_at_nominal > 0.02

    def test_virus_gets_more_repeats(self, tester, a72, resonant_virus):
        results = tester.compare(
            [idle_workload(), resonant_virus],
            virus_repeats=4,
            benchmark_repeats=2,
            virus_names=("virus",),
        )
        assert results["virus"].repeats == 4
        assert results["idle"].repeats == 2

    def test_deviation_before_crash(self, tester, resonant_virus):
        """SDC/app-crash appears at or above the crash voltage."""
        result = tester.run(resonant_virus, repeats=5)
        assert result.vmin >= result.crash_voltage
