"""Kernel timing collection."""

import time

from repro.obs.timing import (
    KernelTimings,
    collect_kernel_timings,
    kernel_section,
    timed_kernel,
)


class TestKernelTimings:
    def test_accumulates_calls_and_seconds(self):
        t = KernelTimings()
        t.add("k", 0.5)
        t.add("k", 0.25)
        t.add("other", 1.0)
        snap = t.snapshot()
        assert snap["k"]["calls"] == 2
        assert abs(snap["k"]["total_s"] - 0.75) < 1e-9
        assert snap["other"]["calls"] == 1

    def test_snapshot_sorted_and_clear(self):
        t = KernelTimings()
        t.add("b", 1.0)
        t.add("a", 1.0)
        assert list(t.snapshot()) == ["a", "b"]
        assert bool(t)
        t.clear()
        assert not t
        assert t.snapshot() == {}


class TestCollection:
    def test_sections_ignored_without_collector(self):
        with kernel_section("free"):
            pass  # must not raise, must not record anywhere

    def test_section_records_into_active_collector(self):
        with collect_kernel_timings() as timings:
            with kernel_section("work"):
                time.sleep(0.001)
        assert timings.calls["work"] == 1
        assert timings.total_s["work"] > 0.0

    def test_decorator_records_per_call(self):
        @timed_kernel("fn")
        def compute(x):
            return x * 2

        assert compute(2) == 4  # inactive: plain passthrough
        with collect_kernel_timings() as timings:
            assert compute(3) == 6
            assert compute(4) == 8
        assert timings.calls["fn"] == 2

    def test_nested_collectors_restore_previous(self):
        with collect_kernel_timings() as outer:
            with kernel_section("a"):
                pass
            with collect_kernel_timings() as inner:
                with kernel_section("b"):
                    pass
            with kernel_section("c"):
                pass
        assert set(outer.calls) == {"a", "c"}
        assert set(inner.calls) == {"b"}

    def test_explicit_collector_reused(self):
        shared = KernelTimings()
        with collect_kernel_timings(shared):
            with kernel_section("x"):
                pass
        with collect_kernel_timings(shared):
            with kernel_section("x"):
                pass
        assert shared.calls["x"] == 2

    def test_instrumented_kernels_report(self, a53):
        from repro.workloads.loops import high_low_program

        program = high_low_program(a53.spec.isa)
        with collect_kernel_timings() as timings:
            a53.run(program)
        names = set(timings.snapshot())
        assert "cpu.pipeline.execute" in names
        assert "cpu.current.trace" in names
        assert "pdn.steady_state.solve" in names
