"""The composed signal path: one batched call through every stage.

``SignalPath.em_chain(radiator, analyzer)`` builds the paper's full
measurement chain; ``run(request)`` pushes N items through it and
returns a :class:`ChainResult` with per-item artifacts, per-stage wall
times and the session cache-counter deltas.  Stage bodies are wrapped
in ``kernel_section("chain.<stage>")`` so an enclosing
:func:`repro.obs.timing.collect_kernel_timings` block -- e.g. the GA
engine's per-generation collector -- sees the chain-stage breakdown
without any extra plumbing.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.chain.session import SimulationSession
from repro.chain.stages import (
    CurrentStage,
    ExecuteStage,
    PDNStage,
    PropagateStage,
    RadiateStage,
    ReceiveStage,
    Stage,
    resolve_request,
)
from repro.chain.types import ChainRequest, ChainResult
from repro.faults.plan import NULL_INJECTOR, FaultInjector
from repro.obs.events import NULL_LOG, EventLog
from repro.obs.timing import kernel_section


class SignalPath:
    """An ordered stage composition sharing one simulation session.

    An armed :class:`repro.faults.FaultInjector` is consulted at every
    stage boundary (site ``chain.<stage>``), which is how the chaos
    suite makes measurement-chain runs fail on schedule; the default
    disarmed injector costs one attribute check per stage.
    """

    def __init__(
        self,
        stages: List[Stage],
        session: Optional[SimulationSession] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.stages = list(stages)
        self.session = session if session is not None else (
            SimulationSession()
        )
        self.injector = injector if injector is not None else NULL_INJECTOR

    @classmethod
    def em_chain(
        cls,
        radiator,
        analyzer,
        session: Optional[SimulationSession] = None,
        injector: Optional[FaultInjector] = None,
    ) -> "SignalPath":
        """The paper's chain: CPU -> PDN -> EM radiation -> analyzer."""
        return cls(
            [
                ExecuteStage(),
                CurrentStage(),
                PDNStage(),
                RadiateStage(radiator),
                PropagateStage(analyzer),
                ReceiveStage(analyzer),
            ],
            session=session,
            injector=injector,
        )

    def run(
        self, request: ChainRequest, event_log: EventLog = NULL_LOG
    ) -> ChainResult:
        """Push one batch through every stage, in request order."""
        batch = resolve_request(request, self.session)
        audit = self.session.audit
        ledger = (
            audit.chain_ledger(self, request)
            if audit is not None
            else None
        )
        before = self.session.stats.snapshot()
        stage_times = {}
        for stage in self.stages:
            self.injector.visit(f"chain.{stage.name}")
            start = time.monotonic()
            with kernel_section(f"chain.{stage.name}"):
                stage.run(batch)
            stage_times[stage.name] = round(
                time.monotonic() - start, 6
            )
            if ledger is not None:
                # Outside the timing section so audit overhead never
                # pollutes the per-stage wall times.
                ledger.after_stage(
                    stage.name, getattr(stage, "drains", ())
                )
        after = self.session.stats.snapshot()
        cache_stats = {k: after[k] - before[k] for k in after}
        result = ChainResult(
            items=[w.result for w in batch.work],
            stage_times_s=stage_times,
            cache_stats=cache_stats,
        )
        event_log.emit(
            "chain_run",
            items=len(result.items),
            want_amplitude=request.want_amplitude,
            want_trace=request.want_trace,
            stage_times_s=stage_times,
            cache_stats=cache_stats,
        )
        return result
