"""V_MIN methodology: progressive undervolting until failure (Section 5.2).

- :mod:`repro.stability.failure` -- the failure model: a workload
  deviates (SDC / application crash / system crash) once the
  instantaneous rail voltage dips below the critical voltage of the
  logic at the current clock frequency.
- :mod:`repro.stability.vmin` -- the test harness: start high, lower
  the supply in steps, run the workload, compare against the golden
  reference, record the highest voltage with any deviation.
"""

from repro.stability.failure import (
    FAILURE_PRESETS,
    CriticalVoltageModel,
    Outcome,
    failure_model_for,
)
from repro.stability.vmin import VminResult, VminTester

__all__ = [
    "Outcome",
    "CriticalVoltageModel",
    "FAILURE_PRESETS",
    "failure_model_for",
    "VminTester",
    "VminResult",
]
