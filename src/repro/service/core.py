"""The measurement service: an asyncio job front end over the chain.

:class:`MeasurementService` accepts ``measure`` / ``sweep`` / ``virus``
jobs from many concurrent clients, coalesces compatible pending
requests into single batched :class:`~repro.chain.ChainRequest` runs
(see :mod:`repro.service.coalescer`) and executes them on a
single-thread worker executor against one shared, long-lived
:class:`~repro.chain.SimulationSession` per platform -- so the event
loop stays responsive while the numeric chain runs, and every cache
(transfer-function grids, schedules, band masks) stays warm across
requests from *different* clients.

Determinism contract: jobs execute in strict submission order on one
worker, per-item RNG streams advance in item order inside a batch (the
chain's own guarantee), and coalescing only ever merges a contiguous
prefix of the queue -- so a coalesced batch is **bit-identical** to
the same jobs submitted sequentially, and any arrival interleaving of
compatible submissions yields identical per-job results.

Degradation under load is graceful and explicit: per-tenant token
buckets reject over-rate tenants (:class:`~repro.service.jobs.RateLimited`),
a bounded pending queue sheds excess jobs
(:class:`~repro.service.jobs.QueueFull`) instead of buffering without
limit, and queued jobs whose deadline lapses are timed out and
cancelled rather than silently served late.

Observability: ``service_start`` / ``service_stop`` bracket the
process, ``job_submitted`` / ``job_batched`` / ``job_done`` /
``job_rejected`` trace each job, and every chain/GA event emitted
while a batch runs is tagged with its ``batch`` id and ``jobs`` list.
Finished jobs persist a :class:`~repro.obs.manifest.RunManifest` plus
their result JSON under ``state_dir/<job_id>/``, so results remain
retrievable after the in-memory record is evicted -- through the same
``provenance`` path every CLI artifact uses.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.chain import (
    ChainItem,
    ChainRequest,
    OperatingPoint,
    SimulationSession,
)
from repro.chain.stages import resolve_request
from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import SweepPoint, SweepResult
from repro.core.results import MeasurementResult
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.events import NULL_LOG, EventLog
from repro.obs.manifest import RunManifest
from repro.platforms import registry
from repro.service.coalescer import Coalescer, CompatKey
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    BadRequest,
    Job,
    JobCancelled,
    JobTimeout,
    QueueFull,
    RateLimited,
    ServiceClosed,
    ServiceError,
    UnknownJob,
    spec_from_params,
)
from repro.service.ratelimit import TenantRateLimiter

RESULT_FILENAME = "result.json"


class _JobLog:
    """EventLog facade stamping chain/GA events with their job ids.

    Mirrors :class:`repro.ga.islands._IslandLog`: the wrapped log's
    ``emit`` is lock-protected, so stamping is safe from the worker
    thread a batch executes on.
    """

    def __init__(self, base: EventLog, batch_id: str, job_ids: List[str]):
        self.base = base
        self.batch_id = batch_id
        self.job_ids = list(job_ids)

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    def emit(self, event: str, **payload: Any) -> None:
        self.base.emit(
            event, batch=self.batch_id, jobs=self.job_ids, **payload
        )


@dataclass
class _PlatformState:
    """Long-lived per-platform state: cluster + receive chain + caches."""

    cluster: Any
    characterizer: EMCharacterizer

    @property
    def session(self) -> SimulationSession:
        return self.characterizer.session


class MeasurementService:
    """Measurement-as-a-service: async batching front end to the chain.

    One instance per process; drive it from a single asyncio event
    loop.  ``seed`` seeds each platform's analyzer RNG, so two
    services built with the same seed and fed the same submission
    sequence produce bit-identical results -- the property the
    determinism suite and the ``service-smoke`` CI lane pin.
    """

    def __init__(
        self,
        seed: int = 0,
        samples: int = 10,
        platforms: Optional[Tuple[str, ...]] = None,
        max_pending_jobs: int = 64,
        max_batch_items: int = 256,
        rate_per_s: Optional[float] = None,
        burst: float = 5.0,
        default_timeout_s: Optional[float] = None,
        max_finished_jobs: int = 4096,
        state_dir: Optional[Path] = None,
        event_log: EventLog = NULL_LOG,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.seed = seed
        self.samples = samples
        self.platforms = tuple(
            platforms if platforms is not None else registry.platform_keys()
        )
        self.default_timeout_s = default_timeout_s
        self.max_finished_jobs = max_finished_jobs
        self.state_dir = Path(state_dir) if state_dir else None
        self.event_log = event_log
        self._clock = clock
        self._coalescer = Coalescer(max_pending_jobs, max_batch_items)
        self._limiter = TenantRateLimiter(
            rate_per_s, burst=burst, clock=clock
        )
        self._states: Dict[str, _PlatformState] = {}
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._seq = 0
        self._batch_seq = 0
        self._closed = False
        self._started = False
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatch_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced_jobs": 0,
            "batches": 0,
            "done": 0,
            "failed": 0,
            "timeout": 0,
            "cancelled": 0,
            "rejected_rate_limit": 0,
            "rejected_queue_full": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MeasurementService":
        """Spin up the worker executor and the dispatcher task."""
        if self._started:
            return self
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        self._dispatch_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="repro-service-dispatch"
        )
        self.event_log.emit(
            "service_start",
            platforms=list(self.platforms),
            seed=self.seed,
            samples=self.samples,
            max_pending_jobs=self._coalescer.max_pending_jobs,
            max_batch_items=self._coalescer.max_batch_items,
            rate_per_s=self._limiter.rate_per_s,
        )
        return self

    async def close(self, drain: bool = False) -> None:
        """Stop the service.

        With ``drain`` every already-queued job finishes first; without
        it queued jobs are cancelled.  The in-flight batch (if any)
        always runs to completion -- the worker thread cannot be
        interrupted mid-chain -- and the executor is shut down cleanly,
        so no thread or task outlives this call.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            await self.join()
        else:
            for job in [e[0] for e in list(self._coalescer._pending)]:
                self._coalescer.remove(job.id)
                self._finish(job, CANCELLED, error="service shutdown")
            await self.join()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.event_log.emit("service_stop", counters=dict(self.counters))

    async def join(self) -> None:
        """Wait until the queue is empty and no batch is executing."""
        if self._dispatch_task is None:
            return
        while len(self._coalescer) or not self._idle.is_set():
            await self._idle.wait()
            if len(self._coalescer):
                # More work arrived while the last batch ran.
                await asyncio.sleep(0)

    async def __aenter__(self) -> "MeasurementService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # platform state
    # ------------------------------------------------------------------
    def _platform_state(self, key: str) -> _PlatformState:
        state = self._states.get(key)
        if state is None:
            if key not in self.platforms:
                raise BadRequest(
                    f"unknown platform {key!r} (serving: "
                    f"{', '.join(self.platforms)})"
                )
            cluster = registry.make_cluster(key)
            characterizer = EMCharacterizer(
                analyzer=SpectrumAnalyzer(
                    rng=np.random.default_rng(self.seed)
                ),
                samples=self.samples,
                session=SimulationSession(),
            )
            state = _PlatformState(
                cluster=cluster, characterizer=characterizer
            )
            self._states[key] = state
        return state

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        timeout_s: Optional[float] = None,
    ) -> Job:
        """Validate, admit and enqueue one job; returns its record.

        Raises :class:`BadRequest` (malformed spec),
        :class:`RateLimited` (tenant over budget), :class:`QueueFull`
        (pending queue at capacity) or :class:`ServiceClosed`; on
        success the job is queued, a ``job_submitted`` event is
        emitted, and the dispatcher is woken.
        """
        if self._closed:
            raise ServiceClosed("service is shutting down")
        spec = spec_from_params(kind, params)
        state = self._platform_state(spec.platform)
        items, key = self._prepare(spec, state)
        retry_after = self._limiter.try_acquire(tenant)
        if retry_after > 0.0:
            self.counters["rejected_rate_limit"] += 1
            self.event_log.emit(
                "job_rejected",
                reason="rate_limited",
                tenant=tenant,
                kind=kind,
                retry_after_s=retry_after,
            )
            raise RateLimited(tenant, retry_after)
        if self._coalescer.full:
            self.counters["rejected_queue_full"] += 1
            self.event_log.emit(
                "job_rejected",
                reason="queue_full",
                tenant=tenant,
                kind=kind,
                depth=len(self._coalescer),
            )
            raise QueueFull(len(self._coalescer))
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:06d}",
            tenant=tenant,
            spec=spec,
            seq=self._seq,
        )
        timeout = (
            timeout_s if timeout_s is not None else self.default_timeout_s
        )
        if timeout is not None:
            job.deadline = self._clock() + timeout
        loop = asyncio.get_running_loop()
        job.future = loop.create_future()
        # HTTP-submitted jobs are polled, never awaited; retrieve the
        # terminal exception so the loop doesn't log it as unconsumed.
        job.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        job._items = items  # resolved ChainItems (measure/sweep)
        self._jobs[job.id] = job
        self._coalescer.push(
            job, key, len(items) if items is not None else 1
        )
        self.counters["submitted"] += 1
        job.note("submitted", tenant=tenant)
        self.event_log.emit(
            "job_submitted",
            job_id=job.id,
            kind=job.kind,
            tenant=tenant,
            platform=spec.platform,
            items=len(items) if items is not None else 1,
            queue_depth=len(self._coalescer),
        )
        if timeout is not None:
            loop.call_later(timeout, self._wake.set)
        self._wake.set()
        return job

    def _prepare(
        self, spec, state: _PlatformState
    ) -> Tuple[Optional[List[ChainItem]], Optional[CompatKey]]:
        """Resolve a spec into chain items + compat key (validated).

        Virus jobs return ``(None, None)``: they are exclusive and
        build their generator at execution time.  Measure/sweep items
        are dry-run through :func:`repro.chain.stages.resolve_request`
        so an invalid operating point rejects the *submission* instead
        of failing the whole coalesced batch later.
        """
        if spec.kind == "virus":
            if spec.generations < 1 or spec.population < 2:
                raise BadRequest(
                    "virus jobs need generations >= 1, population >= 2"
                )
            return None, None
        band = spec.band or state.characterizer.band
        samples = (
            spec.samples if spec.samples is not None else self.samples
        )
        if samples < 1:
            raise BadRequest(f"samples must be >= 1, got {samples}")
        items = self._chain_items(spec, state)
        try:
            resolve_request(
                ChainRequest(
                    cluster=state.cluster,
                    items=items,
                    band=band,
                    samples=samples,
                ),
                state.session,
            )
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        key = CompatKey(
            platform=spec.platform,
            state_version=state.cluster.state_version,
            analyzer_key=state.characterizer.analyzer._settings_key(),
            band=tuple(band),
            samples=samples,
        )
        return items, key

    def _chain_items(
        self, spec, state: _PlatformState
    ) -> List[ChainItem]:
        from repro.workloads.loops import high_low_program

        isa = state.cluster.spec.isa
        if spec.kind == "measure":
            if spec.program_seed is None:
                program = high_low_program(isa)
            else:
                from repro.cpu.program import random_program

                program = random_program(
                    isa,
                    spec.program_length,
                    np.random.default_rng(spec.program_seed),
                )
            return [
                ChainItem(
                    program=program,
                    operating_point=OperatingPoint(
                        clock_hz=spec.clock_hz,
                        voltage=spec.voltage,
                        powered_cores=spec.powered_cores,
                    ),
                    active_cores=spec.active_cores,
                )
            ]
        # sweep
        clocks = (
            list(spec.clocks_hz)
            if spec.clocks_hz
            else list(state.cluster.spec.allowed_clocks_hz())
        )
        program = high_low_program(isa)
        return [
            ChainItem(
                program=program,
                operating_point=OperatingPoint(
                    clock_hz=clock, powered_cores=spec.powered_cores
                ),
                active_cores=spec.active_cores,
            )
            for clock in clocks
        ]

    # ------------------------------------------------------------------
    # retrieval / cancellation
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The live in-memory record; raises :class:`UnknownJob`."""
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(self._unknown_message(job_id))
        return job

    def job_view(self, job_id: str) -> Dict[str, Any]:
        """Status/result view, falling back to the persisted manifest.

        A job evicted from memory is rehydrated from
        ``state_dir/<job_id>/`` (manifest + result JSON) -- the
        after-the-fact retrieval path.  Unknown ids fail with a clear
        one-line error naming the id and, when persistence is on, the
        path that was checked.
        """
        job = self._jobs.get(job_id)
        if job is not None:
            return job.view()
        if self.state_dir is not None:
            job_dir = self.state_dir / job_id
            manifest_path = job_dir / "run_manifest.json"
            if manifest_path.exists():
                manifest = RunManifest.load(job_dir)
                view = {
                    "job_id": job_id,
                    "tenant": manifest.extra.get("tenant", "default"),
                    "kind": manifest.command.removeprefix("service-"),
                    "status": manifest.extra.get("status", DONE),
                    "spec": manifest.config,
                    "batch_id": manifest.extra.get("batch_id"),
                    "from_manifest": True,
                }
                result_path = job_dir / RESULT_FILENAME
                if result_path.exists():
                    view["result"] = json.loads(
                        result_path.read_text(encoding="utf-8")
                    )
                return view
        raise UnknownJob(self._unknown_message(job_id))

    def _unknown_message(self, job_id: str) -> str:
        if self.state_dir is not None:
            return (
                f"unknown job {job_id!r}: not in memory and no "
                f"manifest at {self.state_dir / job_id}"
            )
        return f"unknown job {job_id!r}"

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued jobs leave the queue immediately; a
        running job finishes its batch but its result is discarded."""
        job = self.get(job_id)
        if job.finished:
            return job
        if self._coalescer.remove(job_id) is not None:
            self._finish(job, CANCELLED, error="cancelled by client")
        else:
            job.cancel_requested = True
            job.note("cancel_requested")
        return job

    def stats(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "queue_depth": len(self._coalescer),
            "jobs_in_memory": len(self._jobs),
            "platforms_active": sorted(self._states),
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                self._expire_queued()
                batch = self._coalescer.take_batch()
                if not batch:
                    break
                self._idle.clear()
                try:
                    await self._execute_batch(batch)
                finally:
                    self._idle.set()

    def _expire_queued(self) -> None:
        now = self._clock()
        expired = [
            entry[0]
            for entry in list(self._coalescer._pending)
            if entry[0].deadline is not None
            and entry[0].deadline <= now
        ]
        for job in expired:
            self._coalescer.remove(job.id)
            self._finish(job, TIMEOUT, error="deadline expired in queue")

    async def _execute_batch(self, batch: List[Job]) -> None:
        self._batch_seq += 1
        batch_id = f"batch-{self._batch_seq:06d}"
        start = self._clock()
        for job in batch:
            job.status = RUNNING
            job.batch_id = batch_id
            job.note("batched", batch_id=batch_id, size=len(batch))
        if len(batch) > 1:
            self.counters["coalesced_jobs"] += len(batch)
        self.counters["batches"] += 1
        self.event_log.emit(
            "job_batched",
            batch_id=batch_id,
            job_ids=[j.id for j in batch],
            kinds=[j.kind for j in batch],
            platform=batch[0].spec.platform,
            coalesced=len(batch) > 1,
        )
        job_log = _JobLog(
            self.event_log, batch_id, [j.id for j in batch]
        )
        loop = asyncio.get_running_loop()
        try:
            if batch[0].kind == "virus":
                payloads = [
                    await loop.run_in_executor(
                        self._executor,
                        self._run_virus,
                        batch[0],
                        job_log,
                    )
                ]
            else:
                payloads = await loop.run_in_executor(
                    self._executor,
                    self._run_chain_batch,
                    batch,
                    job_log,
                )
        except Exception as exc:  # audit: ignore[R6]
            # Transport, not swallow: the failure becomes each job's
            # terminal error record and a job_done(status=failed)
            # event; the service itself must survive any batch.
            for job in batch:
                self._finish(
                    job,
                    FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_s=self._clock() - start,
                )
            return
        for job, payload in zip(batch, payloads):
            self._finish(
                job,
                DONE,
                result=payload,
                elapsed_s=self._clock() - start,
            )

    # ------------------------------------------------------------------
    # worker-thread bodies (numeric; no event-loop interaction)
    # ------------------------------------------------------------------
    def _run_chain_batch(
        self, batch: List[Job], job_log: _JobLog
    ) -> List[Dict[str, Any]]:
        first = batch[0].spec
        state = self._platform_state(first.platform)
        band = first.band or state.characterizer.band
        samples = (
            first.samples if first.samples is not None else self.samples
        )
        items: List[ChainItem] = []
        slices: List[Tuple[int, int]] = []
        for job in batch:
            start = len(items)
            items.extend(job._items)
            slices.append((start, len(items)))
        request = ChainRequest(
            cluster=state.cluster,
            items=items,
            band=tuple(band),
            samples=samples,
            want_amplitude=True,
            want_trace=True,
        )
        result = state.characterizer.chain_path().run(
            request, event_log=job_log
        )
        payloads = []
        for job, (lo, hi) in zip(batch, slices):
            payloads.append(
                self._payload(job.spec, state, result.items[lo:hi])
            )
        return payloads

    def _payload(
        self, spec, state: _PlatformState, item_results
    ) -> Dict[str, Any]:
        band = spec.band or state.characterizer.band
        if spec.kind == "measure":
            r = item_results[0]
            measurement = MeasurementResult(
                cluster_name=state.cluster.name,
                program_name=r.item.program.name,
                amplitude_w=r.amplitude_w,
                peak_frequency_hz=r.peak_frequency_hz,
                loop_frequency_hz=r.loop_frequency_hz,
                band_hz=tuple(band),
                frequencies_hz=r.trace.frequencies_hz,
                power_dbm=r.trace.power_dbm,
            )
            return json.loads(measurement.to_json())
        # sweep
        points = [
            SweepPoint(
                clock_hz=r.clock_hz,
                loop_frequency_hz=r.loop_frequency_hz,
                amplitude_w=r.amplitude_w,
            )
            for r in item_results
        ]
        sweep = SweepResult(
            cluster_name=state.cluster.name,
            powered_cores=item_results[0].powered_cores,
            points=points,
        )
        return json.loads(sweep.to_json())

    def _run_virus(self, job: Job, job_log: _JobLog) -> Dict[str, Any]:
        from repro.core.virusgen import VirusGenerator
        from repro.ga.engine import GAConfig

        spec = job.spec
        state = self._platform_state(spec.platform)
        resume = None
        if spec.resume_dir:
            from repro.io.serialization import load_checkpoint

            resume = load_checkpoint(spec.resume_dir, event_log=job_log)
        config = GAConfig(
            population_size=spec.population,
            generations=spec.generations,
            loop_length=spec.loop_length,
            mutation_rate=spec.mutation_rate,
            seed=spec.seed,
            workers=1,
        )
        generator = VirusGenerator(
            state.cluster,
            state.characterizer,
            config=config,
            event_log=job_log,
        )
        summary = generator.generate_em_virus(resume=resume)
        return json.loads(summary.to_json())

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _finish(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        elapsed_s: Optional[float] = None,
    ) -> None:
        if job.finished:
            return
        if status == DONE and job.cancel_requested:
            status, result, error = (
                CANCELLED,
                None,
                "cancelled while running (result discarded)",
            )
        elif status == DONE and (
            job.deadline is not None and job.deadline <= self._clock()
        ):
            status, result, error = (
                TIMEOUT,
                None,
                "deadline expired during execution (result discarded)",
            )
        job.status = status
        job.result = result
        job.error = error
        job.note("finished", status=status)
        self.counters[status] = self.counters.get(status, 0) + 1
        if job.future is not None and not job.future.done():
            if status == DONE:
                job.future.set_result(result)
            elif status == TIMEOUT:
                job.future.set_exception(JobTimeout(error))
            elif status == CANCELLED:
                job.future.set_exception(JobCancelled(error))
            else:
                job.future.set_exception(ServiceError(error))
        if status == DONE and self.state_dir is not None:
            self._persist(job)
        self.event_log.emit(
            "job_done",
            job_id=job.id,
            status=status,
            batch_id=job.batch_id,
            error=error,
            elapsed_s=(
                round(elapsed_s, 6) if elapsed_s is not None else None
            ),
        )
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.max_finished_jobs:
            evicted = self._finished_order.pop(0)
            self._jobs.pop(evicted, None)

    def _persist(self, job: Job) -> None:
        job_dir = self.state_dir / job.id
        job_dir.mkdir(parents=True, exist_ok=True)
        (job_dir / RESULT_FILENAME).write_text(
            json.dumps(job.result, indent=2, sort_keys=True),
            encoding="utf-8",
        )
        manifest = RunManifest.create(
            command=f"service-{job.kind}",
            platform=job.spec.platform,
            seed=self.seed,
            config=job.spec.to_dict(),
        )
        manifest.extra.update(
            {
                "job_id": job.id,
                "tenant": job.tenant,
                "status": job.status,
                "batch_id": job.batch_id,
            }
        )
        manifest.add_artifact(RESULT_FILENAME)
        manifest.write(job_dir)
