"""Unit tests for the current model."""

import numpy as np
import pytest

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel, loop_current_trace
from repro.cpu.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.cpu.program import program_from_mnemonics


def schedule_for(*mnemonics):
    program = program_from_mnemonics(ARM_ISA, list(mnemonics))
    return InOrderPipeline(width=2).steady_schedule(program)


class TestTraceBasics:
    def test_trace_length_equals_period(self):
        s = schedule_for(*(["add"] * 8 + ["sdiv"]))
        trace = CurrentModel().trace(s)
        assert trace.size == s.cycles

    def test_trace_above_base_current(self):
        model = CurrentModel(base_current_a=0.3, smoothing_cycles=1)
        s = schedule_for("add", "mul")
        trace = model.trace(s)
        assert (trace >= 0.3 - 1e-12).all()

    def test_mean_current_increases_with_activity(self):
        busy = schedule_for(*(["vmul"] * 8))
        quiet = schedule_for(*(["sdiv"] * 2))
        model = CurrentModel()
        assert model.mean_current(busy) > model.mean_current(quiet)

    def test_default_wrapper(self):
        s = schedule_for("add", "mul")
        assert loop_current_trace(s).shape == (s.cycles,)


class TestHighLowStructure:
    def test_hilo_loop_has_high_and_low_phases(self):
        """The Section 5.3 loop must swing current between phases."""
        s = schedule_for(*(["add"] * 8 + ["sdiv"]))
        trace = CurrentModel(smoothing_cycles=1).trace(s)
        assert trace.max() > 1.5 * trace.min()

    def test_div_shadow_is_low_current(self):
        """Cycles covered only by the div draw much less than the burst."""
        s = schedule_for(*(["add"] * 8 + ["sdiv"]))
        trace = CurrentModel(smoothing_cycles=1).trace(s)
        burst = np.sort(trace)[-2:].mean()
        shadow = np.sort(trace)[:2].mean()
        assert burst > 2.0 * shadow


class TestSmoothing:
    def test_smoothing_preserves_mean(self):
        s = schedule_for(*(["add"] * 6 + ["sdiv"]))
        rough = CurrentModel(smoothing_cycles=1).trace(s)
        smooth = CurrentModel(smoothing_cycles=4).trace(s)
        assert smooth.mean() == pytest.approx(rough.mean(), rel=1e-9)

    def test_smoothing_reduces_peak(self):
        s = schedule_for(*(["add"] * 6 + ["sdiv"]))
        rough = CurrentModel(smoothing_cycles=1).trace(s)
        smooth = CurrentModel(smoothing_cycles=4).trace(s)
        assert smooth.max() <= rough.max()

    def test_smoothing_is_circular(self):
        """Wrap-around: smoothing a constant trace changes nothing."""
        s = schedule_for(*(["add"] * 4))
        model = CurrentModel(smoothing_cycles=3)
        trace = model.trace(s)
        # constant-rate loop: all-equal trace stays all-equal
        if np.allclose(trace, trace[0]):
            assert True
        else:
            # at minimum the circular convolution keeps the same size
            assert trace.size == s.cycles


class TestEnergyAccounting:
    def test_total_charge_matches_energy_sum(self):
        """Integral of (trace - base) equals energy spent per iteration."""
        model = CurrentModel(
            base_current_a=0.2, amps_per_energy=1.0, frontend_energy=0.5,
            smoothing_cycles=1,
        )
        s = schedule_for("add", "mul", "fadd")
        trace = model.trace(s)
        charge = float(np.sum(trace - 0.2))
        expected = sum(
            i.spec.energy + 0.5 for i in s.program.body
        )
        assert charge == pytest.approx(expected, rel=1e-9)

    def test_amps_per_energy_scales_dynamic_part(self):
        s = schedule_for("add", "mul")
        lo = CurrentModel(amps_per_energy=0.5, smoothing_cycles=1).trace(s)
        hi = CurrentModel(amps_per_energy=1.0, smoothing_cycles=1).trace(s)
        base = CurrentModel().base_current_a
        assert np.allclose(hi - base, 2.0 * (lo - base), atol=1e-12)
