"""Figure 4: OC-DSO voltage waveforms for three workload classes.

Paper: the dI/dt virus causes much larger voltage noise than a regular
SPEC2006 benchmark, which in turn is noisier than idle.
"""

import numpy as np

from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_workload
from repro.workloads.stress import idle_workload

from benchmarks.conftest import print_header


def test_fig4_waveform_comparison(benchmark, juno_board, a72_em_virus):
    a72 = juno_board.a72
    a72.reset()

    def regenerate():
        runs = {
            "idle": idle_workload().run(a72),
            "spec (gcc)": spec_workload(a72.spec.isa, "gcc").run(a72),
            "dI/dt virus": ProgramWorkload(
                "virus", a72_em_virus.virus, jitter_seed=None
            ).run(a72),
        }
        captures = {
            name: juno_board.oc_dso.capture(run.response, 4e-6)
            for name, run in runs.items()
        }
        return captures

    captures = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header("Fig. 4: OC-DSO waveforms, Cortex-A72 at 1.2 GHz / 1.0 V")
    print(f"{'workload':<14} {'p2p':>10} {'max droop':>12}")
    stats = {}
    for name, cap in captures.items():
        stats[name] = (cap.peak_to_peak(), cap.max_droop())
        print(
            f"{name:<14} {stats[name][0] * 1e3:>7.1f} mV "
            f"{stats[name][1] * 1e3:>9.1f} mV"
        )
    # virus >> SPEC >> idle, as in the figure
    assert stats["dI/dt virus"][0] > 2.0 * stats["spec (gcc)"][0]
    assert stats["spec (gcc)"][0] > stats["idle"][0]
    assert stats["dI/dt virus"][1] > stats["spec (gcc)"][1] > (
        stats["idle"][1]
    )
