"""Chaos tests for the measurement chain: injected stage faults.

The load-bearing claim: a transient fault retried to success leaves the
campaign *bit-identical* to a fault-free one, because the retry wrapper
rewinds the fitness RNG state (analyzer noise and cache-miss memory
stream) before every re-attempt.
"""

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.cpu.cache import CacheModel
from repro.cpu.isa import InstructionSet
from repro.cpu.program import random_program
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TransientFault,
)
from repro.ga.fitness import ClusterFitness, EMAmplitudeFitness
from repro.ga.parallel import ParallelEvaluator
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.obs.events import EventLog, MemorySink

POLICY = RetryPolicy(max_retries=2, base_delay_s=0.0)


def _wide_isa(cluster):
    return InstructionSet(
        name="armv8-wide",
        specs=cluster.spec.isa.specs,
        registers=dict(cluster.spec.isa.registers),
        memory_slots=256,
    )


def _memory_programs(cluster, count=3, length=16):
    isa = _wide_isa(cluster)
    rng = np.random.default_rng(21)
    return [
        random_program(
            isa, length, rng, name=f"mem{i}",
            pool=(isa.spec("ldr"), isa.spec("add")),
        )
        for i in range(count)
    ]


def _fitness(cluster, injector=None):
    """A fitness whose score consumes two RNG streams per batch."""
    return ClusterFitness(
        EMAmplitudeFitness(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(2)),
            samples=3,
            cache_model=CacheModel(l1_slots=64),
            memory_rng=np.random.default_rng(3),
            fault_injector=injector,
        ),
        cluster,
    )


class TestFaultPropagation:
    def test_chain_fault_propagates_without_policy(self, a72):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site="chain.pdn", at_visit=0),))
        )
        characterizer = EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(0)),
            samples=3,
            fault_injector=injector,
        )
        programs = _memory_programs(a72, count=1)
        with pytest.raises(TransientFault) as excinfo:
            characterizer.measure(a72, programs[0])
        assert excinfo.value.site == "chain.pdn"
        assert injector.fired_at("chain.pdn")

    def test_disarmed_injector_changes_nothing(self, a72):
        programs = _memory_programs(a72)
        plain = ParallelEvaluator(_fitness(a72), workers=1)
        armed_but_empty = ParallelEvaluator(
            _fitness(a72, FaultInjector()),
            workers=1,
            retry_policy=POLICY,
        )
        scores_a = [e.score for e in plain.evaluate(programs)]
        scores_b = [e.score for e in armed_but_empty.evaluate(programs)]
        assert scores_a == scores_b


class TestBitIdenticalRetry:
    def test_retried_batches_match_fault_free_run(self, a72):
        programs = _memory_programs(a72)
        baseline = ParallelEvaluator(_fitness(a72), workers=1)
        expected = [
            [e.score for e in baseline.evaluate(programs)]
            for _ in range(3)
        ]
        # chain.current fires on the 2nd batch, *after* the execute
        # stage consumed cache-miss RNG draws -- exactly the case where
        # a naive retry would shift every later measurement.
        injector = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(site="chain.current", at_visit=1),)
            )
        )
        sink = MemorySink()
        chaotic = ParallelEvaluator(
            _fitness(a72, injector),
            workers=1,
            retry_policy=POLICY,
            event_log=EventLog([sink]),
        )
        observed = [
            [e.score for e in chaotic.evaluate(programs)]
            for _ in range(3)
        ]
        assert injector.fired_at("chain.current")
        assert observed == expected
        assert len(sink.events("fault_injected")) == 1
        assert len(sink.events("retry_attempt")) == 1

    def test_repeated_faults_within_budget_still_identical(self, a72):
        programs = _memory_programs(a72)
        baseline = ParallelEvaluator(_fitness(a72), workers=1)
        expected = [e.score for e in baseline.evaluate(programs)]
        # Two consecutive failures on the same batch: both retries of
        # the budget are spent, the third attempt succeeds.
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(site="chain.receive", at_visit=0, times=2),
                )
            )
        )
        chaotic = ParallelEvaluator(
            _fitness(a72, injector), workers=1, retry_policy=POLICY
        )
        assert [e.score for e in chaotic.evaluate(programs)] == expected

    def test_event_payloads_identify_the_fault(self, a72):
        programs = _memory_programs(a72, count=2)
        injector = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(site="chain.radiate", at_visit=0),)
            )
        )
        sink = MemorySink()
        evaluator = ParallelEvaluator(
            _fitness(a72, injector),
            workers=1,
            retry_policy=POLICY,
            event_log=EventLog([sink]),
        )
        evaluator.evaluate(programs)
        (fault,) = sink.events("fault_injected")
        assert fault["site"] == "chain.radiate"
        assert fault["kind"] == "transient"
        assert fault["scope"] == "batch"
        (retry,) = sink.events("retry_attempt")
        assert retry["site"] == "chain.radiate"
        assert retry["delay_s"] == 0.0
