"""Unit tests for the EM voltage-emergency monitor."""

import numpy as np
import pytest

from repro.core.characterizer import EMCharacterizer
from repro.core.monitor import EmergencyMonitor
from repro.cpu.program import program_from_mnemonics
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.workloads.base import ProgramWorkload
from repro.workloads.spec import spec_suite
from repro.workloads.stress import idle_workload


def make_monitor(seed=4, margin_db=12.0):
    return EmergencyMonitor(
        EMCharacterizer(
            analyzer=SpectrumAnalyzer(rng=np.random.default_rng(seed)),
            samples=4,
        ),
        margin_db=margin_db,
        samples_per_observation=4,
    )


@pytest.fixture
def resonant_virus(a72):
    program = program_from_mnemonics(
        a72.spec.isa, ["add"] * 20 + ["sdiv"] * 2, name="virus"
    )
    return ProgramWorkload("virus", program, jitter_seed=None)


class TestConfiguration:
    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            EmergencyMonitor(margin_db=0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            EmergencyMonitor(baseline_window=1)

    def test_baseline_required(self, a72):
        monitor = make_monitor()
        with pytest.raises(RuntimeError):
            monitor.baseline_dbm()


class TestDetection:
    def test_quiet_schedule_raises_no_alarm(self, a72):
        monitor = make_monitor()
        quiet = [idle_workload()] + spec_suite(
            a72.spec.isa, ["gcc", "mcf"]
        )
        monitor.calibrate_baseline(a72, quiet)
        log = monitor.watch(
            a72, spec_suite(a72.spec.isa, ["omnetpp", "xalancbmk"])
        )
        assert log.alarms() == []

    def test_virus_trips_alarm(self, a72, resonant_virus):
        monitor = make_monitor()
        monitor.calibrate_baseline(
            a72,
            [idle_workload()] + spec_suite(a72.spec.isa, ["gcc", "mcf"]),
        )
        log = monitor.watch(
            a72,
            spec_suite(a72.spec.isa, ["omnetpp"]) + [resonant_virus],
        )
        assert log.alarm_labels() == ["virus"]

    def test_alarming_samples_excluded_from_baseline(
        self, a72, resonant_virus
    ):
        """The virus must not poison the baseline: after the alarm, the
        threshold still reflects quiet workloads."""
        monitor = make_monitor()
        monitor.calibrate_baseline(
            a72,
            [idle_workload()] + spec_suite(a72.spec.isa, ["gcc", "mcf"]),
        )
        before = monitor.baseline_dbm()
        monitor.observe(a72, resonant_virus)
        after = monitor.baseline_dbm()
        assert after == pytest.approx(before, abs=1.0)

    def test_repeated_virus_keeps_alarming(self, a72, resonant_virus):
        monitor = make_monitor()
        monitor.calibrate_baseline(
            a72, [idle_workload()] + spec_suite(a72.spec.isa, ["gcc"])
        )
        log = monitor.watch(a72, [resonant_virus] * 3)
        assert len(log.alarms()) == 3

    def test_sample_fields(self, a72):
        monitor = make_monitor()
        monitor.calibrate_baseline(a72, [idle_workload()])
        sample = monitor.observe(
            a72, spec_suite(a72.spec.isa, ["gcc"])[0], index=7
        )
        assert sample.index == 7
        assert sample.label == "gcc"
        assert sample.amplitude_w > 0.0
