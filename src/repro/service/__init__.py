"""Measurement-as-a-service: the async batching front end.

Long-lived measurement infrastructure for many concurrent clients:
submit ``measure`` / ``sweep`` / ``virus`` jobs over HTTP (or
in-process), let the coalescer fold compatible requests into single
batched chain runs on shared warm-cache sessions, and read results
back -- bit-identical to sequential submission -- with provenance
manifests persisted per job.  Start one with
``python -m repro serve`` or embed :class:`MeasurementService`
directly.
"""

from repro.service.client import HttpClient, InprocClient
from repro.service.coalescer import Coalescer, CompatKey
from repro.service.core import MeasurementService
from repro.service.http import ServiceServer
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    BadRequest,
    Job,
    JobCancelled,
    JobTimeout,
    MeasureSpec,
    QueueFull,
    RateLimited,
    ServiceClosed,
    ServiceError,
    SweepSpec,
    UnknownJob,
    VirusSpec,
)
from repro.service.ratelimit import TenantRateLimiter, TokenBucket

__all__ = [
    "BadRequest",
    "CANCELLED",
    "Coalescer",
    "CompatKey",
    "DONE",
    "FAILED",
    "HttpClient",
    "InprocClient",
    "JOB_KINDS",
    "Job",
    "JobCancelled",
    "JobTimeout",
    "MeasureSpec",
    "MeasurementService",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "RateLimited",
    "ServiceClosed",
    "ServiceError",
    "ServiceServer",
    "SweepSpec",
    "TERMINAL_STATES",
    "TIMEOUT",
    "TenantRateLimiter",
    "TokenBucket",
    "UnknownJob",
    "VirusSpec",
]
