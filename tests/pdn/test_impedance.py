"""Unit tests for AC impedance analysis."""

import numpy as np
import pytest

from repro.pdn.impedance import (
    analyze_ac,
    dc_operating_point,
    describe_elements,
    input_impedance,
    total_series_resistance,
)
from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.pdn.netlist import Circuit
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


def rc_circuit() -> Circuit:
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0", voltage=1.0))
    c.add(Resistor("r1", "in", "out", resistance=10.0))
    c.add(Capacitor("c1", "out", "0", capacitance=1e-9))
    return c


class TestAnalyzeAC:
    def test_rejects_empty_frequency_grid(self):
        with pytest.raises(ValueError):
            analyze_ac(rc_circuit(), "out", [])

    def test_rejects_unknown_node(self):
        with pytest.raises(KeyError):
            analyze_ac(rc_circuit(), "bogus", [1e6])

    def test_impedance_shape_matches_grid(self):
        z = input_impedance(rc_circuit(), "out", [1e3, 1e6, 1e9])
        assert z.shape == (3,)
        assert np.iscomplexobj(z)

    def test_rc_rolloff(self):
        """|Z| of R parallel C falls with frequency."""
        z = np.abs(input_impedance(rc_circuit(), "out", [1e3, 1e7, 1e9]))
        assert z[0] > z[1] > z[2]

    def test_voltage_source_is_shorted_in_ac(self):
        """At low frequency the cap is open, so Z -> R (source shorted)."""
        z = input_impedance(rc_circuit(), "out", [1.0])
        assert abs(z[0]) == pytest.approx(10.0, rel=1e-3)

    def test_peak_frequency_banded(self):
        m = PDNModel(CORTEX_A72_PDN)
        freqs = np.linspace(10e6, 200e6, 400)
        analysis = m.impedance_analysis(freqs, 2)
        peak = analysis.peak_frequency_hz("die", (50e6, 200e6))
        assert 60e6 < peak < 75e6
        with pytest.raises(ValueError):
            analysis.peak_frequency_hz("die", (1e3, 2e3))


class TestDCOperatingPoint:
    def test_divider_operating_point(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", voltage=3.0))
        c.add(Resistor("r1", "in", "mid", resistance=1.0))
        c.add(Resistor("r2", "mid", "0", resistance=2.0))
        op = dc_operating_point(c)
        assert op["in"] == pytest.approx(3.0)
        assert op["mid"] == pytest.approx(2.0)

    def test_constant_load_drops_rail(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", voltage=1.0))
        c.add(Resistor("r1", "in", "die", resistance=0.01))
        c.add(CurrentSource("iload", "die", "0", current=2.0))
        op = dc_operating_point(c)
        assert op["die"] == pytest.approx(1.0 - 0.02)

    def test_pdn_die_sits_at_nominal_minus_ir(self):
        m = PDNModel(CORTEX_A72_PDN)
        circuit = m.build_circuit(2)
        op = dc_operating_point(circuit)
        assert op["die"] == pytest.approx(CORTEX_A72_PDN.nominal_voltage)


class TestSeriesResistance:
    def test_total_series_resistance_positive_and_small(self):
        m = PDNModel(CORTEX_A72_PDN)
        r = total_series_resistance(m.build_circuit(2), "die")
        assert 0.0 < r < 0.05  # a few milliohms


class TestDescribe:
    def test_describe_lists_all_elements(self):
        c = rc_circuit()
        text = describe_elements(c)
        assert "v1" in text and "r1" in text and "c1" in text
        assert "10 ohm" in text
