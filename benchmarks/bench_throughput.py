"""Throughput benchmark for the vectorized evaluation kernels.

Times the optimized kernels against their preserved ``*_reference``
implementations and the parallel GA against its serial baseline, then
writes the results to ``BENCH_eval_engine.json``:

* ``schedule`` -- :meth:`Pipeline.execute` vs ``execute_reference``
* ``trace`` -- :meth:`CurrentModel.trace` vs ``trace_reference``
* ``combined`` -- the full schedule+trace evaluation path (the GA's
  per-individual hot loop); target >= 5x
* ``transient`` -- :meth:`TransientSolver.run` vs ``run_reference``
* ``ga`` -- GA generation wall-clock at ``--workers`` vs serial,
  measured against a *pre-warmed* persistent worker pool: pool spawn,
  worker session warm-up and one untimed warm-up generation run first
  and are reported separately as ``ga.warmup_s`` (``ga.serial_warmup_s``
  for the serial leg), so ``ga.parallel_s`` is pure steady-state
  dispatch.  Target >= 2x at 4 workers *on a machine with >= 4 cores*
  (the JSON records the host's full ``cpu_count``, the
  scheduler-visible ``usable_cpus`` and the worker count actually
  used, so small-runner numbers are interpretable)
* ``islands`` -- 2-island ring campaign (``--workers // 2`` workers
  per island, migration every generation) vs one serial engine over
  the same total population; target >= 1.3x on >= 4 cores

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.cpu.arm import ARM_ISA
from repro.cpu.current import CurrentModel
from repro.cpu.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.cpu.program import LoopProgram, random_program
from repro.ga.engine import GAConfig, GAEngine
from repro.ga.fitness import FitnessEvaluation
from repro.pdn.elements import CurrentSource
from repro.pdn.models import CORTEX_A72_PDN, PDNModel
from repro.pdn.transient import TransientSolver


def _time(fn, repeats: int) -> float:
    """Best-of-N wall-clock for one call of ``fn``."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_pair(fast, slow, repeats: int) -> dict:
    ref_s = _time(slow, repeats)
    opt_s = _time(fast, repeats)
    return {
        "reference_s": ref_s,
        "optimized_s": opt_s,
        "speedup": ref_s / opt_s if opt_s > 0 else float("inf"),
    }


def bench_kernels(quick: bool) -> dict:
    """Schedule + trace microbenchmarks (the GA's evaluation path)."""
    rng = np.random.default_rng(7)
    programs = [
        random_program(ARM_ISA, 50, rng, name=f"bench{i}")
        for i in range(2 if quick else 8)
    ]
    pipes = [OutOfOrderPipeline(), InOrderPipeline()]
    model = CurrentModel()
    iterations = 16
    repeats = 3 if quick else 10

    def run_execute(ref: bool):
        for pipe in pipes:
            for prog in programs:
                if ref:
                    pipe.execute_reference(prog, iterations)
                else:
                    pipe.execute(prog, iterations)

    def run_trace(ref: bool):
        for sched in schedules:
            if ref:
                model.trace_reference(sched)
            else:
                model.trace(sched)

    def run_combined(ref: bool):
        for pipe in pipes:
            for prog in programs:
                if ref:
                    issue = pipe.execute_reference(prog, iterations)
                    # steady_schedule itself is cheap bookkeeping; reuse
                    # it so both paths share the extraction logic.
                    sched = pipe.steady_schedule(prog, iterations)
                    model.trace_reference(sched)
                else:
                    sched = pipe.steady_schedule(prog, iterations)
                    model.trace(sched)

    schedules = [
        pipe.steady_schedule(prog, iterations)
        for pipe in pipes
        for prog in programs
    ]
    return {
        "schedule": _bench_pair(
            lambda: run_execute(False), lambda: run_execute(True), repeats
        ),
        "trace": _bench_pair(
            lambda: run_trace(False), lambda: run_trace(True), repeats
        ),
        "combined": _bench_pair(
            lambda: run_combined(False), lambda: run_combined(True), repeats
        ),
    }


def bench_transient(quick: bool) -> dict:
    """Transient solver on the Cortex-A72 PDN with a square-wave load."""
    circuit = PDNModel(CORTEX_A72_PDN).build_circuit(powered_cores=2)
    period = 1.0 / 80e6

    def load(t: float) -> float:
        return 2.0 if (t % period) < period / 2 else 0.5

    circuit.add(CurrentSource("iload", "die", "0", current=load))
    solver = TransientSolver(circuit, dt=0.25e-9)
    duration = 100e-9 if quick else 400e-9
    repeats = 2 if quick else 5
    return _bench_pair(
        lambda: solver.run(duration),
        lambda: solver.run_reference(duration),
        repeats,
    )


class _KernelFitness:
    """Pure, picklable fitness: schedule + trace of the individual.

    Stands in for the full measurement chain so the GA benchmark
    isolates the dispatch overhead; module-level so worker processes
    can unpickle it.
    """

    def __init__(self) -> None:
        self._pipe = OutOfOrderPipeline()
        self._model = CurrentModel()

    def __call__(self, program: LoopProgram) -> FitnessEvaluation:
        sched = self._pipe.steady_schedule(program, iterations=16)
        trace = self._model.trace(sched)
        score = float(np.ptp(trace))
        return FitnessEvaluation(
            score=score,
            dominant_frequency_hz=0.0,
            max_droop_v=0.0,
            peak_to_peak_v=score,
            ipc=len(sched.program.body) / sched.cycles,
            loop_frequency_hz=0.0,
        )


def bench_ga(quick: bool, workers: int) -> dict:
    """GA generation wall-clock: serial vs ``workers`` processes.

    Each leg builds its persistent evaluator up front and runs one
    untimed warm-up generation (pool spawn + worker warm-up + first
    dispatch), so the timed region measures steady-state throughput --
    what a long campaign actually experiences -- with start-up cost
    reported as its own field.
    """
    base = dict(
        population_size=16 if quick else 32,
        generations=3 if quick else 6,
        loop_length=40,
        seed=11,
    )

    def run(n: int):
        from repro.ga.parallel import ParallelEvaluator

        fitness = _KernelFitness()
        evaluator = ParallelEvaluator(fitness, n)
        t0 = time.perf_counter()
        evaluator.warm_up()
        GAEngine(
            fitness, config=GAConfig(workers=n, **{**base, "generations": 1})
        ).run(ARM_ISA, evaluator=evaluator)
        warmup_s = time.perf_counter() - t0
        engine = GAEngine(fitness, config=GAConfig(workers=n, **base))
        t0 = time.perf_counter()
        engine.run(ARM_ISA, evaluator=evaluator)
        timed_s = time.perf_counter() - t0
        evaluator.close()
        return warmup_s, timed_s

    serial_warmup_s, serial_s = run(1)
    warmup_s, parallel_s = run(workers)
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warmup_s": warmup_s,
        "serial_warmup_s": serial_warmup_s,
        "workers": workers,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
    }


def bench_islands(quick: bool, workers: int) -> dict:
    """Island campaign wall-clock: 2-island ring vs one serial engine.

    Both legs run the same total population and generation count; the
    island leg splits it across two islands with ``workers // 2``
    workers each (ring migration every generation), so the speedup
    measures what sharding the campaign buys over serial dispatch.
    Pools are pre-warmed and one untimed campaign runs first, so the
    timed region is steady-state -- warm-up is reported separately.
    """
    from repro.ga.islands import IslandConfig, IslandGAEngine

    base = dict(
        population_size=16 if quick else 32,
        generations=3 if quick else 6,
        loop_length=40,
        seed=11,
    )
    per_island = max(1, workers // 2)

    fitness = _KernelFitness()
    t0 = time.perf_counter()
    serial = GAEngine(fitness, config=GAConfig(workers=1, **base))
    serial.run(ARM_ISA)  # untimed warm-up campaign
    serial_warmup_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial.run(ARM_ISA)
    serial_s = time.perf_counter() - t0

    engine = IslandGAEngine(
        _KernelFitness(),
        GAConfig(workers=per_island, **base),
        IslandConfig(islands=2, topology="ring", migration_interval=1),
    )
    with engine:
        t0 = time.perf_counter()
        engine.warm_up()
        engine.run(ARM_ISA)  # untimed warm-up campaign
        warmup_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.run(ARM_ISA)
        island_s = time.perf_counter() - t0

    return {
        "serial_s": serial_s,
        "island_s": island_s,
        "warmup_s": warmup_s,
        "serial_warmup_s": serial_warmup_s,
        "islands": 2,
        "workers_per_island": per_island,
        "speedup": serial_s / island_s if island_s > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes (CI smoke run)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the GA benchmark",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: <repo>/BENCH_eval_engine.json)",
    )
    args = parser.parse_args(argv)

    out = Path(
        args.out
        or Path(__file__).resolve().parent.parent / "BENCH_eval_engine.json"
    )
    affinity = getattr(os, "sched_getaffinity", None)
    report = {
        "benchmark": "eval_engine",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        # CPUs this process may actually be scheduled onto (container
        # cpusets / taskset make this smaller than the host count).
        "usable_cpus": (
            len(affinity(0)) if affinity is not None else os.cpu_count()
        ),
        "targets": {
            "combined_kernel_speedup": 5.0,
            "ga_speedup": 2.0,
            "islands_speedup": 1.3,
        },
    }
    print("benchmarking schedule/trace kernels ...", file=sys.stderr)
    report.update(bench_kernels(args.quick))
    print("benchmarking transient solver ...", file=sys.stderr)
    report["transient"] = bench_transient(args.quick)
    print(f"benchmarking GA at workers={args.workers} ...", file=sys.stderr)
    report["ga"] = bench_ga(args.quick, args.workers)
    print("benchmarking 2-island ring campaign ...", file=sys.stderr)
    report["islands"] = bench_islands(args.quick, args.workers)

    out.write_text(json.dumps(report, indent=2) + "\n")
    for key in (
        "schedule", "trace", "combined", "transient", "ga", "islands"
    ):
        entry = report[key]
        print(f"{key:>10}: {entry['speedup']:.2f}x")
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
