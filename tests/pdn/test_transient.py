"""Unit tests for the trapezoidal transient solver."""

import numpy as np
import pytest

from repro.pdn.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.pdn.netlist import Circuit
from repro.pdn.transient import TransientSolver
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


def rc_step_circuit(i_step=1.0, t_step=1e-6):
    c = Circuit("rc-step")
    c.add(Resistor("r1", "n", "0", resistance=10.0))
    c.add(Capacitor("c1", "n", "0", capacitance=1e-8))
    c.add(
        CurrentSource(
            "iload", "0", "n", current=lambda t: i_step if t >= t_step else 0.0
        )
    )
    return c


class TestTransientBasics:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            TransientSolver(rc_step_circuit(), dt=0.0)

    def test_rejects_too_short_duration(self):
        solver = TransientSolver(rc_step_circuit(), dt=1e-8)
        with pytest.raises(ValueError):
            solver.run(1e-9)

    def test_rc_charging_curve(self):
        """Current step into RC charges toward I*R with tau = RC.

        The solver starts at the DC operating point with the source at
        its t=0 value, so the step must land after t=0 to exercise the
        charging transient.
        """
        t_step = 1e-6
        c = rc_step_circuit(i_step=1.0, t_step=t_step)
        solver = TransientSolver(c, dt=1e-8)
        result = solver.run(6e-6)
        v = result.voltage("n")
        # starts discharged, ends at I * R = 10 V
        assert v[0] == pytest.approx(0.0, abs=1e-6)
        assert v[-1] == pytest.approx(10.0, rel=0.01)
        # at one time constant past the step, ~63% of final value
        idx = np.searchsorted(result.times, t_step + 1e-7)
        assert v[idx] == pytest.approx(10.0 * 0.632, rel=0.05)

    def test_record_decimation(self):
        c = rc_step_circuit()
        solver = TransientSolver(c, dt=1e-8)
        full = solver.run(1e-6, record_every=1)
        deci = solver.run(1e-6, record_every=10)
        assert deci.times.size < full.times.size
        assert deci.times.size >= full.times.size // 10


class TestPDNStepResponse:
    """Fig. 1(c): a current step rings the PDN at its resonances."""

    @pytest.fixture(scope="class")
    def step_result(self):
        m = PDNModel(CORTEX_A72_PDN)
        circuit = m.build_circuit(2)
        circuit.add(
            CurrentSource(
                "iload",
                "die",
                "0",
                current=lambda t: 2.0 if t >= 20e-9 else 0.5,
            )
        )
        solver = TransientSolver(circuit, dt=0.5e-9)
        return solver.run(800e-9)

    def test_starts_at_quiescent_point(self, step_result):
        v0 = step_result.voltage("die")[0]
        assert v0 == pytest.approx(1.0, abs=0.01)

    def test_step_causes_droop(self, step_result):
        assert step_result.min_voltage("die") < 0.995

    def test_ringing_at_first_order_resonance(self, step_result):
        """The post-step fast oscillation frequency is near 67 MHz.

        A step also excites the slower downstream tanks, so the fast
        ring is isolated by subtracting a moving-average baseline
        before locating the spectral peak.
        """
        v = step_result.voltage("die")
        t = step_result.times
        mask = (t >= 18e-9) & (t <= 140e-9)
        tt, vv = t[mask], v[mask]
        minima = [
            tt[i]
            for i in range(1, len(vv) - 1)
            if vv[i] < vv[i - 1] and vv[i] < vv[i + 1]
        ]
        assert len(minima) >= 2, "expected a visible damped ring"
        ring_freq = 1.0 / (minima[1] - minima[0])
        # damped natural frequency sits just below the |Z| peak
        assert 50e6 < ring_freq < 80e6

    def test_oscillation_decays(self, step_result):
        """Ringing is damped: late peak-to-peak below early peak-to-peak."""
        v = step_result.voltage("die")
        t = step_result.times
        early = v[(t > 20e-9) & (t < 120e-9)]
        late = v[t > 600e-9]
        assert np.ptp(late) < 0.5 * np.ptp(early)


class TestTransientVsSteadyState:
    def test_periodic_excitation_matches_steady_state_solver(self):
        """Transient settles to the steady-state solver's amplitude."""
        m = PDNModel(CORTEX_A72_PDN)
        f0 = 67e6
        # square wave load toggling at the resonance frequency
        def load(t):
            return 1.0 if (t * f0) % 1.0 < 0.5 else 0.0

        circuit = m.build_circuit(2)
        circuit.add(CurrentSource("iload", "die", "0", current=load))
        solver = TransientSolver(circuit, dt=0.25e-9)
        result = solver.run(1.5e-6)
        t = result.times
        late = result.voltage("die")[t > 1.0e-6]
        transient_p2p = float(np.ptp(late))

        n = 64
        wave = np.where(np.arange(n) < n // 2, 1.0, 0.0)
        ss = m.solver(2).solve(wave, n * f0)
        assert transient_p2p == pytest.approx(ss.peak_to_peak, rel=0.15)
