"""Typed runtime audit violations.

Every invariant the :class:`repro.audit.DeterminismTracker` enforces
raises a subclass of :class:`AuditViolation` when broken.  Violations
are *not* :class:`repro.faults.FaultError` subclasses on purpose: a
determinism violation is a bug in the simulator, never a transient
instrument condition, so the retry/quarantine machinery must not
swallow it -- it propagates straight to the caller (and is mirrored as
an ``audit_violation`` event through :mod:`repro.obs`).
"""

from __future__ import annotations

from typing import Optional


class AuditViolation(Exception):
    """A determinism invariant the tracker enforces was broken."""

    #: Short machine-readable violation kind; mirrored in the
    #: ``audit_violation`` event payload.
    kind = "audit_violation"

    def __init__(self, message: str, site: Optional[str] = None):
        super().__init__(message)
        self.site = site


class CacheShadowMismatch(AuditViolation):
    """A session cache hit differed bitwise from a fresh recompute.

    The :class:`repro.chain.SimulationSession` contract is that every
    cached value is a pure function of its key; a mismatch means either
    the key omits an input the value depends on (aliasing, missing
    ``state_version`` bump) or the entry was mutated in place.
    """

    kind = "cache_shadow_mismatch"


class RngLedgerViolation(AuditViolation):
    """A chain stage drained an RNG stream it was not entitled to.

    The batch-equivalence contract pins which stage may advance which
    stream (execute: per-item ``memory_rng``; receive: the analyzer
    RNG) and, for the receive stage, exactly how many draws one request
    performs.  Any other advancement reorders draws relative to the
    sequential legacy path and silently changes results.
    """

    kind = "rng_ledger_violation"
