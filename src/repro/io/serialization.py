"""JSON round-trips for loop programs, virus archives, GA state.

Everything the run harness persists flows through here: single
programs, whole populations, virus archives, per-generation GA history
and mid-campaign checkpoints (population + RNG state + memo cache +
history), so the on-disk formats stay versioned in one place.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.cpu.arm import ARM_ISA
from repro.faults.errors import CorruptArtifact
from repro.cpu.isa import Instruction, InstructionSet, RegisterFile
from repro.cpu.program import LoopProgram
from repro.cpu.x86 import X86_ISA
from repro.ga.templates import render_individual_source

_BASE_ISAS: Dict[str, InstructionSet] = {
    "armv8": ARM_ISA,
    "x86-64": X86_ISA,
}

FORMAT_VERSION = 1


class SerializationError(Exception):
    """Malformed or incompatible serialized data."""


def _base_isa_for(isa: InstructionSet) -> str:
    """Identify which base table an instruction set derives from."""
    for name, base in _BASE_ISAS.items():
        base_mnemonics = {s.mnemonic for s in base.specs}
        if all(s.mnemonic in base_mnemonics for s in isa.specs):
            return name
    raise SerializationError(
        f"instruction set {isa.name!r} does not derive from a known base"
    )


def program_to_dict(program: LoopProgram) -> dict:
    """Serializable representation of a loop program."""
    isa = program.isa
    return {
        "format_version": FORMAT_VERSION,
        "base_isa": _base_isa_for(isa),
        "isa_name": isa.name,
        "registers": {
            rf.value: count for rf, count in isa.registers.items()
        },
        "memory_slots": isa.memory_slots,
        "name": program.name,
        "body": [
            {
                "mnemonic": i.mnemonic,
                "dest": i.dest,
                "sources": list(i.sources),
                "address": i.address,
            }
            for i in program.body
        ],
    }


def program_from_dict(data: dict) -> LoopProgram:
    """Reconstruct a loop program from its serialized form."""
    try:
        version = data["format_version"]
        base_name = data["base_isa"]
        body_data = data["body"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"missing field: {exc}") from exc
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r}"
        )
    try:
        base = _BASE_ISAS[base_name]
    except KeyError:
        raise SerializationError(
            f"unknown base ISA {base_name!r}"
        ) from None
    registers = {
        RegisterFile(key): int(count)
        for key, count in data.get("registers", {}).items()
    } or dict(base.registers)
    isa = InstructionSet(
        name=data.get("isa_name", base.name),
        specs=base.specs,
        registers=registers,
        memory_slots=int(data.get("memory_slots", base.memory_slots)),
    )
    body = []
    for entry in body_data:
        try:
            spec = isa.spec(entry["mnemonic"])
        except KeyError as exc:
            raise SerializationError(str(exc)) from exc
        body.append(
            Instruction(
                spec=spec,
                dest=entry.get("dest"),
                sources=tuple(entry.get("sources", ())),
                address=entry.get("address"),
            )
        )
    return LoopProgram(
        isa=isa, body=tuple(body), name=data.get("name", "loaded")
    )


def save_program(
    program: LoopProgram, path: Union[str, Path]
) -> None:
    """Write a program to a JSON file."""
    Path(path).write_text(
        json.dumps(program_to_dict(program), indent=2), encoding="utf-8"
    )


def load_program(path: Union[str, Path]) -> LoopProgram:
    """Read a program back from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return program_from_dict(data)


def save_population(
    programs, path: Union[str, Path]
) -> None:
    """Persist a whole GA population (for resuming a search later).

    Section 3.1(a): the initial seed population "can be either a new
    random initial population or a population from a previous GA run".
    """
    data = {
        "format_version": FORMAT_VERSION,
        "individuals": [program_to_dict(p) for p in programs],
    }
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_population(path: Union[str, Path]):
    """Load a previously saved population."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError("unsupported population format")
    try:
        individuals = data["individuals"]
    except KeyError:
        raise SerializationError("missing individuals field") from None
    return [program_from_dict(entry) for entry in individuals]


def save_virus_archive(
    summary, directory: Union[str, Path], stem: Optional[str] = None
) -> Path:
    """Archive a GA run: program JSON, assembly text and metrics.

    Returns the path of the metadata file.  ``summary`` is a
    :class:`repro.core.results.GARunSummary`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or f"{summary.cluster_name}-{summary.metric}"

    save_program(summary.virus, directory / f"{stem}.json")
    (directory / f"{stem}.s").write_text(
        render_individual_source(summary.virus), encoding="utf-8"
    )
    # Full GA provenance (per-generation history + config), so reports
    # can be regenerated from the archive without re-running the search.
    (directory / f"{stem}.summary.json").write_text(
        summary.to_json(indent=2), encoding="utf-8"
    )
    metadata = {
        "format_version": FORMAT_VERSION,
        "cluster": summary.cluster_name,
        "metric": summary.metric,
        "generations": summary.generations,
        "dominant_frequency_hz": summary.dominant_frequency_hz,
        "max_droop_v": summary.max_droop_v,
        "peak_to_peak_v": summary.peak_to_peak_v,
        "ipc": summary.ipc,
        "loop_frequency_hz": summary.loop_frequency_hz,
        "loop_period_s": summary.loop_period_s,
        "program_file": f"{stem}.json",
        "assembly_file": f"{stem}.s",
        "summary_file": f"{stem}.summary.json",
    }
    meta_path = directory / f"{stem}.meta.json"
    meta_path.write_text(json.dumps(metadata, indent=2), encoding="utf-8")
    return meta_path


def load_virus_archive(meta_path: Union[str, Path]):
    """Load an archived virus: (program, metadata dict)."""
    meta_path = Path(meta_path)
    try:
        metadata = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    program = load_program(meta_path.parent / metadata["program_file"])
    return program, metadata


# ---------------------------------------------------------------------------
# GA state: evaluations, generation records, results, checkpoints.
# ---------------------------------------------------------------------------
def evaluation_to_dict(evaluation) -> dict:
    """Serialize a :class:`repro.ga.fitness.FitnessEvaluation`."""
    return {
        "score": evaluation.score,
        "dominant_frequency_hz": evaluation.dominant_frequency_hz,
        "max_droop_v": evaluation.max_droop_v,
        "peak_to_peak_v": evaluation.peak_to_peak_v,
        "ipc": evaluation.ipc,
        "loop_frequency_hz": evaluation.loop_frequency_hz,
    }


def evaluation_from_dict(data: dict):
    from repro.ga.fitness import FitnessEvaluation

    try:
        return FitnessEvaluation(
            score=float(data["score"]),
            dominant_frequency_hz=float(data["dominant_frequency_hz"]),
            max_droop_v=float(data["max_droop_v"]),
            peak_to_peak_v=float(data["peak_to_peak_v"]),
            ipc=float(data["ipc"]),
            loop_frequency_hz=float(data["loop_frequency_hz"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed evaluation: {exc}") from exc


def record_to_dict(record) -> dict:
    """Serialize a :class:`repro.ga.engine.GenerationRecord`."""
    return {
        "generation": record.generation,
        "mean_score": record.mean_score,
        "best": evaluation_to_dict(record.best),
        "best_program": program_to_dict(record.best_program),
    }


def record_from_dict(data: dict):
    from repro.ga.engine import GenerationRecord

    try:
        return GenerationRecord(
            generation=int(data["generation"]),
            best_program=program_from_dict(data["best_program"]),
            best=evaluation_from_dict(data["best"]),
            mean_score=float(data["mean_score"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed record: {exc}") from exc


def ga_config_to_dict(config) -> dict:
    from dataclasses import asdict

    return asdict(config)


def ga_config_from_dict(data: dict):
    from repro.ga.engine import GAConfig

    try:
        return GAConfig(**data)
    except TypeError as exc:
        raise SerializationError(f"malformed GA config: {exc}") from exc


def ga_result_to_dict(result) -> dict:
    """Serialize a :class:`repro.ga.engine.GAResult`."""
    return {
        "format_version": FORMAT_VERSION,
        "config": ga_config_to_dict(result.config),
        "history": [record_to_dict(r) for r in result.history],
        "evaluations": result.evaluations,
    }


def ga_result_from_dict(data: dict):
    from repro.ga.engine import GAResult

    try:
        return GAResult(
            config=ga_config_from_dict(data["config"]),
            history=[record_from_dict(r) for r in data["history"]],
            evaluations=int(data["evaluations"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed GA result: {exc}") from exc


def genome_to_list(genome: Tuple[Tuple, ...]) -> list:
    """JSON form of :meth:`repro.cpu.program.LoopProgram.genome`."""
    return [
        [mnemonic, dest, list(sources), address]
        for mnemonic, dest, sources, address in genome
    ]


def genome_from_list(data: list) -> Tuple[Tuple, ...]:
    try:
        return tuple(
            (
                str(mnemonic),
                None if dest is None else int(dest),
                tuple(int(s) for s in sources),
                None if address is None else int(address),
            )
            for mnemonic, dest, sources, address in data
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed genome: {exc}") from exc


def checkpoint_to_dict(checkpoint) -> dict:
    """Serialize a :class:`repro.ga.engine.GACheckpoint`."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "ga-checkpoint",
        "config": ga_config_to_dict(checkpoint.config),
        "generation": checkpoint.generation,
        "evaluations": checkpoint.evaluations,
        "rng_state": checkpoint.rng_state,
        "fitness_state": checkpoint.fitness_state,
        "population": [program_to_dict(p) for p in checkpoint.population],
        "cache": [
            [genome_to_list(genome), evaluation_to_dict(evaluation)]
            for genome, evaluation in checkpoint.cache.items()
        ],
        "history": [record_to_dict(r) for r in checkpoint.history],
    }


def checkpoint_from_dict(data: dict):
    from repro.ga.engine import GACheckpoint

    if data.get("kind") != "ga-checkpoint":
        raise SerializationError("not a GA checkpoint")
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported checkpoint version {data.get('format_version')!r}"
        )
    try:
        return GACheckpoint(
            config=ga_config_from_dict(data["config"]),
            generation=int(data["generation"]),
            population=[
                program_from_dict(p) for p in data["population"]
            ],
            rng_state=data["rng_state"],
            cache={
                genome_from_list(genome): evaluation_from_dict(ev)
                for genome, ev in data["cache"]
            },
            history=[record_from_dict(r) for r in data["history"]],
            evaluations=int(data["evaluations"]),
            fitness_state=data.get("fitness_state"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed checkpoint: {exc}") from exc


def island_meta_to_dict(config, island_config, generations: list) -> dict:
    """Serialize the ``islands.json`` meta of an island checkpoint dir.

    The meta records the distribution parameters (island count,
    topology, migration interval, derived sizes/seeds are recomputable
    from the base config) plus each island's checkpoint generation, so
    a directory is self-describing without opening the island files.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "island-checkpoint",
        "config": ga_config_to_dict(config),
        "islands": island_config.islands,
        "topology": island_config.topology,
        "migration_interval": island_config.migration_interval,
        "generations": [int(g) for g in generations],
    }


def island_meta_from_dict(data: dict):
    """Parse ``islands.json`` into ``(GAConfig, IslandConfig)``."""
    from repro.ga.islands import IslandConfig

    if data.get("kind") != "island-checkpoint":
        raise SerializationError("not an island checkpoint meta")
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported island checkpoint version "
            f"{data.get('format_version')!r}"
        )
    try:
        config = ga_config_from_dict(data["config"])
        island_config = IslandConfig(
            islands=int(data["islands"]),
            topology=str(data["topology"]),
            migration_interval=(
                None
                if data.get("migration_interval") is None
                else int(data["migration_interval"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed island checkpoint meta: {exc}"
        ) from exc
    return config, island_config


#: How many rotated generations a checkpoint keeps: ``c.json`` is the
#: newest, ``c.json.1`` the previous save, ``c.json.2`` the one before.
CHECKPOINT_ROTATIONS = 2

#: Hash algorithm recorded in the checksum footer.
CHECKSUM_ALGO = "sha256"


def checkpoint_payload(checkpoint) -> bytes:
    """The canonical (compact, single-line) checkpoint payload bytes."""
    return json.dumps(checkpoint_to_dict(checkpoint)).encode("utf-8")


def checksum_footer(payload: bytes) -> str:
    """The integrity footer line for a checkpoint ``payload``."""
    return json.dumps(
        {
            "kind": "checksum",
            "algo": CHECKSUM_ALGO,
            "digest": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        }
    )


def rotated_paths(path: Union[str, Path]) -> list:
    """Candidate checkpoint files, newest first: path, .1, .2."""
    path = Path(path)
    return [path] + [
        path.with_name(f"{path.name}.{i}")
        for i in range(1, CHECKPOINT_ROTATIONS + 1)
    ]


def _rotate(path: Path) -> None:
    """Shift existing checkpoints one slot down before a new save."""
    candidates = rotated_paths(path)
    for older, newer in zip(
        reversed(candidates), reversed(candidates[:-1])
    ):
        if newer.exists():
            os.replace(newer, older)


def save_checkpoint(
    checkpoint,
    path: Union[str, Path],
    rotate: bool = True,
    injector=None,
) -> Path:
    """Atomically write a checksummed GA checkpoint to ``path``.

    The on-disk format is two lines: the compact JSON payload and a
    checksum footer (algorithm, digest, payload byte count), which is
    how :func:`load_checkpoint` detects truncation and bit-rot.  The
    file is staged next to the target and moved into place with
    :func:`os.replace`, so a run killed mid-write leaves either the
    previous checkpoint or the new one -- never a torn file.  With
    ``rotate`` (the default) the previous saves are kept as ``.1`` /
    ``.2`` siblings, the recovery pool for a corrupted primary.

    ``injector`` arms the ``checkpoint.save`` fault site: an injected
    :class:`~repro.faults.CorruptArtifact` simulates a *silent* torn
    write (truncated bytes land at ``path`` and the save reports
    success -- the scenario checksum verification exists for); any
    other injected fault propagates before the disk is touched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = checkpoint_payload(checkpoint)
    content = payload + b"\n" + checksum_footer(payload).encode("utf-8")
    if injector is not None:
        try:
            injector.visit("checkpoint.save")
        except CorruptArtifact:
            content = content[: max(1, len(payload) // 2)]
    if rotate:
        _rotate(path)
    staging = path.with_name(path.name + ".tmp")
    staging.write_bytes(content)
    os.replace(staging, path)
    return path


def _read_verified_checkpoint(path: Path):
    """Read one checkpoint file, verifying its checksum footer.

    Raises :class:`CorruptArtifact` on truncation or digest mismatch
    and :class:`SerializationError` on malformed content.  A legacy
    file without a footer still loads, with a :class:`UserWarning`.
    """
    raw = path.read_bytes()
    head, sep, tail = raw.partition(b"\n")
    footer = None
    if sep:
        try:
            candidate = json.loads(tail.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            candidate = None
        if isinstance(candidate, dict) and (
            candidate.get("kind") == "checksum"
        ):
            footer = candidate
    if footer is not None:
        payload = head
        if footer.get("algo") != CHECKSUM_ALGO:
            raise SerializationError(
                f"unsupported checksum algo {footer.get('algo')!r}"
            )
        if len(payload) != footer.get("payload_bytes"):
            raise CorruptArtifact(
                f"checkpoint {path} truncated: expected "
                f"{footer.get('payload_bytes')} payload bytes, found "
                f"{len(payload)}",
                site="checkpoint.load",
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != footer.get("digest"):
            raise CorruptArtifact(
                f"checkpoint {path} failed checksum verification",
                site="checkpoint.load",
            )
    else:
        # Pre-checksum format: the whole file is the payload.
        payload = raw
    try:
        data = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptArtifact(
            f"checkpoint {path} is unreadable: {exc}",
            site="checkpoint.load",
        ) from exc
    if footer is None:
        # Only a *parseable* footer-less file is a legacy checkpoint;
        # torn new-format files fail the JSON parse above instead.
        warnings.warn(
            f"checkpoint {path} has no checksum footer (legacy "
            "format); integrity cannot be verified",
            UserWarning,
            stacklevel=3,
        )
    return checkpoint_from_dict(data)


def load_checkpoint(
    path: Union[str, Path], event_log=None, injector=None
):
    """Read a GA checkpoint, falling back to rotated copies.

    Verifies the checksum footer of ``path``; if the file is missing,
    truncated or corrupted, the rotated siblings (``.1`` then ``.2``)
    are tried newest-first, and a successful fallback emits a
    ``checkpoint_recovered`` event on ``event_log``.  Raises
    :class:`~repro.faults.CorruptArtifact` when no candidate survives
    verification (and :class:`FileNotFoundError` when none exists at
    all).  ``injector`` arms the ``checkpoint.load`` fault site once
    per candidate.
    """
    path = Path(path)
    candidates = [p for p in rotated_paths(path) if p.exists()]
    if not candidates:
        raise FileNotFoundError(f"no checkpoint found at {path}")
    errors = []
    for candidate in candidates:
        try:
            if injector is not None:
                injector.visit("checkpoint.load")
            checkpoint = _read_verified_checkpoint(candidate)
        except (CorruptArtifact, SerializationError, OSError) as exc:
            errors.append((candidate, exc))
            continue
        if errors and event_log is not None:
            event_log.emit(
                "checkpoint_recovered",
                path=str(path),
                recovered_from=str(candidate),
                rejected=[
                    {"path": str(p), "error": str(e)} for p, e in errors
                ],
                generation=checkpoint.generation,
            )
        return checkpoint
    detail = "; ".join(f"{p}: {e}" for p, e in errors)
    raise CorruptArtifact(
        f"no valid checkpoint among {len(candidates)} candidate(s) "
        f"for {path}: {detail}",
        site="checkpoint.load",
    )
