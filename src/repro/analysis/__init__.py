"""Analysis utilities: metrics, spectra, and paper-style tables."""

from repro.analysis.metrics import (
    dominant_frequency,
    max_droop,
    peak_to_peak,
    rms,
    voltage_margin,
)
from repro.analysis.spectra import spectral_lines, spikes_agree
from repro.analysis.report import CharacterizationReport, characterize
from repro.analysis.tables import render_virus_table, VirusRow

__all__ = [
    "max_droop",
    "peak_to_peak",
    "rms",
    "dominant_frequency",
    "voltage_margin",
    "spectral_lines",
    "spikes_agree",
    "render_virus_table",
    "VirusRow",
    "characterize",
    "CharacterizationReport",
]
