"""Unit tests for the AMD desktop model."""

import pytest

from repro.platforms.amd import make_amd_desktop
from repro.platforms.base import NoiseVisibility


class TestDesktopComposition:
    def test_spec_matches_table1(self, amd_desktop):
        spec = amd_desktop.cpu.spec
        assert spec.num_cores == 4
        assert spec.nominal_clock_hz == 3.1e9
        assert spec.nominal_voltage == 1.4
        assert spec.technology_nm == 45
        assert spec.isa.name == "x86-64"
        assert spec.visibility is NoiseVisibility.KELVIN_PADS
        assert not spec.has_scl

    def test_probe_available(self, amd_desktop):
        assert amd_desktop.probe is not None


class TestOverdrive:
    def test_overdrive_voltage_control(self, amd_desktop):
        amd_desktop.overdrive.set_cpu_voltage(1.35)
        assert amd_desktop.cpu.voltage == pytest.approx(1.35)
        amd_desktop.overdrive.reset_defaults()
        assert amd_desktop.cpu.voltage == pytest.approx(1.4)

    def test_overdrive_frequency_control(self, amd_desktop):
        amd_desktop.overdrive.set_cpu_frequency(3.0e9)
        assert amd_desktop.cpu.clock_hz == 3.0e9
        amd_desktop.overdrive.reset_defaults()

    def test_fresh_desktops_isolated(self):
        d1 = make_amd_desktop()
        d2 = make_amd_desktop()
        d1.overdrive.set_cpu_voltage(1.3)
        assert d2.cpu.voltage == pytest.approx(1.4)
