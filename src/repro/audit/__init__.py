"""Determinism audit subsystem: static lint + runtime invariant checks.

Two independent layers guard the reproducibility contract the rest of
the simulator assumes:

* **Static** -- ``python -m repro.audit lint src/`` applies the AST
  rules of :mod:`repro.audit.rules` (unseeded RNGs, wall-clock reads,
  ``id()`` cache keys, mutable defaults, missing ``state_version``
  bumps, over-broad ``except``) and exits nonzero on any unsuppressed
  finding.
* **Runtime** -- an opt-in :class:`DeterminismTracker`
  (``SimulationSession(audit=...)`` / CLI ``--audit``) shadow-recomputes
  a seeded sample of session cache hits and keeps an RNG draw ledger
  across chain stages, raising typed :class:`AuditViolation` errors and
  mirroring them as ``audit_violation`` events.
"""

from repro.audit.errors import (
    AuditViolation,
    CacheShadowMismatch,
    RngLedgerViolation,
)
from repro.audit.lint import Finding, lint_file, lint_paths, lint_source
from repro.audit.rules import RULE_IDS, RULES, Rule, render_rule_table
from repro.audit.tracker import AuditStats, DeterminismTracker, bitwise_equal

__all__ = [
    "AuditViolation",
    "CacheShadowMismatch",
    "RngLedgerViolation",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Rule",
    "RULES",
    "RULE_IDS",
    "render_rule_table",
    "AuditStats",
    "DeterminismTracker",
    "bitwise_equal",
]
