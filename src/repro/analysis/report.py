"""One-shot characterization reports.

``characterize`` runs the paper's full methodology against one cluster
-- impedance model, fast EM sweep per power-gating state, EM-driven GA
virus, V_MIN ladder against reference workloads -- and renders a
markdown report a lab would archive next to the virus binaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.core.resonance import ResonanceSweep
from repro.core.results import GARunSummary
from repro.core.virusgen import VirusGenerator
from repro.ga.engine import GAConfig
from repro.obs.context import RunContext
from repro.obs.events import NULL_LOG, EventLog, read_jsonl
from repro.obs.manifest import RunManifest
from repro.platforms.base import Cluster
from repro.stability.failure import FAILURE_PRESETS
from repro.stability.vmin import VminResult, VminTester
from repro.workloads.base import ProgramWorkload, Workload
from repro.workloads.spec import SPEC_PROFILES, spec_suite
from repro.workloads.stress import idle_workload


@dataclass
class CharacterizationReport:
    """Everything the characterization run produced."""

    cluster_name: str
    resonances_hz: Dict[int, float]
    virus: Optional[GARunSummary] = None
    vmin_results: Dict[str, VminResult] = field(default_factory=dict)
    nominal_voltage: float = 0.0
    nominal_clock_hz: float = 0.0

    def to_markdown(self) -> str:
        lines = [
            f"# PDN characterization: {self.cluster_name}",
            "",
            f"Nominal operating point: "
            f"{self.nominal_clock_hz / 1e9:.2f} GHz, "
            f"{self.nominal_voltage:g} V.",
            "",
            "## First-order resonance (fast EM sweep)",
            "",
            "| powered cores | resonance |",
            "|---|---|",
        ]
        for cores in sorted(self.resonances_hz, reverse=True):
            lines.append(
                f"| {cores} | {self.resonances_hz[cores] / 1e6:.1f} MHz |"
            )
        if self.virus is not None:
            v = self.virus
            lines += [
                "",
                "## EM-driven dI/dt virus",
                "",
                f"- dominant frequency: "
                f"{v.dominant_frequency_hz / 1e6:.1f} MHz",
                f"- max droop at nominal: {v.max_droop_v * 1e3:.1f} mV",
                f"- peak-to-peak noise: {v.peak_to_peak_v * 1e3:.1f} mV",
                f"- IPC {v.ipc:.2f}, loop frequency "
                f"{v.loop_frequency_hz / 1e6:.1f} MHz "
                f"({len(v.virus)} instructions)",
                f"- GA: {v.generations} generations, metric {v.metric}",
            ]
        if self.vmin_results:
            lines += [
                "",
                "## V_MIN ladder",
                "",
                "| workload | V_MIN | margin |",
                "|---|---|---|",
            ]
            for name, res in sorted(
                self.vmin_results.items(), key=lambda kv: kv[1].vmin
            ):
                margin = self.nominal_voltage - res.vmin
                lines.append(
                    f"| {name} | {res.vmin:.4f} V | "
                    f"{margin * 1e3:.1f} mV |"
                )
        lines.append("")
        return "\n".join(lines)


def characterize(
    cluster: Cluster,
    characterizer: Optional[EMCharacterizer] = None,
    ga_config: Optional[GAConfig] = None,
    vmin_workload_names: Sequence[str] = ("idle", "lbm", "gcc"),
    run_vmin: bool = True,
    seed: int = 0,
    event_log: Optional[EventLog] = None,
) -> CharacterizationReport:
    """Full characterization of one cluster, non-intrusively.

    V_MIN requires a calibrated failure model; for clusters without one
    (no :data:`FAILURE_PRESETS` entry) the ladder is skipped.
    ``event_log`` receives the sweep and GA telemetry of every stage.
    """
    characterizer = characterizer or EMCharacterizer()
    ga_config = ga_config or GAConfig(
        population_size=30, generations=25, loop_length=50, seed=seed
    )
    log = event_log if event_log is not None else NULL_LOG
    ctx = RunContext(cluster=cluster, seed=seed, event_log=log)
    report = CharacterizationReport(
        cluster_name=cluster.name,
        resonances_hz={},
        nominal_voltage=cluster.spec.nominal_voltage,
        nominal_clock_hz=cluster.spec.nominal_clock_hz,
    )

    sweep = ResonanceSweep(characterizer, samples_per_point=5)
    for result in sweep.power_gating_study(ctx):
        report.resonances_hz[result.powered_cores] = result.resonance_hz()

    generator = VirusGenerator(
        cluster, characterizer, config=ga_config, event_log=log
    )
    report.virus = generator.generate_em_virus()

    if run_vmin and cluster.name in FAILURE_PRESETS:
        tester = VminTester(
            cluster, FAILURE_PRESETS[cluster.name], seed=seed
        )
        workloads: List[Workload] = []
        spec_names = {p.name for p in SPEC_PROFILES}
        for name in vmin_workload_names:
            if name == "idle":
                workloads.append(idle_workload())
            elif name in spec_names:
                workloads.extend(spec_suite(cluster.spec.isa, [name]))
        workloads.append(
            ProgramWorkload(
                "em-virus", report.virus.virus, jitter_seed=None
            )
        )
        report.vmin_results = tester.compare(
            workloads,
            virus_repeats=10,
            benchmark_repeats=2,
            virus_names=("em-virus",),
        )
    return report


# ---------------------------------------------------------------------------
# Provenance-only reconstruction: no re-running, just the artifacts.
# ---------------------------------------------------------------------------
def report_from_provenance(path: Union[str, Path]) -> str:
    """Rebuild a run's report from its artifact directory alone.

    ``path`` is an artifact directory (or its ``run_manifest.json``)
    written by a CLI run.  The markdown is regenerated from the
    manifest, the JSONL event log and any archived result JSON --
    the experiment is **not** re-run, which is the point: provenance
    is sufficient to reconstruct every figure.
    """
    path = Path(path)
    base = path if path.is_dir() else path.parent
    manifest = RunManifest.load(base)
    lines = [
        f"# Run report: {manifest.command} on {manifest.platform}",
        "",
        "## Provenance",
        "",
        f"- seed: {manifest.seed}",
        f"- code version: {manifest.git or 'unknown'}",
        f"- elapsed: {manifest.elapsed_s:.1f} s",
        f"- config: `{json.dumps(manifest.config, sort_keys=True)}`",
        f"- event log: {manifest.event_log or 'none'}",
        f"- artifacts: {', '.join(manifest.artifacts) or 'none'}",
    ]

    events = []
    if manifest.event_log and (base / manifest.event_log).exists():
        events = read_jsonl(base / manifest.event_log)

    # A resumed run appends to the same log; keep the last record per
    # generation (re-evaluation from the memo cache emits it again).
    by_gen = {
        e["generation"]: e
        for e in events
        if e["event"] == "generation_end"
    }
    generations = [by_gen[g] for g in sorted(by_gen)]
    if generations:
        lines += [
            "",
            "## GA convergence (from event log)",
            "",
            "| generation | best | mean | droop | dominant |",
            "|---|---|---|---|---|",
        ]
        for e in generations:
            dominant = e.get("dominant_frequency_hz") or 0.0
            lines.append(
                f"| {e['generation']} | {e['best_score']:.3e} | "
                f"{e['mean_score']:.3e} | "
                f"{e.get('best_droop_v', 0.0) * 1e3:.1f} mV | "
                f"{dominant / 1e6:.1f} MHz |"
            )

    sweep_points = [e for e in events if e["event"] == "sweep_point"]
    if sweep_points:
        best = max(sweep_points, key=lambda e: e["amplitude_w"])
        lines += [
            "",
            "## Fast sweep (from event log)",
            "",
            f"- points: {len(sweep_points)}",
            f"- resonance: {best['loop_frequency_hz'] / 1e6:.1f} MHz",
        ]

    for artifact in manifest.artifacts:
        if artifact.endswith(".summary.json"):
            summary = GARunSummary.from_json(
                (base / artifact).read_text(encoding="utf-8")
            )
            lines += [
                "",
                "## Archived virus (from summary artifact)",
                "",
                f"- cluster: {summary.cluster_name}",
                f"- metric: {summary.metric}",
                f"- generations: {summary.generations}",
                f"- dominant frequency: "
                f"{summary.dominant_frequency_hz / 1e6:.1f} MHz",
                f"- max droop: {summary.max_droop_v * 1e3:.1f} mV",
                f"- IPC: {summary.ipc:.2f}",
            ]
    lines.append("")
    return "\n".join(lines)
