"""Unit tests for the SCPI instrument facade."""

import numpy as np
import pytest

from repro.em.radiation import EmissionSpectrum
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.instruments.visa import (
    ScpiError,
    ScpiInstrument,
    SimulatedResourceManager,
)


@pytest.fixture
def instrument():
    inst = ScpiInstrument(
        analyzer=SpectrumAnalyzer(rng=np.random.default_rng(5))
    )
    inst.present_emission(
        EmissionSpectrum(np.array([100e6]), np.array([1e-3]))
    )
    return inst


class TestScpiCommands:
    def test_idn(self, instrument):
        assert "EM-SA" in instrument.query("*IDN?")

    def test_set_and_query_span(self, instrument):
        instrument.write("FREQ:STAR 60e6")
        instrument.write("FREQ:STOP 180e6")
        assert float(instrument.query("FREQ:STAR?")) == 60e6
        assert float(instrument.query("FREQ:STOP?")) == 180e6

    def test_set_rbw(self, instrument):
        instrument.write("BAND:RES 200e3")
        assert float(instrument.query("BAND:RES?")) == 200e3

    def test_sweep_and_trace(self, instrument):
        trace = instrument.query("INIT; TRAC?")
        values = [float(x) for x in trace.split(",")]
        assert len(values) > 100

    def test_peak_marker(self, instrument):
        instrument.write("INIT")
        instrument.write("CALC:MARK:MAX")
        freq = float(instrument.query("CALC:MARK:X?"))
        level = float(instrument.query("CALC:MARK:Y?"))
        assert freq == pytest.approx(100e6, rel=0.05)
        assert level > -70.0

    def test_compound_command(self, instrument):
        freq = float(instrument.query("INIT; CALC:MARK:MAX; CALC:MARK:X?"))
        assert freq == pytest.approx(100e6, rel=0.05)


class TestScpiErrors:
    def test_unknown_command(self, instrument):
        with pytest.raises(ScpiError, match="unknown"):
            instrument.write("BOGUS:CMD")

    def test_trace_without_sweep(self):
        inst = ScpiInstrument()
        with pytest.raises(ScpiError, match="INIT"):
            inst.query("TRAC?")

    def test_marker_without_peak_search(self, instrument):
        instrument.write("INIT")
        with pytest.raises(ScpiError, match="marker"):
            instrument.query("CALC:MARK:X?")

    def test_sweep_without_dut(self):
        inst = ScpiInstrument()
        with pytest.raises(ScpiError, match="device under test"):
            inst.write("INIT")

    def test_bad_numeric_argument(self, instrument):
        with pytest.raises(ScpiError, match="numeric"):
            instrument.write("FREQ:STAR abc")


class TestResourceManager:
    def test_register_and_open(self, instrument):
        rm = SimulatedResourceManager()
        rm.register("GPIB0::18::INSTR", instrument)
        assert rm.list_resources() == ("GPIB0::18::INSTR",)
        assert rm.open_resource("GPIB0::18::INSTR") is instrument

    def test_unknown_address(self):
        rm = SimulatedResourceManager()
        with pytest.raises(ScpiError):
            rm.open_resource("GPIB0::1::INSTR")
