"""Per-tenant token-bucket rate limiting.

A :class:`TokenBucket` refills continuously at ``rate_per_s`` up to
``burst`` tokens; each submission costs one token.  The clock is
injectable (defaulting to ``time.monotonic`` -- never wall time, audit
rule R2) so tests drive the bucket deterministically with a fake
clock.  :class:`TenantRateLimiter` lazily keeps one bucket per tenant
and is a no-op when constructed with ``rate_per_s=None``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class TokenBucket:
    """Continuous-refill token bucket."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1.0:
            raise ValueError("burst must allow at least one token")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(
            self.burst, self._tokens + elapsed * self.rate_per_s
        )

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available.

        Returns ``0.0`` on success, else the seconds until the bucket
        will have refilled enough (the 429 ``retry_after_s`` hint);
        nothing is consumed on failure.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate_per_s


class TenantRateLimiter:
    """One lazily-created token bucket per tenant.

    ``rate_per_s=None`` disables limiting entirely (every check
    succeeds); tenants share nothing, so one noisy tenant cannot
    starve another's budget.
    """

    def __init__(
        self,
        rate_per_s: Optional[float],
        burst: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate_per_s is not None

    def try_acquire(self, tenant: str) -> float:
        """``0.0`` if ``tenant`` may submit now, else retry-after secs."""
        if self.rate_per_s is None:
            return 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.rate_per_s, self.burst, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket.try_acquire()
