"""Figure 2: resonant current excitation maximizes V/I oscillations.

Paper (HSPICE): pulsing I_LOAD at the first-order resonance sets off
large-magnitude V_DIE and I_DIE oscillations -- the mechanism that
makes EM power peak at the resonance.
"""

import numpy as np

from repro.pdn.models import PDNModel, CORTEX_A72_PDN

from benchmarks.conftest import print_header


def regenerate():
    """Peak-to-peak V_DIE and I_DIE vs excitation frequency."""
    model = PDNModel(CORTEX_A72_PDN)
    solver = model.solver(2)
    n = 64
    wave = np.where(np.arange(n) < n // 2, 1.5, 0.5)
    rows = []
    for f in (20e6, 40e6, 55e6, 67e6, 80e6, 100e6, 150e6):
        resp = solver.solve(wave, n * f)
        i_ac = float(np.ptp(resp.die_current))
        rows.append((f, resp.peak_to_peak, i_ac))
    return rows


def test_fig2_resonant_oscillation(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_header(
        "Fig. 2: V_DIE / I_DIE oscillation vs pulsed-load frequency (A72)"
    )
    print(f"{'f_load':>10} {'V p2p':>12} {'I_die p2p':>12}")
    for f, v_p2p, i_p2p in rows:
        print(
            f"{f / 1e6:>7.0f} MHz {v_p2p * 1e3:>9.1f} mV "
            f"{i_p2p:>9.2f} A"
        )
    by_freq = {f: (v, i) for f, v, i in rows}
    v_res, i_res = by_freq[67e6]
    # both voltage and die-current oscillations maximize at resonance
    assert v_res == max(v for _, v, _ in rows)
    assert i_res == max(i for _, _, i in rows)
    # and the amplification is strong (paper: "large-magnitude")
    assert v_res > 2.0 * by_freq[150e6][0]
    # the die current oscillation exceeds the 1 A load swing: the tank
    # circulates current (this is what radiates)
    assert i_res > 1.0
