"""Issue-schedule models for in-order and out-of-order cores.

Both models are event-driven list schedulers: every dynamic instruction
gets the earliest issue cycle consistent with

- data dependencies (register and same-address memory ordering),
- functional-unit occupancy (non-pipelined DIV/SQRT block their unit
  for their full latency -- the low-current windows viruses exploit),
- issue bandwidth (``width`` instructions per cycle), and
- program-order constraints: strict in-order issue for the A53-like
  model; a finite instruction window and ROB for the OoO model.

The scheduler runs the loop for a number of iterations and extracts the
steady-state iteration (machine state becomes periodic after a few
iterations because the hardware is deterministic); the steady schedule
is what the current model converts into a waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.isa import ExecutionUnit, Instruction, RegisterFile
from repro.cpu.program import LoopProgram
from repro.obs.timing import timed_kernel

DEFAULT_UNIT_COUNTS: Dict[ExecutionUnit, int] = {
    ExecutionUnit.ALU: 2,
    ExecutionUnit.MUL: 1,
    ExecutionUnit.DIV: 1,
    ExecutionUnit.FPU: 1,
    ExecutionUnit.FDIV: 1,
    ExecutionUnit.SIMD: 1,
    ExecutionUnit.LSU: 1,
    ExecutionUnit.BRANCH: 1,
}


@dataclass(frozen=True)
class PipelineConfig:
    """Microarchitectural resources of a core model."""

    name: str
    width: int
    unit_counts: Dict[ExecutionUnit, int]
    out_of_order: bool = False
    window: int = 1
    rob_size: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("issue width must be >= 1")
        if self.out_of_order and (self.window < 1 or self.rob_size < 1):
            raise ValueError("OoO models need window and rob_size >= 1")


@dataclass
class Schedule:
    """Steady-state issue schedule of one loop iteration.

    ``issue_offsets[i]`` is the issue cycle of body instruction ``i``
    relative to the iteration start; ``cycles`` is the iteration length
    in cycles (the loop period in cycles).
    """

    program: LoopProgram
    issue_offsets: np.ndarray
    cycles: int

    @property
    def ipc(self) -> float:
        """Average instructions per cycle over the steady iteration."""
        return len(self.program) / self.cycles

    def loop_period_s(self, clock_hz: float) -> float:
        return self.cycles / clock_hz

    def loop_frequency_hz(self, clock_hz: float) -> float:
        return clock_hz / self.cycles


class _UnitPool:
    """Tracks free times of the instances of each functional unit."""

    def __init__(self, counts: Dict[ExecutionUnit, int]):
        self._free: Dict[ExecutionUnit, List[int]] = {
            unit: [0] * max(1, n) for unit, n in counts.items()
        }
        for unit in ExecutionUnit:
            self._free.setdefault(unit, [0])

    def earliest(self, unit: ExecutionUnit) -> Tuple[int, int]:
        """(cycle, instance-index) of the first free instance."""
        times = self._free[unit]
        idx = min(range(len(times)), key=times.__getitem__)
        return times[idx], idx

    def reserve(self, unit: ExecutionUnit, idx: int, until: int) -> None:
        self._free[unit][idx] = until


class _ScoreBoard:
    """Register and memory readiness tracking across loop iterations."""

    def __init__(self) -> None:
        self._reg_ready: Dict[Tuple[RegisterFile, int], int] = {}
        self._mem_ready: Dict[int, int] = {}

    def operand_ready(self, instr: Instruction) -> int:
        t = 0
        rf = instr.spec.regfile
        for src in instr.sources:
            t = max(t, self._reg_ready.get((rf, src), 0))
        if instr.spec.touches_memory:
            t = max(t, self._mem_ready.get(instr.address, 0))
        return t

    def record(self, instr: Instruction, complete: int) -> None:
        if instr.spec.has_dest:
            self._reg_ready[(instr.spec.regfile, instr.dest)] = complete
        if instr.spec.touches_memory:
            self._mem_ready[instr.address] = complete


class Pipeline:
    """Base scheduler shared by the in-order and out-of-order models."""

    def __init__(self, config: PipelineConfig):
        self.config = config

    # ------------------------------------------------------------------
    @timed_kernel("cpu.pipeline.execute")
    def execute(
        self,
        program: LoopProgram,
        iterations: int = 16,
        cache=None,
        memory_rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Issue cycles for every dynamic instruction of ``iterations`` runs.

        Returns an int array of shape ``(iterations, len(program))``.

        ``cache`` (a :class:`repro.cpu.cache.CacheModel`) makes memory
        accesses beyond the L1-resident window miss with a randomized
        penalty drawn from ``memory_rng`` -- the timing nondeterminism
        the paper's virus template deliberately avoids.

        This is the production kernel: it consumes the packed
        per-instruction arrays from
        :meth:`repro.cpu.program.LoopProgram.static_arrays` and keeps
        all scheduler state in flat lists, so the inner loop performs no
        attribute or ``(regfile, reg)``-dict lookups.  It is
        cycle-exact against :meth:`execute_reference` (the readable
        event-driven formulation), which the golden-equivalence tests
        enforce.
        """
        if iterations < 2:
            raise ValueError("need >= 2 iterations to find a steady state")
        if cache is not None and memory_rng is None:
            raise ValueError("cache model requires a memory_rng")
        cfg = self.config
        st = program.static_arrays()
        n_body = len(program)

        # Per-run mutable state, all flat lists (no dicts in the loop).
        free: Dict[ExecutionUnit, List[int]] = {
            unit: [0] * max(1, n) for unit, n in cfg.unit_counts.items()
        }
        for unit in ExecutionUnit:
            free.setdefault(unit, [0])
        reg_ready = [0] * st.num_registers
        mem_ready = [0] * program.isa.memory_slots
        n_dyn = iterations * n_body
        issue_flat = [0] * n_dyn
        complete = [0] * n_dyn
        counts = [0] * 256  # issued-per-cycle table, extended on demand
        n_counts = len(counts)

        # One row of per-instruction statics, unpacked in a single step
        # inside the hot loop instead of seven list-index operations.
        rows = list(
            zip(
                st.sources,
                st.latency,
                st.recip,
                st.touches_memory,
                st.address,
                st.dest,
                [free[u] for u in st.units],
            )
        )
        width = cfg.width
        ooo = cfg.out_of_order
        window = cfg.window
        rob = cfg.rob_size

        last_issue = -1  # most recent issue cycle (in-order constraint)
        k = 0
        for _ in range(iterations):
            for srcs, lat, rt, tch, adr, dst, times in rows:
                t = 0
                for s in srcs:
                    rs = reg_ready[s]
                    if rs > t:
                        t = rs
                extra = 0
                if tch:
                    if cache is not None:
                        extra = cache.extra_latency(adr, memory_rng)
                    ms = mem_ready[adr]
                    if ms > t:
                        t = ms
                if ooo:
                    # Window: cannot issue before the instruction
                    # `window` older has issued (dispatch backpressure).
                    if k >= window:
                        wt = issue_flat[k - window]
                        if wt > t:
                            t = wt
                    # ROB: the instruction `rob_size` older must have
                    # completed to free a reorder-buffer slot.
                    if k >= rob:
                        ct = complete[k - rob]
                        if ct > t:
                            t = ct
                elif last_issue > t:
                    t = last_issue

                # Find a cycle with a free unit instance and issue slot.
                if len(times) == 1:
                    idx = 0
                    unit_free = times[0]
                else:
                    idx = min(range(len(times)), key=times.__getitem__)
                    unit_free = times[idx]
                if unit_free > t:
                    t = unit_free
                if t >= n_counts:
                    counts.extend([0] * (t - n_counts + 256))
                    n_counts = len(counts)
                while counts[t] >= width:
                    t += 1
                    if t >= n_counts:
                        counts.extend([0] * 256)
                        n_counts = len(counts)

                comp = t + lat + extra
                issue_flat[k] = t
                complete[k] = comp
                counts[t] += 1
                times[idx] = t + rt
                if dst >= 0:
                    reg_ready[dst] = comp
                if tch:
                    mem_ready[adr] = comp
                if not ooo:
                    last_issue = t
                k += 1
        return np.array(issue_flat, dtype=np.int64).reshape(
            iterations, n_body
        )

    def execute_reference(
        self,
        program: LoopProgram,
        iterations: int = 16,
        cache=None,
        memory_rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Readable event-driven formulation of :meth:`execute`.

        Kept as the golden reference for the optimized kernel: same
        semantics, expressed through :class:`_UnitPool` and
        :class:`_ScoreBoard` objects.  ``tests/test_vectorized_equivalence.py``
        asserts the two produce identical schedules.
        """
        if iterations < 2:
            raise ValueError("need >= 2 iterations to find a steady state")
        if cache is not None and memory_rng is None:
            raise ValueError("cache model requires a memory_rng")
        cfg = self.config
        units = _UnitPool(cfg.unit_counts)
        board = _ScoreBoard()
        issue_count: Dict[int, int] = {}
        n_body = len(program)
        issue = np.zeros((iterations, n_body), dtype=np.int64)
        complete = np.zeros(iterations * n_body, dtype=np.int64)

        last_issue = -1  # most recent issue cycle (in-order constraint)
        for it in range(iterations):
            for j, instr in enumerate(program.body):
                k = it * n_body + j  # dynamic index
                spec = instr.spec
                extra_latency = 0
                if cache is not None and spec.touches_memory:
                    extra_latency = cache.extra_latency(
                        instr.address, memory_rng
                    )
                t = board.operand_ready(instr)
                if cfg.out_of_order:
                    # Window: cannot issue before the instruction
                    # `window` older has issued (dispatch backpressure).
                    if k >= cfg.window:
                        older = k - cfg.window
                        t = max(t, issue[older // n_body, older % n_body])
                    # ROB: the instruction `rob_size` older must have
                    # completed to free a reorder-buffer slot.
                    if k >= cfg.rob_size:
                        t = max(t, complete[k - cfg.rob_size])
                else:
                    t = max(t, last_issue)

                # Find a cycle with a free unit instance and issue slot.
                while True:
                    unit_free, unit_idx = units.earliest(spec.unit)
                    t = max(t, unit_free)
                    if issue_count.get(t, 0) < cfg.width:
                        break
                    t += 1

                latency = spec.latency + extra_latency
                issue[it, j] = t
                complete[k] = t + latency
                issue_count[t] = issue_count.get(t, 0) + 1
                units.reserve(spec.unit, unit_idx, t + spec.recip_throughput)
                board.record(instr, t + latency)
                if not cfg.out_of_order:
                    last_issue = t
        return issue

    def steady_schedule(
        self, program: LoopProgram, iterations: int = 16
    ) -> Schedule:
        """Extract the periodic steady state of the loop.

        A deterministic machine settles into a repeating pattern within
        a few iterations, but the pattern may span *several* loop
        iterations (e.g. alternating 1- and 2-cycle iterations when
        issue slots straddle the boundary).  The smallest repeating
        super-period of iteration lengths is detected and the schedule
        covers one full super-period, so the rendered current waveform
        is exactly the electrical period.
        """
        issue = self.execute(program, iterations)
        starts = issue[:, 0]
        deltas = np.diff(starts)
        period = 1
        # Try every super-period up to iterations // 2 (the largest that
        # still fits two full repetitions in the observed window), so
        # odd periods like 5 or 7 are extracted, not silently collapsed
        # to a wrong 1-iteration period.
        for candidate in range(1, iterations // 2 + 1):
            if deltas.size >= 2 * candidate and np.array_equal(
                deltas[-candidate:], deltas[-2 * candidate:-candidate]
            ):
                period = candidate
                break
        cycles = int(starts[-1] - starts[-1 - period])
        if cycles <= 0:
            raise RuntimeError("degenerate schedule: loop has zero period")
        base = starts[-1 - period]
        offsets = (issue[-1 - period:-1] - base).reshape(-1).astype(
            np.int64
        )
        if period == 1:
            steady_program = program
        else:
            steady_program = LoopProgram(
                isa=program.isa,
                body=program.body * period,
                name=program.name,
            )
        # Offsets may exceed the period when issue of iteration k overlaps
        # iteration k+1; keep raw offsets, the current model wraps modulo
        # the period when accumulating charge.
        return Schedule(
            program=steady_program, issue_offsets=offsets, cycles=cycles
        )

    def windowed_schedule(
        self,
        program: LoopProgram,
        iterations: int = 16,
        cache=None,
        memory_rng: Optional[np.random.Generator] = None,
    ) -> WindowedSchedule:
        """Full multi-iteration window (supports cache nondeterminism)."""
        issue = self.execute(
            program, iterations, cache=cache, memory_rng=memory_rng
        )
        max_latency = max(s.latency for s in {i.spec for i in program.body})
        slack = max_latency + (
            cache.miss_penalty + cache.penalty_jitter if cache else 0
        )
        cycles = int(issue.max()) + slack
        return WindowedSchedule(program=program, issue=issue, cycles=cycles)


@dataclass
class WindowedSchedule:
    """A multi-iteration execution window (for nondeterministic runs).

    With a cache model enabled, execution never settles into an exact
    period, so instead of extracting one steady iteration the whole
    window is kept: ``issue[i, j]`` is the absolute issue cycle of body
    instruction ``j`` in iteration ``i``, and ``cycles`` spans the
    window.  The current model renders the full window, which is then
    treated as one (long) period by the PDN solver.
    """

    program: LoopProgram
    issue: np.ndarray
    cycles: int

    @property
    def iterations(self) -> int:
        return self.issue.shape[0]

    @property
    def ipc(self) -> float:
        return self.issue.size / self.cycles

    def mean_iteration_cycles(self) -> float:
        starts = self.issue[:, 0]
        if starts.size < 2:
            return float(self.cycles)
        return float(np.mean(np.diff(starts)))

    def iteration_jitter_cycles(self) -> float:
        """Standard deviation of the per-iteration period -- zero for
        deterministic execution, nonzero once cache misses are in play."""
        starts = self.issue[:, 0]
        if starts.size < 3:
            return 0.0
        return float(np.std(np.diff(starts)))


class InOrderPipeline(Pipeline):
    """Dual-issue in-order model (Cortex-A53-like by default)."""

    def __init__(
        self,
        width: int = 2,
        unit_counts: Optional[Dict[ExecutionUnit, int]] = None,
        name: str = "in-order",
    ):
        super().__init__(
            PipelineConfig(
                name=name,
                width=width,
                unit_counts=dict(unit_counts or DEFAULT_UNIT_COUNTS),
                out_of_order=False,
            )
        )


class OutOfOrderPipeline(Pipeline):
    """Out-of-order model (Cortex-A72 / Athlon-like by default)."""

    def __init__(
        self,
        width: int = 3,
        window: int = 40,
        rob_size: int = 64,
        unit_counts: Optional[Dict[ExecutionUnit, int]] = None,
        name: str = "out-of-order",
    ):
        super().__init__(
            PipelineConfig(
                name=name,
                width=width,
                unit_counts=dict(unit_counts or DEFAULT_UNIT_COUNTS),
                out_of_order=True,
                window=window,
                rob_size=rob_size,
            )
        )
