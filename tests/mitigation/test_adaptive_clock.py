"""Unit tests for the adaptive-clocking mitigation model."""

import numpy as np
import pytest

from repro.mitigation import (
    AdaptiveClock,
    AdaptiveClockConfig,
    resonant_burst,
)
from repro.pdn.models import PDNModel, CORTEX_A72_PDN


@pytest.fixture(scope="module")
def pdn():
    return PDNModel(CORTEX_A72_PDN)


@pytest.fixture(scope="module")
def burst(pdn):
    return resonant_burst(
        pdn, 2, base_a=1.0, swing_a=2.5, start_s=50e-9,
        duration_s=3.0 / 67e6,
    )


def controller(pdn, cores=2, **kw):
    kw.setdefault("trip_threshold_v", 0.02)
    kw.setdefault("hold_s", 60e-9)
    kw.setdefault("throttle_factor", 0.5)
    return AdaptiveClock(pdn, cores, AdaptiveClockConfig(**kw))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveClockConfig(trip_threshold_v=0.0)
        with pytest.raises(ValueError):
            AdaptiveClockConfig(throttle_factor=0.0)
        with pytest.raises(ValueError):
            AdaptiveClockConfig(response_latency_s=-1.0)


class TestResonantBurst:
    def test_burst_shape(self, pdn, burst):
        assert burst(0.0) == pytest.approx(1.0)
        assert burst(1e-6) == pytest.approx(1.0)
        inside = [burst(50e-9 + k * 1e-9) for k in range(40)]
        assert max(inside) == pytest.approx(3.5)
        assert min(inside) == pytest.approx(1.0)
        assert burst.resonance_hz == pytest.approx(67e6, rel=0.02)


class TestClosedLoop:
    def test_disabled_controller_never_throttles(self, pdn, burst):
        result = controller(pdn).run(burst, 200e-9, enabled=False)
        assert result.throttle_fraction == 0.0
        assert result.max_droop > 0.03

    def test_mitigation_reduces_droop(self, pdn, burst):
        ac = controller(pdn, response_latency_s=2e-9)
        base = ac.run(burst, 200e-9, enabled=False)
        mitigated = ac.run(burst, 200e-9, enabled=True)
        assert mitigated.max_droop < base.max_droop - 0.010
        assert mitigated.throttle_fraction > 0.0

    def test_throttling_costs_performance(self, pdn, burst):
        """The stretch is not free: cycles run slow while held."""
        ac = controller(pdn, response_latency_s=2e-9)
        result = ac.run(burst, 200e-9, enabled=True)
        assert 0.05 < result.throttle_fraction < 0.9

    def test_latency_degrades_mitigation(self, pdn, burst):
        fast = controller(pdn, response_latency_s=0.0)
        late = controller(pdn, response_latency_s=25e-9)
        assert fast.improvement_v(burst, 220e-9) > (
            late.improvement_v(burst, 220e-9) + 0.005
        )

    def test_quiet_load_never_trips(self, pdn):
        ac = controller(pdn)
        result = ac.run(lambda t: 1.0, 100e-9, enabled=True)
        assert result.throttle_fraction == 0.0
        assert result.max_droop < 0.02

    def test_section6_gating_shrinks_latency_budget(self, pdn):
        """Fewer powered cores (faster ring) tolerate less latency."""
        def crit_latency(cores):
            f = pdn.measured_resonance_hz(cores)
            burst_c = resonant_burst(
                pdn, cores, base_a=1.0, swing_a=2.5,
                start_s=50e-9, duration_s=3.0 / f,
            )
            ac0 = controller(pdn, cores, response_latency_s=0.0)
            ref = ac0.improvement_v(burst_c, 220e-9)
            for lat in np.arange(24e-9, 4e-9, -2e-9):
                ac = controller(pdn, cores, response_latency_s=lat)
                if ac.improvement_v(burst_c, 220e-9) >= 0.5 * ref:
                    return lat
            return 0.0

        assert crit_latency(1) < crit_latency(2)
