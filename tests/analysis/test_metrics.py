"""Unit tests for waveform metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    dominant_frequency,
    max_droop,
    peak_to_peak,
    rms,
    voltage_margin,
)


class TestBasicMetrics:
    def test_max_droop(self):
        v = np.array([1.0, 0.95, 0.98])
        assert max_droop(v, 1.0) == pytest.approx(0.05)

    def test_max_droop_empty_rejected(self):
        with pytest.raises(ValueError):
            max_droop(np.array([]), 1.0)

    def test_peak_to_peak(self):
        assert peak_to_peak(np.array([0.9, 1.1, 1.0])) == pytest.approx(
            0.2
        )

    def test_rms_of_constant(self):
        assert rms(np.full(10, 3.0)) == pytest.approx(3.0)

    def test_rms_of_sine(self):
        t = np.linspace(0, 1, 10000, endpoint=False)
        assert rms(np.sin(2 * np.pi * 5 * t)) == pytest.approx(
            1 / np.sqrt(2), rel=1e-3
        )

    def test_voltage_margin(self):
        assert voltage_margin(1.0, 0.85) == pytest.approx(0.15)


class TestDominantFrequency:
    def test_finds_sine_frequency(self):
        fs = 1e9
        t = np.arange(2048) / fs
        v = 1.0 + 0.01 * np.sin(2 * np.pi * 67e6 * t)
        assert dominant_frequency(v, fs) == pytest.approx(67e6, rel=0.01)

    def test_band_restriction(self):
        fs = 1e9
        t = np.arange(2000) / fs  # 10/80 MHz land on exact bins
        v = (
            0.05 * np.sin(2 * np.pi * 10e6 * t)
            + 0.01 * np.sin(2 * np.pi * 80e6 * t)
        )
        assert dominant_frequency(v, fs) == pytest.approx(10e6, rel=0.01)
        assert dominant_frequency(
            v, fs, band=(50e6, 200e6)
        ) == pytest.approx(80e6, rel=0.01)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            dominant_frequency(np.array([1.0, 2.0]), 1e9)

    def test_empty_band_rejected(self):
        v = np.sin(np.linspace(0, 20, 256))
        with pytest.raises(ValueError):
            dominant_frequency(v, 1e9, band=(0.1, 0.2))
