"""Island-model distributed GA with deterministic champion migration.

:class:`IslandGAEngine` shards one logical campaign across K
sub-populations ("islands").  Each island is an ordinary
:class:`~repro.ga.engine.GAEngine` running over its own
:class:`~repro.ga.parallel.ParallelEvaluator` (and therefore its own
persistent worker pool), advanced segment-by-segment with
:meth:`~repro.ga.engine.GAEngine.run_segment`.  Every
``migration_interval`` generations the islands pause at a common
boundary and exchange champions along a deterministic
:mod:`~repro.ga.topology` (ring / star / all-to-all); the exchange is
applied by editing the ``population`` of each island's
:class:`~repro.ga.engine.GACheckpoint` between segments, so migration
rides entirely on the existing checkpoint/resume contract.

Determinism contract
--------------------
* Island ``i`` of a campaign seeded ``s`` runs with
  ``seed = island_seed(s, i)`` and a population of
  ``island_population_sizes(total, K)[i]`` individuals.  With
  migration disabled (``migration_interval=None``) every island's
  history is **bit-identical** to an independent ``GAEngine`` run with
  that derived config -- pinned by ``tests/ga/test_islands.py``.
* ``island_seed(s, 0) == s``, so a single island reproduces the plain
  engine exactly.
* Migration links are canonically ordered and emigrants are chosen by
  population index (slot 0 of a freshly bred population is the
  island's elite champion), so a fixed seed reproduces identical
  results for every (K, topology, workers) combination.
* Segment boundaries are invisible: ``run_segment`` + resume is
  bit-identical to an uninterrupted run, so checkpointing / crash
  recovery / migration never perturb the trajectory.

Fault tolerance
---------------
Each island gets its own :class:`~repro.faults.FaultInjector` replica
(same plan, independent counters) and visits the
``island.<i>.segment`` site at every segment attempt.  When a segment
dies -- an injected :class:`~repro.faults.FaultError` or a real
``BrokenProcessPool`` -- the island is rebuilt from its newest
surviving checkpoint (rotated disk checkpoint if one is loadable,
otherwise the in-memory boundary state), its fitness replica is
restored from the prototype, and the segment is retried up to
``max_island_restarts`` times, emitting ``island_recovered``.
Because recovery resumes from a checkpoint, a recovered run is
bit-identical to one that never crashed.
"""

from __future__ import annotations

import json
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from concurrent.futures.process import BrokenProcessPool

from repro.cpu.isa import InstructionSpec
from repro.faults.errors import FaultError
from repro.faults.plan import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.ga.engine import (
    GACheckpoint,
    GAConfig,
    GAEngine,
    GAResult,
    GenerationRecord,
)
from repro.ga.parallel import ParallelEvaluator
from repro.ga.topology import TOPOLOGIES, migrate, migration_links
from repro.obs.events import NULL_LOG, EventLog


@dataclass(frozen=True)
class IslandConfig:
    """Distribution hyperparameters, orthogonal to :class:`GAConfig`.

    ``migration_interval=None`` disables migration entirely, turning
    the campaign into K independent seeded runs (the equivalence the
    determinism suite pins).  ``concurrent=False`` runs island
    segments sequentially on the calling thread -- results are
    identical either way; the switch only trades wall-clock for
    debuggability.
    """

    islands: int = 1
    topology: str = "ring"
    migration_interval: Optional[int] = 5
    max_island_restarts: int = 2
    concurrent: bool = True

    def __post_init__(self) -> None:
        if self.islands < 1:
            raise ValueError("islands must be >= 1")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGIES}"
            )
        if (
            self.migration_interval is not None
            and self.migration_interval < 1
        ):
            raise ValueError(
                "migration_interval must be >= 1 (or None to disable)"
            )
        if self.max_island_restarts < 0:
            raise ValueError("max_island_restarts must be >= 0")


def island_seed(seed: int, island: int) -> int:
    """The derived RNG seed for ``island`` of a campaign seeded ``seed``.

    Island 0 keeps the campaign seed unchanged -- a one-island campaign
    is the plain engine.  Other islands draw a decorrelated 64-bit seed
    from ``np.random.SeedSequence([seed, island])``, so the per-island
    streams are independent yet fully determined by the campaign seed.
    """
    if island < 0:
        raise ValueError("island must be >= 0")
    if island == 0:
        return seed
    seq = np.random.SeedSequence([seed, island])
    return int(seq.generate_state(1, np.uint64)[0])


def island_population_sizes(total: int, islands: int) -> Tuple[int, ...]:
    """Split ``total`` individuals across ``islands``, larger first.

    ``divmod`` apportionment: the first ``total % islands`` islands get
    one extra individual.  Every island must end up with at least two
    individuals (the GA's own floor), otherwise the split is rejected.
    """
    if islands < 1:
        raise ValueError("islands must be >= 1")
    base, extra = divmod(total, islands)
    sizes = tuple(
        base + 1 if i < extra else base for i in range(islands)
    )
    if min(sizes) < 2:
        raise ValueError(
            f"population_size={total} cannot be split across "
            f"{islands} islands (smallest island would have "
            f"{min(sizes)} < 2 individuals)"
        )
    return sizes


def segment_ends(
    start: int, total: int, interval: Optional[int]
) -> List[int]:
    """Generation indices at which segments stop, in execution order.

    Boundaries fall on multiples of ``interval`` regardless of
    ``start``, so a run resumed from a mid-epoch checkpoint hits the
    same migration points an uninterrupted run does.
    """
    ends: List[int] = []
    g = start
    while g < total:
        if interval is None:
            nxt = total
        else:
            nxt = min(total, ((g // interval) + 1) * interval)
        ends.append(nxt)
        g = nxt
    return ends


@dataclass
class IslandGAResult:
    """Outcome of an island campaign.

    ``config`` is the *base* aggregate config (total population size,
    campaign seed); ``results`` holds one per-island
    :class:`GAResult` carrying that island's derived config and full
    history.
    """

    config: GAConfig
    island_config: IslandConfig
    results: Tuple[GAResult, ...]

    @property
    def evaluations(self) -> int:
        return sum(r.evaluations for r in self.results)

    @property
    def best_island(self) -> int:
        """Index of the island holding the campaign champion.

        Ties break toward the earliest generation, then the lowest
        island index -- the same deterministic order migration uses.
        """
        best_key = None
        best_idx = 0
        for idx, result in enumerate(self.results):
            for record in result.history:
                key = (record.best.score, -record.generation, -idx)
                if best_key is None or key > best_key:
                    best_key = key
                    best_idx = idx
        return best_idx

    @property
    def best(self) -> GenerationRecord:
        return self.results[self.best_island].best

    @property
    def best_program(self):
        return self.best.best_program

    def merged(self) -> GAResult:
        """Fold the island histories into one campaign-level result.

        For each generation the best island record wins (score ties
        break toward the lowest island index), so the merged history's
        ``best`` matches :attr:`best` and downstream consumers --
        reports, re-measurement, serialization -- see an ordinary
        :class:`GAResult`.  ``mean_score`` of a merged record is the
        winning island's own population mean.
        """
        if not self.results:
            raise ValueError("no island results to merge")
        generations = min(len(r.history) for r in self.results)
        history: List[GenerationRecord] = []
        for g in range(generations):
            chosen = max(
                range(len(self.results)),
                key=lambda i: (self.results[i].history[g].best.score, -i),
            )
            history.append(self.results[chosen].history[g])
        return GAResult(
            config=self.config,
            history=history,
            evaluations=self.evaluations,
        )


@dataclass
class IslandCheckpoint:
    """Mid-campaign state of every island plus the distribution meta."""

    config: GAConfig
    island_config: IslandConfig
    checkpoints: List[GACheckpoint]

    @property
    def generation(self) -> int:
        """The campaign generation (minimum across islands)."""
        return min(c.generation for c in self.checkpoints)


ISLAND_META_FILE = "islands.json"


def island_checkpoint_path(
    directory: Union[str, Path], island: int
) -> Path:
    """Per-island checkpoint file inside an island checkpoint dir."""
    return Path(directory) / f"island-{island:02d}.json"


def save_island_checkpoint(
    checkpoint: IslandCheckpoint,
    directory: Union[str, Path],
    injector=None,
) -> Path:
    """Write an island checkpoint directory.

    Layout: one rotated, checksummed per-island file
    (``island-NN.json``, the ordinary GA checkpoint format) plus an
    atomically-replaced ``islands.json`` meta file recording the
    distribution parameters.  The meta file is written *last*, so a
    directory with a valid meta always has matching island files.
    """
    from repro.io.serialization import (
        island_meta_to_dict,
        save_checkpoint,
    )

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for i, ckpt in enumerate(checkpoint.checkpoints):
        save_checkpoint(
            ckpt, island_checkpoint_path(directory, i), injector=injector
        )
    meta = island_meta_to_dict(
        checkpoint.config,
        checkpoint.island_config,
        [c.generation for c in checkpoint.checkpoints],
    )
    meta_path = directory / ISLAND_META_FILE
    tmp = meta_path.with_name(meta_path.name + ".tmp")
    tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
    tmp.replace(meta_path)
    return directory


def load_island_checkpoint(
    directory: Union[str, Path], event_log=None
) -> IslandCheckpoint:
    """Read an island checkpoint directory written by
    :func:`save_island_checkpoint`, using each island file's rotation
    fallback (corrupt islands recover from their ``.1``/``.2``
    siblings, emitting ``checkpoint_recovered``)."""
    from repro.io.serialization import (
        island_meta_from_dict,
        load_checkpoint,
    )

    directory = Path(directory)
    meta_path = directory / ISLAND_META_FILE
    if not directory.is_dir():
        raise FileNotFoundError(
            f"no island checkpoint directory at {directory}"
        )
    if not meta_path.exists():
        raise FileNotFoundError(
            f"no island checkpoint in {directory} "
            f"(missing {ISLAND_META_FILE})"
        )
    meta = island_meta_from_dict(
        json.loads(meta_path.read_text(encoding="utf-8"))
    )
    config, island_config = meta
    checkpoints = [
        load_checkpoint(
            island_checkpoint_path(directory, i), event_log=event_log
        )
        for i in range(island_config.islands)
    ]
    return IslandCheckpoint(
        config=config,
        island_config=island_config,
        checkpoints=checkpoints,
    )


class _IslandLog:
    """EventLog facade stamping every record with its island index.

    The base log is swapped in by :meth:`IslandGAEngine.run`, so
    evaluators built before the run (``warm_up``) still report into
    the run's log.  ``EventLog.emit`` is lock-protected, making this
    safe from concurrent island threads.
    """

    def __init__(self, island: int):
        self.island = island
        self.base: EventLog = NULL_LOG

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    def emit(self, event: str, **payload) -> None:
        self.base.emit(event, island=self.island, **payload)


class IslandGAEngine:
    """Drives K sharded :class:`GAEngine` instances with migration.

    ``fitness`` is the prototype fitness callable; each island runs an
    independent *replica* (a pickle round-trip of the prototype --
    exactly how worker processes already receive their copies, so
    session state is rebuilt per island and stateful analyzers keep
    per-island RNG streams).  Unpicklable fitness callables need a
    ``fitness_factory`` (called with the island index) or
    ``islands=1``.

    ``fault_injector`` supplies the :class:`~repro.faults.FaultPlan`;
    every island arms its own injector replica with independent visit
    counters, so per-island fault schedules are deterministic
    (``island.<i>.segment`` targets one island; ``worker.shard``
    chaos fires identically on each).

    Like :class:`GAEngine`, one engine instance drives one campaign:
    evaluators (and their worker pools) persist across
    :meth:`warm_up`/:meth:`run` until :meth:`close`.
    """

    def __init__(
        self,
        fitness: Callable,
        config: GAConfig = GAConfig(),
        island_config: IslandConfig = IslandConfig(),
        pool: Optional[Sequence[InstructionSpec]] = None,
        memoize: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        fitness_factory: Optional[Callable[[int], Callable]] = None,
    ):
        self.config = config
        self.island_config = island_config
        self._pool = tuple(pool) if pool is not None else None
        self._memoize = memoize
        self._retry_policy = retry_policy
        k = island_config.islands
        self._sizes = island_population_sizes(config.population_size, k)
        if (
            island_config.migration_interval is not None
            and island_config.topology == "all-to-all"
            and k - 1 > min(self._sizes)
        ):
            raise ValueError(
                f"all-to-all migration needs every island to hold at "
                f"least {k - 1} individuals; smallest island has "
                f"{min(self._sizes)}"
            )
        self._configs = tuple(
            replace(
                config,
                population_size=self._sizes[i],
                seed=island_seed(config.seed, i),
            )
            for i in range(k)
        )
        self._factory = fitness_factory
        self._proto: Optional[bytes] = None
        if fitness_factory is not None:
            self._replicas = [fitness_factory(i) for i in range(k)]
        elif k == 1:
            self._replicas = [fitness]
        else:
            try:
                self._proto = pickle.dumps(fitness)
            except (
                pickle.PicklingError, TypeError, AttributeError
            ) as exc:
                raise ValueError(
                    "fitness is not picklable; pass fitness_factory "
                    f"to run more than one island ({exc})"
                ) from exc
            self._replicas = [
                pickle.loads(self._proto) for _ in range(k)
            ]
        plan = fault_injector.plan if fault_injector is not None else None
        self._injectors: List[Optional[FaultInjector]] = [
            FaultInjector(plan) if plan is not None else None
            for _ in range(k)
        ]
        self._logs = [_IslandLog(i) for i in range(k)]
        self._evaluators: Optional[List[ParallelEvaluator]] = None

    # ------------------------------------------------------------------
    # evaluator lifecycle
    # ------------------------------------------------------------------
    def _build_evaluator(self, island: int) -> ParallelEvaluator:
        return ParallelEvaluator(
            self._replicas[island],
            self._configs[island].workers,
            retry_policy=self._retry_policy,
            fault_injector=self._injectors[island],
            event_log=self._logs[island],
        )

    def _ensure_evaluators(self) -> List[ParallelEvaluator]:
        if self._evaluators is None:
            self._evaluators = [
                self._build_evaluator(i)
                for i in range(self.island_config.islands)
            ]
        return self._evaluators

    def warm_up(self) -> None:
        """Spawn every island's worker pool eagerly (no-op when
        serial), so a subsequent :meth:`run` is not charged for pool
        and session warm-up."""
        for evaluator in self._ensure_evaluators():
            evaluator.warm_up()

    def close(self) -> None:
        if self._evaluators is not None:
            for evaluator in self._evaluators:
                evaluator.close()
            self._evaluators = None

    def __enter__(self) -> "IslandGAEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the campaign loop
    # ------------------------------------------------------------------
    def run(
        self,
        isa,
        progress: Optional[
            Callable[[int, GenerationRecord], None]
        ] = None,
        event_log: Optional[EventLog] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 5,
        resume: Optional[IslandCheckpoint] = None,
    ) -> IslandGAResult:
        """Run the sharded campaign to ``config.generations``.

        ``progress`` receives ``(island, record)`` per generation.
        ``checkpoint_dir`` enables durable state: each island
        checkpoints into its own rotated file every
        ``checkpoint_every`` generations *and* at every migration
        boundary (post-migration), with the ``islands.json`` meta
        refreshed at boundaries -- :func:`load_island_checkpoint` of
        that directory feeds ``resume`` and continues bit-identically.
        """
        cfg = self.config
        icfg = self.island_config
        k = icfg.islands
        log = event_log if event_log is not None else NULL_LOG
        for view in self._logs:
            view.base = log
        state: List[Optional[GACheckpoint]] = [None] * k
        start = 0
        if resume is not None:
            self._check_resume(resume)
            state = list(resume.checkpoints)
            start = resume.generation
        log.emit(
            "island_run_start",
            islands=k,
            topology=icfg.topology,
            migration_interval=icfg.migration_interval,
            population_sizes=list(self._sizes),
            seeds=[c.seed for c in self._configs],
            resumed_from_generation=start if resume else None,
        )
        evaluators = self._ensure_evaluators()
        boundaries = segment_ends(
            start, cfg.generations, icfg.migration_interval
        )
        for seg_end in boundaries:
            self._run_epoch(
                isa,
                seg_end,
                state,
                evaluators,
                progress,
                checkpoint_dir,
                checkpoint_every,
            )
            final = seg_end >= cfg.generations
            migrated = False
            # Migrate whenever the boundary is a multiple of the
            # interval -- including at the final boundary, where the
            # exchange is unobservable for *this* horizon but keeps a
            # truncated run's checkpoint bit-identical to the same
            # boundary of a longer-horizon run (the resume contract).
            migrate_here = (
                icfg.migration_interval is not None
                and seg_end % icfg.migration_interval == 0
            )
            if migrate_here:
                links = migration_links(k, icfg.topology)
                if links:
                    log.emit(
                        "migration_start",
                        generation=seg_end,
                        topology=icfg.topology,
                        links=[list(link) for link in links],
                    )
                    populations = [state[i].population for i in range(k)]
                    exchanged = migrate(populations, links)
                    for i in range(k):
                        state[i].population = exchanged[i]
                    log.emit(
                        "migration_end",
                        generation=seg_end,
                        migrants=len(links),
                    )
                    migrated = True
            if checkpoint_dir is not None and (migrated or final):
                save_island_checkpoint(
                    IslandCheckpoint(
                        config=cfg,
                        island_config=icfg,
                        checkpoints=[state[i] for i in range(k)],
                    ),
                    checkpoint_dir,
                )
                log.emit(
                    "checkpoint_saved",
                    generation=seg_end,
                    path=str(checkpoint_dir),
                    islands=k,
                )
        results = tuple(
            GAResult(
                config=self._configs[i],
                history=list(state[i].history),
                evaluations=state[i].evaluations,
            )
            for i in range(k)
        )
        outcome = IslandGAResult(
            config=cfg, island_config=icfg, results=results
        )
        best = outcome.best
        log.emit(
            "island_run_end",
            islands=k,
            evaluations=outcome.evaluations,
            best_island=outcome.best_island,
            best_generation=best.generation,
            best_score=best.best.score,
        )
        return outcome

    def _run_epoch(
        self,
        isa,
        seg_end: int,
        state: List[Optional[GACheckpoint]],
        evaluators: List[ParallelEvaluator],
        progress,
        checkpoint_dir,
        checkpoint_every: int,
    ) -> None:
        """Advance every island to ``seg_end`` (concurrently when
        configured), updating ``state`` in place."""
        k = self.island_config.islands
        pending = [
            i
            for i in range(k)
            if state[i] is None or state[i].generation < seg_end
        ]
        if not pending:
            return
        if self.island_config.concurrent and len(pending) > 1:
            with ThreadPoolExecutor(max_workers=len(pending)) as pool:
                futures = {
                    i: pool.submit(
                        self._run_island_segment,
                        isa,
                        i,
                        seg_end,
                        state[i],
                        evaluators,
                        progress,
                        checkpoint_dir,
                        checkpoint_every,
                    )
                    for i in pending
                }
                for i, future in futures.items():
                    state[i] = future.result()
        else:
            for i in pending:
                state[i] = self._run_island_segment(
                    isa,
                    i,
                    seg_end,
                    state[i],
                    evaluators,
                    progress,
                    checkpoint_dir,
                    checkpoint_every,
                )

    def _run_island_segment(
        self,
        isa,
        island: int,
        seg_end: int,
        checkpoint: Optional[GACheckpoint],
        evaluators: List[ParallelEvaluator],
        progress,
        checkpoint_dir,
        checkpoint_every: int,
    ) -> GACheckpoint:
        """One island's segment, with crash recovery.

        Each attempt visits the ``island.<i>.segment`` fault site,
        builds a fresh :class:`GAEngine` around the island's fitness
        replica and runs :meth:`GAEngine.run_segment`.  On a fault or
        a broken pool the island is restored from its newest surviving
        checkpoint (disk beats the in-memory boundary state when it is
        further along), the replica and evaluator are rebuilt, and the
        segment retries -- up to ``max_island_restarts`` times.
        """
        log = self._logs[island]
        injector = self._injectors[island]
        island_path = (
            island_checkpoint_path(checkpoint_dir, island)
            if checkpoint_dir is not None
            else None
        )
        island_progress = (
            (lambda record: progress(island, record))
            if progress is not None
            else None
        )
        attempts = self.island_config.max_island_restarts + 1
        for attempt in range(attempts):
            try:
                if injector is not None:
                    injector.visit(f"island.{island}.segment")
                engine = GAEngine(
                    self._replicas[island],
                    self._configs[island],
                    pool=self._pool,
                    memoize=self._memoize,
                    retry_policy=self._retry_policy,
                    fault_injector=injector,
                )
                return engine.run_segment(
                    isa,
                    seg_end,
                    resume=checkpoint,
                    event_log=log,
                    progress=island_progress,
                    checkpoint_path=island_path,
                    checkpoint_every=checkpoint_every,
                    evaluator=evaluators[island],
                )
            except (FaultError, BrokenProcessPool) as exc:
                if attempt + 1 >= attempts:
                    raise
                checkpoint, source = self._recover_island(
                    island, checkpoint, island_path, seg_end, evaluators
                )
                log.emit(
                    "island_recovered",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                    source=source,
                    generation=(
                        checkpoint.generation
                        if checkpoint is not None
                        else 0
                    ),
                )
                if (
                    checkpoint is not None
                    and checkpoint.generation >= seg_end
                ):
                    # The newest checkpoint already covers the segment
                    # (the crash hit after the final periodic save).
                    return checkpoint
        raise AssertionError("unreachable")  # pragma: no cover

    def _recover_island(
        self,
        island: int,
        boundary: Optional[GACheckpoint],
        island_path: Optional[Path],
        seg_end: int,
        evaluators: List[ParallelEvaluator],
    ) -> Tuple[Optional[GACheckpoint], str]:
        """Pick the newest recovery point and rebuild the island.

        The fitness replica is re-instantiated from the prototype so a
        half-run attempt cannot leak analyzer state into the retry --
        the checkpoint's ``fitness_state`` restores the true position
        on resume.  The evaluator (and its worker pool) is rebuilt
        because the old pool may be broken or degraded.
        """
        from repro.io.serialization import SerializationError

        candidate: Optional[GACheckpoint] = boundary
        source = "memory-checkpoint" if boundary is not None else "fresh"
        if island_path is not None:
            try:
                disk = load_checkpoint_for_island(
                    island_path, self._logs[island]
                )
            except (FileNotFoundError, SerializationError):
                disk = None
            if disk is not None and disk.generation <= seg_end:
                if (
                    candidate is None
                    or disk.generation > candidate.generation
                ):
                    candidate = disk
                    source = "disk-checkpoint"
        if self._factory is not None:
            self._replicas[island] = self._factory(island)
        elif self._proto is not None:
            self._replicas[island] = pickle.loads(self._proto)
        if self._evaluators is not None:
            self._evaluators[island].close()
            self._evaluators[island] = self._build_evaluator(island)
            evaluators[island] = self._evaluators[island]
        return candidate, source

    def _check_resume(self, resume: IslandCheckpoint) -> None:
        theirs = resume.island_config
        ours = self.island_config
        if (
            theirs.islands != ours.islands
            or theirs.topology != ours.topology
            or theirs.migration_interval != ours.migration_interval
        ):
            raise ValueError(
                "island checkpoint distribution does not match engine: "
                f"{theirs} vs {ours}"
            )
        if len(resume.checkpoints) != ours.islands:
            raise ValueError(
                f"island checkpoint holds {len(resume.checkpoints)} "
                f"islands, engine expects {ours.islands}"
            )
        base = replace(resume.config, generations=1, workers=1)
        mine = replace(self.config, generations=1, workers=1)
        if base != mine:
            raise ValueError(
                "island checkpoint base config does not match engine "
                f"config: {resume.config} vs {self.config}"
            )


def load_checkpoint_for_island(
    path: Union[str, Path], event_log=None
) -> GACheckpoint:
    """Load one island's rotated checkpoint file (thin wrapper kept
    separate so recovery can be exercised/stubbed in tests)."""
    from repro.io.serialization import load_checkpoint

    return load_checkpoint(path, event_log=event_log)
