"""The hand-written high/low-current loop of Section 5.3.

Eight single-cycle ADDs (issued two per cycle: a four-cycle
high-current burst) followed by one multi-cycle DIV (a long
low-current shadow).  Not a proper stress test -- just enough current
alternation to put a visible EM spike at the loop frequency, which the
CPU-clock sweep then drags across the band to find the resonance.
"""

from __future__ import annotations

from repro.cpu.isa import InstructionSet
from repro.cpu.program import LoopProgram, program_from_mnemonics
from repro.workloads.base import ProgramWorkload

_ARM_LOOP = ["add"] * 8 + ["sdiv"]
_X86_LOOP = ["add_rr"] * 8 + ["idiv_rr"]
_GPU_LOOP = ["v_add32"] * 8 + ["v_rcp32"]


def high_low_loop(isa: InstructionSet) -> ProgramWorkload:
    """The sweep loop for an ISA (8 adds + 1 divide-like stall)."""
    if isa.name.startswith("armv8"):
        mnemonics = _ARM_LOOP
    elif isa.name.startswith("x86"):
        mnemonics = _X86_LOOP
    elif isa.name.startswith("gpu"):
        mnemonics = _GPU_LOOP
    else:
        raise ValueError(f"no sweep loop defined for ISA {isa.name!r}")
    program = program_from_mnemonics(isa, mnemonics, name="high-low")
    return ProgramWorkload("high-low", program)


def high_low_program(isa: InstructionSet) -> LoopProgram:
    """Just the loop program (for callers that run it themselves)."""
    return high_low_loop(isa).program
