"""Time-frequency view of the EM band: spectrograms of workload phases.

A spectrum analyzer in zero-span/max-hold use gives one amplitude per
interval; for diagnosing *when* a system rings, labs plot a
spectrogram.  :func:`em_spectrogram` renders a workload schedule as a
(time x frequency) amplitude matrix through the full receive chain,
and :func:`band_power_timeline` reduces it to the banded power trace
the :class:`~repro.core.monitor.EmergencyMonitor` thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterizer import EMCharacterizer
from repro.platforms.base import Cluster
from repro.workloads.base import Workload


@dataclass
class Spectrogram:
    """Amplitude over (interval, frequency bin)."""

    labels: List[str]
    frequencies_hz: np.ndarray
    power_dbm: np.ndarray  # shape (intervals, bins)

    def interval(self, index: int) -> np.ndarray:
        return self.power_dbm[index]

    def peak_per_interval(self) -> List[Tuple[str, float, float]]:
        """(label, peak frequency, peak dBm) for each interval."""
        rows = []
        for i, label in enumerate(self.labels):
            idx = int(np.argmax(self.power_dbm[i]))
            rows.append(
                (
                    label,
                    float(self.frequencies_hz[idx]),
                    float(self.power_dbm[i, idx]),
                )
            )
        return rows

    def to_ascii(self, width: int = 64, floor_dbm: float = -95.0) -> str:
        """Terminal heat map: one row per interval."""
        chars = " .:-=+*#%@"
        lines = []
        n = self.frequencies_hz.size
        width = min(width, n)
        edges = np.linspace(0, n, width + 1).astype(int)
        top = float(self.power_dbm.max())
        span = max(1e-9, top - floor_dbm)
        for label, row in zip(self.labels, self.power_dbm):
            # Max-aggregate per column so narrow spectral lines survive
            # the downsampling (a virus line is one RBW bin wide).
            cells = np.array(
                [row[a:b].max() for a, b in zip(edges[:-1], edges[1:])]
            )
            scaled = np.clip(
                (cells - floor_dbm) / span * (len(chars) - 1),
                0,
                len(chars) - 1,
            ).astype(int)
            lines.append(
                f"{label[:14]:<14} |"
                + "".join(chars[c] for c in scaled)
                + "|"
            )
        return "\n".join(lines)


def em_spectrogram(
    characterizer: EMCharacterizer,
    cluster: Cluster,
    schedule: Sequence[Workload],
) -> Spectrogram:
    """One spectrum-analyzer sweep per workload interval."""
    if not schedule:
        raise ValueError("schedule must contain at least one workload")
    labels: List[str] = []
    rows: List[np.ndarray] = []
    freqs: Optional[np.ndarray] = None
    for workload in schedule:
        run = workload.run(cluster)
        emission = characterizer.radiator.emission(run.response)
        trace = characterizer.analyzer.sweep(emission)
        labels.append(workload.name)
        rows.append(trace.power_dbm)
        freqs = trace.frequencies_hz
    return Spectrogram(
        labels=labels,
        frequencies_hz=freqs,
        power_dbm=np.vstack(rows),
    )


def band_power_timeline(
    spectrogram: Spectrogram,
    band: Tuple[float, float],
) -> np.ndarray:
    """Per-interval maximum dBm inside ``band``."""
    mask = (spectrogram.frequencies_hz >= band[0]) & (
        spectrogram.frequencies_hz <= band[1]
    )
    if not mask.any():
        raise ValueError(f"no spectrogram bins inside band {band}")
    return spectrogram.power_dbm[:, mask].max(axis=1)
