"""Token-bucket rate limiting, driven by a fake clock."""

import pytest

from repro.service.ratelimit import TenantRateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_reject(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_nothing_consumed_on_failure(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        first = bucket.try_acquire()
        second = bucket.try_acquire()
        assert first == second == pytest.approx(0.5)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestTenantRateLimiter:
    def test_disabled_when_rate_is_none(self):
        limiter = TenantRateLimiter(None)
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.try_acquire("anyone") == 0.0

    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(1.0, burst=1.0, clock=clock)
        assert limiter.try_acquire("alice") == 0.0
        assert limiter.try_acquire("alice") > 0.0  # alice exhausted
        assert limiter.try_acquire("bob") == 0.0  # bob unaffected
